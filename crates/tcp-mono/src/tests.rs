//! End-to-end tests for the monolithic stack over the simulator.

use crate::pcb::TcpState;
use crate::stack::{Keepalive, TcpStack};
use crate::wire::{Endpoint, FourTuple};
use netsim::{
    two_party, Dur, FaultProfile, LinkParams, SimNet, StackNode, Time, TransportError,
};

pub const A: u32 = 0x0A000001;
pub const B: u32 = 0x0A000002;

/// Build a client/server pair with the given link, connect, and return
/// `(net, client_node, server_node, client_conn)`.
pub fn pair(
    seed: u64,
    params: LinkParams,
) -> (SimNet, usize, usize, FourTuple) {
    let mut client = TcpStack::new(A, slmetrics::shared());
    let mut server = TcpStack::new(B, slmetrics::shared());
    server.listen(80);
    let conn = client.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, ns) = two_party(seed, client, server, params);
    net.poll_all();
    (net, nc, ns, conn)
}

pub fn client(net: &mut SimNet, id: usize) -> &mut TcpStack {
    &mut net.node_mut::<StackNode<TcpStack>>(id).stack
}

/// Drive the pair until the server sees an established connection or the
/// deadline passes.
pub fn run_for(net: &mut SimNet, d: Dur) {
    let deadline = net.now() + d;
    net.run_until(deadline);
}

#[test]
fn three_way_handshake() {
    let (mut net, nc, ns, conn) = pair(1, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Established);
    let server_conns = client(&mut net, ns).established();
    assert_eq!(server_conns.len(), 1);
    assert_eq!(server_conns[0].local.port, 80);
}

#[test]
fn unidirectional_transfer_clean_link() {
    let (mut net, nc, ns, conn) = pair(2, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    client(&mut net, nc).send(conn, &data);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(30));
    let sconn = client(&mut net, ns).established()[0];
    let got = client(&mut net, ns).recv(sconn);
    assert_eq!(got.len(), data.len());
    assert_eq!(got, data);
}

#[test]
fn transfer_over_lossy_link() {
    for seed in [3, 4, 5] {
        let params = LinkParams::delay_only(Dur::from_millis(5))
            .with_fault(FaultProfile::lossy(0.1));
        let (mut net, nc, ns, conn) = pair(seed, params);
        run_for(&mut net, Dur::from_secs(3));
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
        client(&mut net, nc).send(conn, &data);
        net.poll_all();
        // Drain periodically so the window keeps opening.
        let mut got = Vec::new();
        for _ in 0..120 {
            run_for(&mut net, Dur::from_secs(1));
            if let Some(&sconn) = client(&mut net, ns).established().first() {
                got.extend(client(&mut net, ns).recv(sconn));
            }
            if got.len() >= data.len() {
                break;
            }
        }
        assert_eq!(got, data, "seed {seed}");
    }
}

#[test]
fn transfer_with_reordering_and_duplication() {
    let params = LinkParams::delay_only(Dur::from_millis(5)).with_fault(
        FaultProfile::none()
            .with_duplicate(0.1)
            .with_reorder(0.2, Dur::from_millis(15)),
    );
    let (mut net, nc, ns, conn) = pair(6, params);
    run_for(&mut net, Dur::from_secs(2));
    let data: Vec<u8> = (0..30_000u32).map(|i| (i % 239) as u8).collect();
    client(&mut net, nc).send(conn, &data);
    net.poll_all();
    let mut got = Vec::new();
    for _ in 0..60 {
        run_for(&mut net, Dur::from_secs(1));
        if let Some(&sconn) = client(&mut net, ns).established().first() {
            got.extend(client(&mut net, ns).recv(sconn));
        }
        if got.len() >= data.len() {
            break;
        }
    }
    assert_eq!(got, data);
}

#[test]
fn corrupted_segments_are_dropped_and_recovered() {
    let params = LinkParams::delay_only(Dur::from_millis(5))
        .with_fault(FaultProfile::none().with_corrupt(0.05));
    let (mut net, nc, ns, conn) = pair(7, params);
    run_for(&mut net, Dur::from_secs(3));
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 233) as u8).collect();
    client(&mut net, nc).send(conn, &data);
    net.poll_all();
    let mut got = Vec::new();
    for _ in 0..90 {
        run_for(&mut net, Dur::from_secs(1));
        if let Some(&sconn) = client(&mut net, ns).established().first() {
            got.extend(client(&mut net, ns).recv(sconn));
        }
        if got.len() >= data.len() {
            break;
        }
    }
    assert_eq!(got, data);
    let bad = client(&mut net, nc).stats.bad_segments
        + client(&mut net, ns).stats.bad_segments;
    assert!(bad > 0, "checksum should have rejected corrupt segments");
}

#[test]
fn bidirectional_transfer() {
    let (mut net, nc, ns, conn) = pair(8, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let up: Vec<u8> = (0..9_000u32).map(|i| (i % 13) as u8).collect();
    let down: Vec<u8> = (0..7_000u32).map(|i| (i % 17) as u8).collect();
    client(&mut net, nc).send(conn, &up);
    let sconn = client(&mut net, ns).established()[0];
    client(&mut net, ns).send(sconn, &down);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(20));
    assert_eq!(client(&mut net, ns).recv(sconn), up);
    assert_eq!(client(&mut net, nc).recv(conn), down);
}

#[test]
fn graceful_close_reaches_time_wait_and_closed() {
    let (mut net, nc, ns, conn) = pair(9, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    client(&mut net, nc).send(conn, b"bye");
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    let sconn = client(&mut net, ns).established()[0];
    // Active close from the client.
    client(&mut net, nc).close(conn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(client(&mut net, ns).state(sconn), TcpState::CloseWait);
    // Server reads remaining data and closes too.
    assert_eq!(client(&mut net, ns).recv(sconn), b"bye");
    client(&mut net, ns).close(sconn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    // Client is in TIME_WAIT; server side fully closed.
    assert_eq!(client(&mut net, nc).state(conn), TcpState::TimeWait);
    assert_eq!(client(&mut net, ns).state(sconn), TcpState::Closed);
    // After 2MSL the client PCB disappears.
    run_for(&mut net, Dur::from_secs(15));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Closed);
    assert_eq!(client(&mut net, nc).conn_count(), 0);
}

#[test]
fn connect_to_closed_port_is_refused() {
    let mut client_stack = TcpStack::new(A, slmetrics::shared());
    let server = TcpStack::new(B, slmetrics::shared());
    // No listener on port 81.
    let conn = client_stack.connect(Time::ZERO, 5000, Endpoint::new(B, 81));
    let (mut net, nc, _ns) = two_party(
        10,
        client_stack,
        server,
        LinkParams::delay_only(Dur::from_millis(5)),
    );
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Closed);
    assert_eq!(client(&mut net, nc).stats.conns_reset, 1);
}

#[test]
fn fast_retransmit_fires_under_single_loss() {
    // Moderate loss on a fat pipe: dupacks should trigger fast retransmit
    // at least once across the transfer.
    let params = LinkParams::delay_only(Dur::from_millis(10))
        .with_fault(FaultProfile::lossy(0.03));
    let (mut net, nc, ns, conn) = pair(11, params);
    run_for(&mut net, Dur::from_secs(3));
    let data = vec![7u8; 120_000];
    client(&mut net, nc).send(conn, &data);
    net.poll_all();
    let mut got = Vec::new();
    for _ in 0..120 {
        run_for(&mut net, Dur::from_secs(1));
        if let Some(&sconn) = client(&mut net, ns).established().first() {
            got.extend(client(&mut net, ns).recv(sconn));
        }
        if got.len() >= data.len() {
            break;
        }
    }
    assert_eq!(got.len(), data.len());
    assert!(
        client(&mut net, nc).stats.fast_retransmits > 0,
        "expected at least one fast retransmit"
    );
}

#[test]
fn cc_is_swappable_and_validated_at_construction() {
    let s = TcpStack::with_cc(A, "cubic", slmetrics::shared()).expect("cubic ships");
    assert_eq!(s.cc_name(), "cubic");
    let err = TcpStack::with_cc(A, "vegas", slmetrics::shared())
        .err()
        .expect("unknown controller must be a typed error, not a panic");
    assert!(err.to_string().contains("vegas"), "{err}");
}

#[test]
fn cc_counters_observe_loss_recovery() {
    // Same lossy setup as `fast_retransmit_fires_under_single_loss`; the
    // per-connection CC counters must show the episodes the stats counted.
    let params = LinkParams::delay_only(Dur::from_millis(10))
        .with_fault(FaultProfile::lossy(0.03));
    let (mut net, nc, ns, conn) = pair(11, params);
    run_for(&mut net, Dur::from_secs(3));
    let data = vec![7u8; 120_000];
    client(&mut net, nc).send(conn, &data);
    net.poll_all();
    let mut got = Vec::new();
    for _ in 0..120 {
        run_for(&mut net, Dur::from_secs(1));
        if let Some(&sconn) = client(&mut net, ns).established().first() {
            got.extend(client(&mut net, ns).recv(sconn));
        }
        if got.len() >= data.len() {
            break;
        }
    }
    assert_eq!(got.len(), data.len());
    let cc = client(&mut net, nc).conn_cc(conn).expect("live connection");
    assert!(cc.samples > 0, "{cc:?}");
    assert!(cc.cwnd_peak >= cc.cwnd_last, "{cc:?}");
    assert!(cc.dupack_losses + cc.rto_resets > 0, "3% loss must show up: {cc:?}");
    if cc.dupack_losses > 0 {
        assert!(cc.fast_recoveries > 0, "dupack loss opens an episode: {cc:?}");
    }
}

#[test]
fn frto_classifies_bufferbloat_timeout_as_spurious() {
    // Three flows slow-starting into one lossless 2 Mbps bottleneck: the
    // shared serialization queue inflates the RTT past the estimator's
    // RTO, so timeouts fire with nothing lost. F-RTO must recognize the
    // spurious timeout from ack progress and cancel the go-back-N
    // replay — the failure mode is a self-sustaining duplicate storm in
    // which every replayed segment draws dup acks that open fresh
    // "loss" episodes and collapse goodput.
    fn peek(frame: &[u8]) -> Option<(u32, u32)> {
        if frame.len() < 28 {
            return None;
        }
        let src = u32::from_be_bytes(frame.get(0..4)?.try_into().ok()?);
        let dst = u32::from_be_bytes(frame.get(4..8)?.try_into().ok()?);
        Some((src, dst))
    }
    use netlayer::{box_host_addr, topo_fanin};
    let mut net = SimNet::new(1);
    let bn = topo_fanin().build(&mut net, peek);
    let saddr = box_host_addr(3);
    let mut server = TcpStack::new(saddr, slmetrics::shared());
    server.listen(80);
    let mut clients = Vec::new();
    for i in 0..3usize {
        let mut c = TcpStack::new(box_host_addr(i), slmetrics::shared());
        let conn = c.connect(Time::ZERO, 5000 + i as u16, Endpoint::new(saddr, 80));
        let id = net.add_node(Box::new(StackNode::new(c)));
        let (router, port) = bn.host_ports[i];
        net.connect(id, 0, router, port, LinkParams::delay_only(Dur::from_millis(1)));
        clients.push((id, conn));
    }
    let ns = {
        let id = net.add_node(Box::new(StackNode::new(server)));
        let (router, port) = bn.host_ports[3];
        net.connect(id, 0, router, port, LinkParams::delay_only(Dur::from_millis(1)));
        id
    };
    net.poll_all();
    let data = vec![9u8; 400_000];
    let mut sent = [0usize; 3];
    let mut got = 0usize;
    let end = Time::ZERO + Dur::from_secs(5);
    while net.now() < end {
        run_for(&mut net, Dur::from_millis(50));
        for (i, &(id, conn)) in clients.iter().enumerate() {
            if sent[i] < data.len() {
                sent[i] += client(&mut net, id).send(conn, &data[sent[i]..]);
            }
        }
        let sv = client(&mut net, ns);
        for sconn in sv.established() {
            got += sv.recv(sconn).len();
        }
        net.poll_all();
    }
    let mut spurious = 0;
    let mut dupack_losses = 0;
    for &(id, conn) in &clients {
        let c = client(&mut net, id);
        assert!(c.conn_error(conn).is_none(), "no abort on a lossless net");
        spurious += c.stats.spurious_rtos;
        dupack_losses += c.conn_cc(conn).expect("live").dupack_losses;
    }
    assert!(spurious > 0, "competing slow-starts must outrun the RTO estimator");
    assert_eq!(dupack_losses, 0, "no real loss, so no dup-ack episode may open");
    // 5 s at 2 Mbps carries 1.25 MB; the duplicate-storm collapse this
    // pins delivered well under half of that.
    assert!(got > 875_000, "goodput collapsed: {got} bytes in 5s");
}

#[test]
fn syn_retransmission_survives_lost_handshake() {
    // Drop the first several frames deterministically via heavy loss, then
    // heal the link: the handshake must still complete thanks to SYN
    // retransmission.
    let params =
        LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile::lossy(1.0));
    let (mut net, nc, _ns, conn) = pair(12, params);
    run_for(&mut net, Dur::from_secs(2)); // SYNs all lost
    assert_eq!(client(&mut net, nc).state(conn), TcpState::SynSent);
    net.heal_link(0);
    run_for(&mut net, Dur::from_secs(10));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Established);
}

#[test]
fn zero_window_is_respected_then_probed() {
    let (mut net, nc, ns, conn) = pair(13, LinkParams::delay_only(Dur::from_millis(2)));
    run_for(&mut net, Dur::from_secs(1));
    // Fill the receiver's buffer completely (server app never reads).
    let data = vec![1u8; 80_000];
    client(&mut net, nc).send(conn, &data);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(30));
    let sconn = client(&mut net, ns).established()[0];
    // Receiver holds roughly its buffer capacity; sender still has bytes.
    let held = client(&mut net, ns).recv(sconn).len();
    assert!(held >= 60_000, "receiver should have buffered near capacity, got {held}");
    // After the app read, the window reopens and the rest flows.
    net.poll_all();
    run_for(&mut net, Dur::from_secs(30));
    let rest = client(&mut net, ns).recv(sconn);
    assert_eq!(held + rest.len(), data.len());
}

#[test]
fn two_connections_multiplex_on_one_host_pair() {
    let mut c = TcpStack::new(A, slmetrics::shared());
    let mut s = TcpStack::new(B, slmetrics::shared());
    s.listen(80);
    s.listen(443);
    let c1 = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let c2 = c.connect(Time::ZERO, 5001, Endpoint::new(B, 443));
    let (mut net, nc, ns) = two_party(14, c, s, LinkParams::delay_only(Dur::from_millis(3)));
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    client(&mut net, nc).send(c1, b"alpha");
    client(&mut net, nc).send(c2, b"beta");
    net.poll_all();
    run_for(&mut net, Dur::from_secs(3));
    let sconns = client(&mut net, ns).established();
    assert_eq!(sconns.len(), 2);
    let mut by_port: Vec<(u16, Vec<u8>)> = sconns
        .iter()
        .map(|&t| (t.local.port, client(&mut net, ns).recv(t)))
        .collect();
    by_port.sort();
    assert_eq!(by_port, vec![(80, b"alpha".to_vec()), (443, b"beta".to_vec())]);
}

#[test]
fn entanglement_log_shows_shared_pcb_fields() {
    // The monolithic design's signature: multiple subfunctions touch the
    // same fields.
    let log = slmetrics::shared();
    let mut c = TcpStack::new(A, log.clone());
    let mut s = TcpStack::new(B, slmetrics::shared());
    s.listen(80);
    let conn = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, _) = two_party(15, c, s, LinkParams::delay_only(Dur::from_millis(3)));
    net.poll_all();
    run_for(&mut net, Dur::from_secs(1));
    client(&mut net, nc).send(conn, &vec![0u8; 30_000]);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(10));
    let m = slmetrics::InteractionMatrix::from_log(&log.borrow());
    assert!(
        m.entanglement_score() > 0,
        "monolithic TCP must show cross-subfunction state sharing"
    );
    assert!(
        m.interacting_pairs() >= 3,
        "several subfunction pairs interact: {:?}",
        m.pair_shared
    );
}

#[test]
fn rto_backoff_on_dead_link() {
    let (mut net, nc, _ns, conn) = pair(16, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    // Establish, then kill the link and send.
    net.fail_link(0);
    client(&mut net, nc).send(conn, b"into the void");
    net.poll_all();
    // RTO backs off 1s,2s,4s,...,60s; exhausting MAX_RETRIES takes ~6 min.
    run_for(&mut net, Dur::from_secs(600));
    let st = client(&mut net, nc).stats.clone();
    assert!(st.rto_retransmits >= 3, "expected repeated RTO firing, got {st:?}");
    // Eventually the connection gives up.
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Closed);
}

#[test]
fn simultaneous_open() {
    // Both sides connect to each other at once: RFC 793's simultaneous
    // open must converge to a single established connection.
    let mut x = TcpStack::new(A, slmetrics::shared());
    let mut y = TcpStack::new(B, slmetrics::shared());
    let cx = x.connect(Time::ZERO, 7000, Endpoint::new(B, 7001));
    let cy = y.connect(Time::ZERO, 7001, Endpoint::new(A, 7000));
    let (mut net, nx, ny) = two_party(31, x, y, LinkParams::delay_only(Dur::from_millis(5)));
    net.poll_all();
    run_for(&mut net, Dur::from_secs(10));
    assert_eq!(client(&mut net, nx).state(cx), TcpState::Established);
    assert_eq!(client(&mut net, ny).state(cy), TcpState::Established);
    // And data flows.
    client(&mut net, nx).send(cx, b"simul");
    net.poll_all();
    run_for(&mut net, Dur::from_secs(3));
    assert_eq!(client(&mut net, ny).recv(cy), b"simul");
}

#[test]
fn abort_sends_rst_and_peer_resets() {
    let (mut net, nc, ns, conn) = pair(32, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let sconn = client(&mut net, ns).established()[0];
    client(&mut net, nc).abort(conn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Closed);
    assert_eq!(client(&mut net, ns).state(sconn), TcpState::Closed);
    assert!(client(&mut net, ns).stats.conns_reset >= 1);
}

#[test]
fn partition_mid_transfer_surfaces_clean_abort() {
    // Parity with the sublayered stack: a link that dies mid-transfer
    // must end in a *reported* abort, never a hang.
    let (mut net, nc, _ns, conn) = pair(40, LinkParams::delay_only(Dur::from_millis(10)));
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Established);
    let data = vec![5u8; 200_000];
    client(&mut net, nc).send(conn, &data);
    net.poll_all();
    run_for(&mut net, Dur::from_millis(10));
    net.set_link_up(0, false);
    // MAX_RETRIES=10 with backoff to 60 s: exhaustion takes ~4 minutes.
    run_for(&mut net, Dur::from_secs(400));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Closed);
    assert_eq!(
        client(&mut net, nc).conn_error(conn),
        Some(TransportError::RetriesExhausted)
    );
    assert!(net.link_dir_stats(0, 0).partition_drops > 0);
    assert!(net.is_idle(), "no timers may keep spinning after the abort");
}

#[test]
fn handshake_failure_on_dead_link_is_reported() {
    let params =
        LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile::lossy(1.0));
    let (mut net, nc, _ns, conn) = pair(41, params);
    // SYN retries back off 1,2,4,...; MAX_SYN_RETRIES=6 exhausts in ~2 min.
    run_for(&mut net, Dur::from_secs(200));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Closed);
    assert_eq!(
        client(&mut net, nc).conn_error(conn),
        Some(TransportError::HandshakeFailed)
    );
    assert!(net.is_idle());
}

#[test]
fn keepalive_detects_vanished_peer_on_both_sides() {
    let ka = Keepalive {
        idle: Dur::from_secs(5),
        interval: Dur::from_secs(1),
        max_probes: 3,
    };
    let mut c = TcpStack::new(A, slmetrics::shared());
    let mut s = TcpStack::new(B, slmetrics::shared());
    c.set_keepalive(ka);
    s.set_keepalive(ka);
    s.listen(80);
    let conn = c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, ns) = two_party(42, c, s, LinkParams::delay_only(Dur::from_millis(5)));
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    let sconn = client(&mut net, ns).established()[0];

    // A healthy but idle connection survives: probes are answered.
    run_for(&mut net, Dur::from_secs(30));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Established);
    assert_eq!(client(&mut net, ns).state(sconn), TcpState::Established);
    assert!(client(&mut net, nc).stats.keepalive_probes > 0);

    // Partition: probes go unanswered and both sides abort cleanly.
    net.set_link_up(0, false);
    run_for(&mut net, Dur::from_secs(30));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Closed);
    assert_eq!(client(&mut net, ns).state(sconn), TcpState::Closed);
    assert_eq!(
        client(&mut net, nc).conn_error(conn),
        Some(TransportError::PeerVanished)
    );
    assert_eq!(
        client(&mut net, ns).conn_error(sconn),
        Some(TransportError::PeerVanished)
    );
    assert!(net.is_idle(), "dead keepalive conns must not leak timers");
}

#[test]
fn local_abort_records_reset_on_both_ends() {
    let (mut net, nc, ns, conn) = pair(43, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let sconn = client(&mut net, ns).established()[0];
    client(&mut net, nc).abort(conn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(client(&mut net, nc).conn_error(conn), Some(TransportError::Reset));
    assert_eq!(client(&mut net, ns).conn_error(sconn), Some(TransportError::Reset));
}

#[test]
fn half_close_allows_continued_receive() {
    // Client closes its direction; server may keep sending (CLOSE_WAIT).
    let (mut net, nc, ns, conn) = pair(33, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let sconn = client(&mut net, ns).established()[0];
    client(&mut net, nc).close(conn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(client(&mut net, ns).state(sconn), TcpState::CloseWait);
    client(&mut net, ns).send(sconn, b"still talking");
    net.poll_all();
    run_for(&mut net, Dur::from_secs(3));
    assert_eq!(client(&mut net, nc).recv(conn), b"still talking");
}

// ---------------------------------------------------------------------
// RFC 5961 injection defenses + SYN-flood resource governance (PR 2)
// ---------------------------------------------------------------------

#[test]
fn inwindow_blind_rst_is_challenged_not_fatal() {
    use crate::wire::{Segment, RST};
    use netsim::Stack;
    let (mut net, nc, _ns, conn) = pair(60, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Established);
    // Forge an RST whose sequence is inside the window but not exactly
    // rcv_nxt — the best a blind (sub-threshold) attacker can do.
    let rcv_nxt = client(&mut net, nc).pcb(conn).unwrap().rcv_nxt;
    let rst = Segment {
        src: conn.remote,
        dst: conn.local,
        seq: rcv_nxt.wrapping_add(100),
        ack: 0,
        flags: RST,
        wnd: 0,
        mss: None,
        payload: Vec::new(),
    };
    let now = net.now();
    client(&mut net, nc).on_frame(now, &rst.encode());
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Established, "blind RST must not kill");
    assert_eq!(client(&mut net, nc).stats.challenge_acks, 1);
    assert_eq!(client(&mut net, nc).conn_error(conn), None);
}

#[test]
fn exact_sequence_rst_still_resets() {
    use crate::wire::{Segment, RST};
    use netsim::Stack;
    let (mut net, nc, _ns, conn) = pair(61, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(2));
    let rcv_nxt = client(&mut net, nc).pcb(conn).unwrap().rcv_nxt;
    let rst = Segment {
        src: conn.remote,
        dst: conn.local,
        seq: rcv_nxt,
        ack: 0,
        flags: RST,
        wnd: 0,
        mss: None,
        payload: Vec::new(),
    };
    let now = net.now();
    client(&mut net, nc).on_frame(now, &rst.encode());
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Closed);
    assert_eq!(client(&mut net, nc).conn_error(conn), Some(TransportError::Reset));
}

#[test]
fn inwindow_syn_is_challenged_not_reset() {
    use crate::wire::{Segment, SYN};
    use netsim::Stack;
    let (mut net, nc, _ns, conn) = pair(62, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(2));
    let rcv_nxt = client(&mut net, nc).pcb(conn).unwrap().rcv_nxt;
    let syn = Segment {
        src: conn.remote,
        dst: conn.local,
        seq: rcv_nxt.wrapping_add(5),
        ack: 0,
        flags: SYN,
        wnd: 100,
        mss: None,
        payload: Vec::new(),
    };
    let now = net.now();
    let rsts_before = client(&mut net, nc).stats.rsts_sent;
    client(&mut net, nc).on_frame(now, &syn.encode());
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Established);
    assert_eq!(client(&mut net, nc).stats.challenge_acks, 1);
    assert_eq!(client(&mut net, nc).stats.rsts_sent, rsts_before, "no RST for in-window SYN");
}

#[test]
fn ancient_blind_ack_dropped_silently() {
    use crate::wire::{Segment, ACK};
    use netsim::Stack;
    let (mut net, nc, _ns, conn) = pair(63, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(2));
    let p = client(&mut net, nc).pcb(conn).unwrap();
    let (snd_una, rcv_nxt) = (p.snd_una, p.rcv_nxt);
    let ack = Segment {
        src: conn.remote,
        dst: conn.local,
        seq: rcv_nxt,
        ack: snd_una.wrapping_sub(1_000_000),
        flags: ACK,
        wnd: 100,
        mss: None,
        payload: Vec::new(),
    };
    let now = net.now();
    client(&mut net, nc).on_frame(now, &ack.encode());
    assert_eq!(client(&mut net, nc).stats.old_ack_drops, 1);
    assert_eq!(client(&mut net, nc).state(conn), TcpState::Established);
}

#[test]
fn syn_flood_is_bounded_and_falls_back_to_cookies() {
    use crate::stack::MAX_HALF_OPEN;
    use crate::wire::{Segment, SYN};
    use netsim::Stack;
    let mut server = TcpStack::new(B, slmetrics::shared());
    server.listen(80);
    for i in 0..100u16 {
        let syn = Segment {
            src: Endpoint::new(0xC0000000 + i as u32, 1000 + i),
            dst: Endpoint::new(B, 80),
            seq: 7777 + i as u32,
            ack: 0,
            flags: SYN,
            wnd: 1000,
            mss: Some(1000),
            payload: Vec::new(),
        };
        server.on_frame(Time::ZERO, &syn.encode());
    }
    assert!(server.half_open_count() <= MAX_HALF_OPEN, "half-open queue must stay bounded");
    assert_eq!(server.half_open_count(), MAX_HALF_OPEN);
    assert_eq!(server.stats.syn_cookies_sent, 100 - MAX_HALF_OPEN as u64);
}

#[test]
fn syn_cookie_completion_establishes_connection() {
    use crate::stack::MAX_HALF_OPEN;
    use crate::wire::{Segment, ACK, SYN};
    use netsim::Stack;
    let mut server = TcpStack::new(B, slmetrics::shared());
    server.listen(80);
    // Fill the half-open queue, then one more SYN gets a cookie.
    for i in 0..MAX_HALF_OPEN as u16 {
        let syn = Segment {
            src: Endpoint::new(0xC0000000 + i as u32, 1000 + i),
            dst: Endpoint::new(B, 80),
            seq: 1000 + i as u32,
            ack: 0,
            flags: SYN,
            wnd: 1000,
            mss: Some(1000),
            payload: Vec::new(),
        };
        server.on_frame(Time::ZERO, &syn.encode());
    }
    let legit = Endpoint::new(A, 5000);
    let syn = Segment {
        src: legit,
        dst: Endpoint::new(B, 80),
        seq: 42_000,
        ack: 0,
        flags: SYN,
        wnd: 8000,
        mss: Some(1000),
        payload: Vec::new(),
    };
    server.on_frame(Time::ZERO, &syn.encode());
    assert_eq!(server.stats.syn_cookies_sent, 1);
    // Find the stateless SYN|ACK addressed to the legit client.
    let mut cookie = None;
    while let Some(f) = server.poll_transmit(Time::ZERO) {
        let seg = Segment::decode(&f).unwrap();
        if seg.dst == legit && seg.syn() && seg.ack_flag() {
            assert_eq!(seg.ack, 42_001);
            cookie = Some(seg.seq);
        }
    }
    let cookie = cookie.expect("cookie SYN|ACK emitted");
    // Complete the handshake from the cookie alone.
    let ack = Segment {
        src: legit,
        dst: Endpoint::new(B, 80),
        seq: 42_001,
        ack: cookie.wrapping_add(1),
        flags: ACK,
        wnd: 8000,
        mss: None,
        payload: Vec::new(),
    };
    server.on_frame(Time::ZERO + Dur::from_millis(10), &ack.encode());
    assert_eq!(server.stats.syn_cookies_validated, 1);
    let tuple = FourTuple { local: Endpoint::new(B, 80), remote: legit };
    assert_eq!(server.state(tuple), TcpState::Established);
    // A wrong cookie must NOT establish and is answered with RST.
    let bad = Segment {
        src: Endpoint::new(A, 5001),
        dst: Endpoint::new(B, 80),
        seq: 9,
        ack: 1234,
        flags: ACK,
        wnd: 8000,
        mss: None,
        payload: Vec::new(),
    };
    let rsts = server.stats.rsts_sent;
    server.on_frame(Time::ZERO + Dur::from_millis(11), &bad.encode());
    assert_eq!(server.stats.syn_cookies_validated, 1);
    assert_eq!(server.stats.rsts_sent, rsts + 1);
}

#[test]
fn stale_half_open_is_evicted_for_fresh_syn() {
    use crate::stack::MAX_HALF_OPEN;
    use crate::wire::{Segment, SYN};
    use netsim::Stack;
    let mut server = TcpStack::new(B, slmetrics::shared());
    server.listen(80);
    for i in 0..MAX_HALF_OPEN as u16 {
        let syn = Segment {
            src: Endpoint::new(0xC0000000 + i as u32, 1000 + i),
            dst: Endpoint::new(B, 80),
            seq: 1000 + i as u32,
            ack: 0,
            flags: SYN,
            wnd: 1000,
            mss: Some(1000),
            payload: Vec::new(),
        };
        server.on_frame(Time::ZERO, &syn.encode());
    }
    // Two seconds later the embryos are stale; a fresh SYN evicts one
    // instead of burning a cookie.
    let syn = Segment {
        src: Endpoint::new(A, 5000),
        dst: Endpoint::new(B, 80),
        seq: 5,
        ack: 0,
        flags: SYN,
        wnd: 1000,
        mss: Some(1000),
        payload: Vec::new(),
    };
    server.on_frame(Time::ZERO + Dur::from_secs(2), &syn.encode());
    assert_eq!(server.stats.half_open_evictions, 1);
    assert_eq!(server.stats.syn_cookies_sent, 0);
    assert!(server.half_open_count() <= MAX_HALF_OPEN);
}

#[test]
fn ooo_reassembly_is_byte_capped() {
    use crate::pcb::RCV_BUF_CAP;
    use crate::wire::{Segment, ACK};
    use netsim::Stack;
    let (mut net, nc, _ns, conn) = pair(64, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(2));
    let p = client(&mut net, nc).pcb(conn).unwrap();
    let (rcv_nxt, snd_nxt) = (p.rcv_nxt, p.snd_nxt);
    let now = net.now();
    // Spray *overlapping* out-of-order segments (distinct start offsets,
    // shared bytes) behind a one-byte gap: each is in-window, but their
    // sum is far beyond the receive buffer — only the byte cap stops it.
    for i in 0..100u32 {
        let seg = Segment {
            src: conn.remote,
            dst: conn.local,
            seq: rcv_nxt.wrapping_add(1 + i * 100),
            ack: snd_nxt,
            flags: ACK,
            wnd: 8000,
            mss: None,
            payload: vec![0xEE; 900],
        };
        client(&mut net, nc).on_frame(now, &seg.encode());
    }
    let held: usize = client(&mut net, nc)
        .pcb(conn)
        .unwrap()
        .ooo
        .values()
        .map(|d| d.len())
        .sum();
    assert!(held <= RCV_BUF_CAP, "ooo bytes {held} exceed cap");
    assert!(client(&mut net, nc).stats.ooo_overflow_drops > 0);
}

#[test]
fn send_buffer_backpressure_caps_acceptance() {
    use crate::stack::SND_BUF_CAP;
    let (mut net, nc, _ns, conn) = pair(65, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(2));
    let big = vec![1u8; SND_BUF_CAP + 4096];
    let accepted = client(&mut net, nc).send(conn, &big);
    assert!(accepted <= SND_BUF_CAP);
    let again = client(&mut net, nc).send(conn, &big);
    assert_eq!(again, 0, "full buffer accepts nothing");
}

#[test]
fn conn_table_capacity_is_typed_not_fatal() {
    let mut s = TcpStack::new(A, slmetrics::shared());
    s.set_max_conns(2);
    let r = Endpoint::new(B, 80);
    assert!(s.try_connect(Time::ZERO, 5001, r).is_ok());
    assert!(s.try_connect(Time::ZERO, 5002, r).is_ok());
    assert_eq!(s.try_connect(Time::ZERO, 5003, r), Err(TransportError::ConnTableFull));
    // An already-bound tuple is the same typed refusal, not a panic.
    let mut s = TcpStack::new(A, slmetrics::shared());
    assert!(s.try_connect(Time::ZERO, 5001, r).is_ok());
    assert_eq!(s.try_connect(Time::ZERO, 5001, r), Err(TransportError::ConnTableFull));
}

#[test]
fn ephemeral_port_exhaustion_is_typed() {
    let mut s = TcpStack::new(A, slmetrics::shared());
    s.set_max_conns(usize::MAX);
    let r = Endpoint::new(B, 80);
    for _ in 0..16384 {
        s.try_connect_ephemeral(Time::ZERO, r).unwrap();
    }
    assert_eq!(
        s.try_connect_ephemeral(Time::ZERO, r),
        Err(TransportError::PortsExhausted)
    );
    // A different remote endpoint still has its whole port range.
    assert!(s.try_connect_ephemeral(Time::ZERO, Endpoint::new(B, 81)).is_ok());
}

/// Drive a standalone server stack through a stateful passive open from
/// `src` and return the established tuple (for the pressure tests, which
/// need exact control over segment timing).
fn standalone_accept(s: &mut TcpStack, now: Time, src: Endpoint) -> FourTuple {
    use crate::wire::{Segment, ACK, SYN};
    use netsim::Stack;
    let syn = Segment {
        src,
        dst: Endpoint::new(B, 80),
        seq: 100,
        ack: 0,
        flags: SYN,
        wnd: 8000,
        mss: Some(1000),
        payload: Vec::new(),
    };
    s.on_frame(now, &syn.encode());
    let mut iss = None;
    while let Some(f) = s.poll_transmit(now) {
        let seg = Segment::decode(&f).unwrap();
        if seg.dst == src && seg.syn() && seg.ack_flag() {
            iss = Some(seg.seq);
        }
    }
    let iss = iss.expect("SYN|ACK emitted");
    let ack = Segment {
        src,
        dst: Endpoint::new(B, 80),
        seq: 101,
        ack: iss.wrapping_add(1),
        flags: ACK,
        wnd: 8000,
        mss: None,
        payload: Vec::new(),
    };
    s.on_frame(now, &ack.encode());
    let tuple = FourTuple { local: Endpoint::new(B, 80), remote: src };
    assert_eq!(s.state(tuple), TcpState::Established);
    tuple
}

#[test]
fn pressure_clamps_advertised_window() {
    use crate::pcb::RCV_BUF_CAP;
    use crate::wire::Segment;
    use netsim::Stack;
    use slmetrics::Pressure;
    let syn_wnd = |p: Pressure| {
        let mut s = TcpStack::new(A, slmetrics::shared());
        s.set_pressure(p);
        s.try_connect(Time::ZERO, 5000, Endpoint::new(B, 80)).unwrap();
        let f = s.poll_transmit(Time::ZERO).expect("SYN emitted");
        Segment::decode(&f).unwrap().wnd as usize
    };
    assert_eq!(syn_wnd(Pressure::Nominal), RCV_BUF_CAP);
    assert_eq!(syn_wnd(Pressure::Elevated), RCV_BUF_CAP >> 1);
    assert_eq!(syn_wnd(Pressure::High), RCV_BUF_CAP >> 2);
    let critical = syn_wnd(Pressure::Critical);
    assert_eq!(critical, RCV_BUF_CAP >> 3);
    assert!(critical > 0, "the window never clamps to zero");
}

#[test]
fn critical_pressure_refuses_new_flows_but_not_established() {
    use crate::wire::{Segment, ACK, SYN};
    use netsim::Stack;
    use slmetrics::Pressure;
    let mut s = TcpStack::new(B, slmetrics::shared());
    s.listen(80);
    let tuple = standalone_accept(&mut s, Time::ZERO, Endpoint::new(A, 5000));
    s.set_pressure(Pressure::Critical);
    // A fresh SYN is refused statelessly with a RST.
    let rsts = s.stats.rsts_sent;
    let syn = Segment {
        src: Endpoint::new(A, 5001),
        dst: Endpoint::new(B, 80),
        seq: 7,
        ack: 0,
        flags: SYN,
        wnd: 4096,
        mss: Some(1000),
        payload: Vec::new(),
    };
    s.on_frame(Time::ZERO, &syn.encode());
    assert_eq!(s.conn_count(), 1, "new flow refused under Critical pressure");
    assert_eq!(s.stats.pressure_refusals, 1);
    assert_eq!(s.stats.rsts_sent, rsts + 1);
    // The established connection still makes progress.
    let data = Segment {
        src: tuple.remote,
        dst: tuple.local,
        seq: 101,
        ack: s.pcb(tuple).unwrap().snd_nxt,
        flags: ACK,
        wnd: 8000,
        mss: None,
        payload: vec![9u8; 300],
    };
    s.on_frame(Time::ZERO + Dur::from_millis(1), &data.encode());
    assert_eq!(s.recv(tuple), vec![9u8; 300]);
    // 301 receive-side (SYN + 300 payload bytes) + 1 send-side (our
    // SYN|ACK's sequence slot was acked).
    assert_eq!(s.conn_progress(tuple), 302);
    // Recovery reopens admission.
    s.set_pressure(Pressure::Nominal);
    s.on_frame(Time::ZERO + Dur::from_millis(2), &syn.encode());
    assert_eq!(s.conn_count(), 2, "admission resumes at Nominal");
}

#[test]
fn paced_ack_is_held_then_flushed_at_deadline() {
    use crate::stack::ACK_PACE_DELAY;
    use crate::wire::{Segment, ACK};
    use netsim::Stack;
    use slmetrics::Pressure;
    let mut s = TcpStack::new(B, slmetrics::shared());
    s.listen(80);
    let tuple = standalone_accept(&mut s, Time::ZERO, Endpoint::new(A, 5000));
    s.set_pressure(Pressure::High);
    let t1 = Time::ZERO + Dur::from_millis(10);
    let data = Segment {
        src: tuple.remote,
        dst: tuple.local,
        seq: 101,
        ack: s.pcb(tuple).unwrap().snd_nxt,
        flags: ACK,
        wnd: 8000,
        mss: None,
        payload: vec![7u8; 500],
    };
    s.on_frame(t1, &data.encode());
    assert_eq!(s.stats.acks_paced, 1);
    assert!(s.poll_transmit(t1).is_none(), "pure ack held while paced");
    // The pacing deadline surfaces through conn_deadline so hosts rearm.
    assert_eq!(s.conn_deadline(t1, tuple), Some(t1 + ACK_PACE_DELAY));
    assert!(s.poll_transmit(t1 + Dur::from_millis(49)).is_none());
    let f = s
        .poll_transmit(t1 + ACK_PACE_DELAY)
        .expect("paced ack released at deadline");
    let seg = Segment::decode(&f).unwrap();
    assert!(seg.payload.is_empty());
    assert_eq!(seg.ack, 101 + 500, "the flushed ack covers the data");
    assert_eq!(s.pcb(tuple).unwrap().delayed_ack_deadline, None);
    // Dropping back to Nominal releases immediately on the next owed ack.
    s.set_pressure(Pressure::Nominal);
    let t2 = t1 + Dur::from_millis(100);
    let more = Segment {
        src: tuple.remote,
        dst: tuple.local,
        seq: 601,
        ack: s.pcb(tuple).unwrap().snd_nxt,
        flags: ACK,
        wnd: 8000,
        mss: None,
        payload: vec![8u8; 200],
    };
    s.on_frame(t2, &more.encode());
    assert_eq!(s.stats.acks_paced, 1, "no pacing at Nominal");
}

#[test]
fn full_table_refuses_inbound_syn_with_rst() {
    use crate::wire::{Segment, SYN};
    use netsim::Stack;
    let mut s = TcpStack::new(B, slmetrics::shared());
    s.set_max_conns(1);
    s.listen(80);
    let syn = |src: Endpoint| Segment {
        src,
        dst: Endpoint::new(B, 80),
        seq: 100,
        ack: 0,
        flags: SYN,
        wnd: 4096,
        mss: Some(1000),
        payload: Vec::new(),
    };
    s.on_frame(Time::ZERO, &syn(Endpoint::new(A, 5000)).encode());
    assert_eq!(s.conn_count(), 1);
    let rsts_before = s.stats.rsts_sent;
    s.on_frame(Time::ZERO, &syn(Endpoint::new(A, 5001)).encode());
    assert_eq!(s.conn_count(), 1, "second flow refused");
    assert_eq!(s.stats.conn_table_full_drops, 1);
    assert_eq!(s.stats.rsts_sent, rsts_before + 1, "refusal is a RST, not silence");
}
