//! Seeded fxhash-style 4-tuple mixing — the one hash shared by the demux
//! tables in both stacks and the `slshard` shard router.
//!
//! The demux sublayer is stateless about *how* a tuple maps to a bucket, so
//! the same mix can pick a `HashMap` slot on one host and a shard index on
//! another and a tuple always lands in the same place. The mix is the
//! Firefox/rustc "fx" multiply-rotate step (word-at-a-time, no lookup
//! tables, ~1ns per tuple) with two twists the stock fxhash lacks:
//!
//! 1. a **seed**, so distinct hosts/runs can perturb bucket placement
//!    (hash-flood hardening without SipHash's cost), and
//! 2. a final xor-shift **avalanche**, so the *low* bits — the ones
//!    `HashMap` and `shard_of`'s modulo actually use — depend on every
//!    input bit. Raw fxhash is notoriously weak in its low bits.

use crate::wire::FourTuple;
use std::hash::{BuildHasher, Hasher};

/// The fx multiply constant (64-bit golden-ratio-ish odd multiplier).
const FX_MUL: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time fx mixer with a seed and a finalizing avalanche.
#[derive(Clone, Copy, Debug)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    pub fn with_seed(seed: u64) -> FxHasher {
        // Pre-mix the seed so seed=0 is not the identity state.
        FxHasher { hash: seed ^ FX_MUL }
    }

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_MUL);
    }
}

impl Default for FxHasher {
    fn default() -> FxHasher {
        FxHasher::with_seed(0)
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // xor-shift avalanche: raw fx leaves low bits under-mixed, and the
        // low bits are exactly what modulo shard selection consumes.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(FX_MUL);
        h ^= h >> 29;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// `BuildHasher` for `HashMap::with_hasher` — a seeded, deterministic
/// replacement for the std `RandomState` SipHash on the 4-tuple demux
/// tables (ROADMAP item 1: "a faster 4-tuple hash").
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher {
    seed: u64,
}

impl FxBuildHasher {
    pub fn with_seed(seed: u64) -> FxBuildHasher {
        FxBuildHasher { seed }
    }
}

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::with_seed(self.seed)
    }
}

/// Hash a 4-tuple with the shared mix. This is the *single* tuple-hash
/// implementation: the demux `HashMap`s reach it through
/// [`FxBuildHasher`] + `FourTuple`'s derived `Hash` (which feeds the same
/// field words to [`FxHasher`]), and the shard router calls it directly.
#[inline]
pub fn tuple_hash(seed: u64, t: &FourTuple) -> u64 {
    let mut h = FxHasher::with_seed(seed);
    h.write_u32(t.local.addr);
    h.write_u16(t.local.port);
    h.write_u32(t.remote.addr);
    h.write_u16(t.remote.port);
    h.finish()
}

/// Consistent shard selection: a tuple always lands on the same shard for
/// a given (seed, shard-count), independent of arrival order or table
/// contents — the property that makes the stateless demux a shard router.
#[inline]
pub fn shard_of(seed: u64, t: &FourTuple, shards: usize) -> usize {
    if shards <= 1 {
        0
    } else {
        (tuple_hash(seed, t) % shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Endpoint;
    use std::hash::Hash;

    fn tuple(la: u32, lp: u16, ra: u32, rp: u16) -> FourTuple {
        FourTuple { local: Endpoint::new(la, lp), remote: Endpoint::new(ra, rp) }
    }

    /// A scale-bench-shaped population: one server endpoint, many client
    /// addresses/ports with low entropy (sequential addrs, same port).
    fn client_population(n: usize) -> Vec<FourTuple> {
        (0..n)
            .map(|i| tuple(0x0A000001, 80, 0x0A01_0000 + (i as u32), 5000))
            .collect()
    }

    #[test]
    fn stable_across_calls_and_seed_sensitive() {
        let t = tuple(1, 2, 3, 4);
        assert_eq!(tuple_hash(7, &t), tuple_hash(7, &t));
        assert_ne!(tuple_hash(7, &t), tuple_hash(8, &t));
        // Golden value: the shard router and any replay artifact depend on
        // this exact mix; an accidental change must fail loudly.
        assert_eq!(tuple_hash(0xC0FFEE, &t), 0xbf6d39edf618fe17);
    }

    #[test]
    fn derived_hash_goes_through_the_same_mixer() {
        // FourTuple's derive(Hash) feeds addr/port words into Hasher
        // write_u32/write_u16 — exactly what tuple_hash does by hand, so
        // the HashMap path and the shard router share one implementation.
        let t = tuple(9, 10, 11, 12);
        let mut h = FxHasher::with_seed(42);
        t.hash(&mut h);
        assert_eq!(h.finish(), tuple_hash(42, &t));
    }

    #[test]
    fn distribution_across_shard_counts() {
        // Low-entropy client population must still spread: for every shard
        // count we care about, max/mean occupancy stays under 1.25 at 100k
        // tuples (the bench gate for *work* balance is 1.5; placement
        // itself should be much tighter).
        let pop = client_population(100_000);
        for &shards in &[2usize, 4, 8, 16] {
            let mut buckets = vec![0u64; shards];
            for t in &pop {
                buckets[shard_of(0xDEADBEEF, t, shards)] += 1;
            }
            let max = *buckets.iter().max().unwrap() as f64;
            let mean = pop.len() as f64 / shards as f64;
            assert!(
                max / mean < 1.25,
                "shards={shards}: max/mean {:.3} buckets={buckets:?}",
                max / mean
            );
            assert!(buckets.iter().all(|&b| b > 0), "empty bucket at {shards} shards");
        }
    }

    #[test]
    fn low_bits_avalanche() {
        // Flipping any single input bit must flip ~half the low 16 bits on
        // average — the modulo-consuming bits raw fxhash leaves weak.
        let base = tuple(0x0A000001, 80, 0x0A010000, 5000);
        let h0 = tuple_hash(1, &base);
        let mut total_flips = 0u32;
        let mut cases = 0u32;
        for bit in 0..32 {
            let t = tuple(base.local.addr ^ (1 << bit), 80, 0x0A010000, 5000);
            total_flips += ((tuple_hash(1, &t) ^ h0) & 0xFFFF).count_ones();
            cases += 1;
        }
        for bit in 0..16 {
            let t = tuple(0x0A000001, 80, 0x0A010000, 5000 ^ (1 << bit));
            total_flips += ((tuple_hash(1, &t) ^ h0) & 0xFFFF).count_ones();
            cases += 1;
        }
        let avg = total_flips as f64 / cases as f64;
        assert!((5.0..11.0).contains(&avg), "weak avalanche: avg {avg:.2} of 16 low bits flip");
    }

    #[test]
    fn shard_of_is_consistent_and_total() {
        let t = tuple(1, 2, 3, 4);
        assert_eq!(shard_of(5, &t, 0), 0);
        assert_eq!(shard_of(5, &t, 1), 0);
        for shards in 2..10 {
            let s = shard_of(5, &t, shards);
            assert!(s < shards);
            assert_eq!(s, shard_of(5, &t, shards), "consistent re-hash");
        }
    }
}
