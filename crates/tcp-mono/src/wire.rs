//! The standard (RFC 793) TCP segment format, carried over a minimal
//! 8-byte network header (source/destination address) standing in for IP.
//!
//! This is the *monolithic* wire format: one header whose fields are read
//! and written by every subfunction — ports by demultiplexing, SYN/FIN and
//! ISNs by connection management, seq/ack by reliable delivery, window by
//! both flow control and (implicitly) congestion control. The sublayered
//! stack's shim (experiment E7) translates its native Figure-6 format to
//! and from exactly these bytes, which is what lets the two stacks
//! interoperate.

use std::fmt;

/// One end of a connection.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    pub addr: u32,
    pub port: u16,
}

impl Endpoint {
    pub fn new(addr: u32, port: u16) -> Endpoint {
        Endpoint { addr, port }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.addr.to_be_bytes();
        write!(f, "{}.{}.{}.{}:{}", b[0], b[1], b[2], b[3], self.port)
    }
}

/// Connection identifier: the classic 4-tuple, oriented (local, remote).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FourTuple {
    pub local: Endpoint,
    pub remote: Endpoint,
}

impl fmt::Debug for FourTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}<->{:?}", self.local, self.remote)
    }
}

pub const FIN: u8 = 0x01;
pub const SYN: u8 = 0x02;
pub const RST: u8 = 0x04;
pub const PSH: u8 = 0x08;
pub const ACK: u8 = 0x10;

/// Largest frame either codec will accept. Anything bigger than a maximal
/// TCP segment (60-byte header + 64 KiB payload + network header) is
/// hostile or corrupt, and rejecting it up front bounds what a decoder can
/// be made to allocate.
pub const MAX_FRAME_BYTES: usize = 8 + 60 + 65535;

/// Smallest well-formed frame: 8-byte network header plus the 20-byte
/// option-less TCP header. Exposed so cross-format tooling (the
/// `slconform` codec-equivalence certificate) can reason about the
/// format's floor without re-deriving it.
pub const MIN_SEGMENT_BYTES: usize = 28;

/// Typed decode failure: every way a frame can be malformed, so hostile
/// input is *classified*, never panicked on and never silently mis-parsed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than the fixed header (or an advertised variable part)
    /// requires.
    Truncated { need: usize, got: usize },
    /// Larger than [`MAX_FRAME_BYTES`].
    Oversized { limit: usize, got: usize },
    /// Checksum mismatch (corruption or deliberate mutation).
    BadChecksum,
    /// First byte is not the native-format magic (sublayered codec only).
    BadMagic,
    /// TCP data offset smaller than the minimum header or past the end of
    /// the segment.
    BadDataOffset,
    /// Malformed TCP option (bad length or overrun of the option area).
    BadOption,
    /// SACK count exceeds what the native header can carry.
    BadSackCount,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, got } => {
                write!(f, "truncated frame: need {need} bytes, got {got}")
            }
            WireError::Oversized { limit, got } => {
                write!(f, "oversized frame: {got} bytes exceeds limit {limit}")
            }
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::BadMagic => write!(f, "bad magic byte"),
            WireError::BadDataOffset => write!(f, "bad data offset"),
            WireError::BadOption => write!(f, "malformed TCP option"),
            WireError::BadSackCount => write!(f, "bad SACK count"),
        }
    }
}

/// A TCP segment plus its network-header addresses.
#[derive(Clone, PartialEq, Eq)]
pub struct Segment {
    pub src: Endpoint,
    pub dst: Endpoint,
    pub seq: u32,
    pub ack: u32,
    pub flags: u8,
    pub wnd: u16,
    /// MSS option (kind 2), carried on SYN segments.
    pub mss: Option<u16>,
    pub payload: Vec<u8>,
}

impl Segment {
    pub fn fin(&self) -> bool {
        self.flags & FIN != 0
    }
    pub fn syn(&self) -> bool {
        self.flags & SYN != 0
    }
    pub fn rst(&self) -> bool {
        self.flags & RST != 0
    }
    pub fn ack_flag(&self) -> bool {
        self.flags & ACK != 0
    }

    /// Sequence space the segment occupies (payload + SYN + FIN).
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + self.syn() as u32 + self.fin() as u32
    }

    /// Serialize, computing the checksum.
    pub fn encode(&self) -> Vec<u8> {
        let options_len: usize = if self.mss.is_some() { 4 } else { 0 };
        let data_offset_words = (20 + options_len) / 4;
        let mut out = Vec::with_capacity(28 + options_len + self.payload.len());
        out.extend_from_slice(&self.src.addr.to_be_bytes());
        out.extend_from_slice(&self.dst.addr.to_be_bytes());
        let tcp_start = out.len();
        out.extend_from_slice(&self.src.port.to_be_bytes());
        out.extend_from_slice(&self.dst.port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push((data_offset_words as u8) << 4);
        out.push(self.flags);
        out.extend_from_slice(&self.wnd.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer (unused)
        if let Some(mss) = self.mss {
            out.push(2); // kind: MSS
            out.push(4); // length
            out.extend_from_slice(&mss.to_be_bytes());
        }
        out.extend_from_slice(&self.payload);
        let csum = checksum(self.src.addr, self.dst.addr, &out[tcp_start..]);
        out[tcp_start + 16] = (csum >> 8) as u8;
        out[tcp_start + 17] = csum as u8;
        out
    }

    /// Parse and verify the checksum; a typed [`WireError`] for malformed
    /// or corrupt segments — hostile bytes must classify, never panic.
    pub fn decode(bytes: &[u8]) -> Result<Segment, WireError> {
        if bytes.len() < MIN_SEGMENT_BYTES {
            return Err(WireError::Truncated { need: MIN_SEGMENT_BYTES, got: bytes.len() });
        }
        if bytes.len() > MAX_FRAME_BYTES {
            return Err(WireError::Oversized { limit: MAX_FRAME_BYTES, got: bytes.len() });
        }
        let src_addr = u32::from_be_bytes(bytes[0..4].try_into().unwrap());
        let dst_addr = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
        let tcp = &bytes[8..];
        if checksum(src_addr, dst_addr, tcp) != 0 {
            return Err(WireError::BadChecksum); // csum incl. its own field is 0
        }
        let src_port = u16::from_be_bytes(tcp[0..2].try_into().unwrap());
        let dst_port = u16::from_be_bytes(tcp[2..4].try_into().unwrap());
        let seq = u32::from_be_bytes(tcp[4..8].try_into().unwrap());
        let ack = u32::from_be_bytes(tcp[8..12].try_into().unwrap());
        let data_offset = (tcp[12] >> 4) as usize * 4;
        if data_offset < 20 || data_offset > tcp.len() {
            return Err(WireError::BadDataOffset);
        }
        let flags = tcp[13] & 0x3F;
        let wnd = u16::from_be_bytes(tcp[14..16].try_into().unwrap());
        // Parse options (we understand only MSS).
        let mut mss = None;
        let mut i = 20;
        while i < data_offset {
            match tcp[i] {
                0 => break,    // end of options
                1 => i += 1,   // NOP
                2 => {
                    if i + 4 > data_offset {
                        return Err(WireError::BadOption);
                    }
                    mss = Some(u16::from_be_bytes(tcp[i + 2..i + 4].try_into().unwrap()));
                    i += 4;
                }
                _ => {
                    // Unknown option: skip by its length byte.
                    if i + 1 >= data_offset {
                        return Err(WireError::BadOption);
                    }
                    let l = tcp[i + 1] as usize;
                    if l < 2 || i + l > data_offset {
                        return Err(WireError::BadOption);
                    }
                    i += l;
                }
            }
        }
        Ok(Segment {
            src: Endpoint::new(src_addr, src_port),
            dst: Endpoint::new(dst_addr, dst_port),
            seq,
            ack,
            flags,
            wnd,
            mss,
            payload: tcp[data_offset..].to_vec(),
        })
    }
}

impl fmt::Debug for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut flags = String::new();
        for (bit, c) in [(SYN, 'S'), (ACK, 'A'), (FIN, 'F'), (RST, 'R'), (PSH, 'P')] {
            if self.flags & bit != 0 {
                flags.push(c);
            }
        }
        write!(
            f,
            "{:?}->{:?} [{flags}] seq={} ack={} wnd={} len={}",
            self.src,
            self.dst,
            self.seq,
            self.ack,
            self.wnd,
            self.payload.len()
        )
    }
}

/// RFC 1071 one's-complement checksum over a pseudo-header
/// (addresses + protocol 6 + length) and the TCP segment.
pub fn checksum(src: u32, dst: u32, tcp: &[u8]) -> u16 {
    let mut acc: u64 = 0;
    acc += (src >> 16) as u64 + (src & 0xFFFF) as u64;
    acc += (dst >> 16) as u64 + (dst & 0xFFFF) as u64;
    acc += 6; // protocol
    acc += tcp.len() as u64;
    let mut chunks = tcp.chunks_exact(2);
    for c in &mut chunks {
        acc += u16::from_be_bytes([c[0], c[1]]) as u64;
    }
    if let [last] = chunks.remainder() {
        acc += u16::from_be_bytes([*last, 0]) as u64;
    }
    while acc > 0xFFFF {
        acc = (acc & 0xFFFF) + (acc >> 16);
    }
    !(acc as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Segment {
        Segment {
            src: Endpoint::new(0x0A000001, 1234),
            dst: Endpoint::new(0x0A000002, 80),
            seq: 0xDEADBEEF,
            ack: 0x12345678,
            flags: SYN | ACK,
            wnd: 4096,
            mss: Some(1400),
            payload: b"hello".to_vec(),
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = sample();
        assert_eq!(Segment::decode(&s.encode()), Ok(s));
    }

    #[test]
    fn round_trip_without_options_or_payload() {
        let s = Segment { mss: None, payload: vec![], flags: ACK, ..sample() };
        assert_eq!(Segment::decode(&s.encode()), Ok(s));
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            // Either rejected outright or decodes to something != original —
            // the checksum must catch payload/header flips.
            if let Ok(seg) = Segment::decode(&bad) {
                // A flip in the network header changes addresses, which are
                // covered by the pseudo-header; decode must fail.
                panic!("flip at byte {i} went undetected: {seg:?}");
            }
        }
    }

    #[test]
    fn short_input_rejected() {
        assert_eq!(Segment::decode(&[0; 10]), Err(WireError::Truncated { need: 28, got: 10 }));
        assert_eq!(Segment::decode(&[]), Err(WireError::Truncated { need: 28, got: 0 }));
    }

    #[test]
    fn truncation_regressions() {
        // Every prefix of a valid segment must decode to a typed error (the
        // length check, then the checksum over the shortened body) — the
        // fuzz-found class of bugs this codec must never reintroduce.
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            let err = Segment::decode(&bytes[..n]).expect_err("prefix accepted");
            if n < 28 {
                assert_eq!(err, WireError::Truncated { need: 28, got: n });
            }
        }
    }

    #[test]
    fn oversized_frame_rejected() {
        let bytes = vec![0u8; MAX_FRAME_BYTES + 1];
        assert_eq!(
            Segment::decode(&bytes),
            Err(WireError::Oversized { limit: MAX_FRAME_BYTES, got: MAX_FRAME_BYTES + 1 })
        );
    }

    #[test]
    fn bad_option_classified() {
        // Valid checksum but an MSS option whose length overruns the
        // option area: must be BadOption, not a slice panic.
        let src = Endpoint::new(1, 10);
        let dst = Endpoint::new(2, 20);
        let mut tcp: Vec<u8> = Vec::new();
        tcp.extend_from_slice(&10u16.to_be_bytes());
        tcp.extend_from_slice(&20u16.to_be_bytes());
        tcp.extend_from_slice(&7u32.to_be_bytes());
        tcp.extend_from_slice(&9u32.to_be_bytes());
        tcp.push(6 << 4); // data offset 24: room for 4 option bytes
        tcp.push(ACK);
        tcp.extend_from_slice(&100u16.to_be_bytes());
        tcp.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        tcp.extend_from_slice(&[1, 1, 1, 2]); // NOPs then MSS kind at the last byte
        let csum = checksum(src.addr, dst.addr, &tcp);
        tcp[16] = (csum >> 8) as u8;
        tcp[17] = csum as u8;
        let mut bytes = src.addr.to_be_bytes().to_vec();
        bytes.extend_from_slice(&dst.addr.to_be_bytes());
        bytes.extend_from_slice(&tcp);
        assert_eq!(Segment::decode(&bytes), Err(WireError::BadOption));
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut s = sample();
        assert_eq!(s.seq_len(), 5 + 1); // payload + SYN
        s.flags = SYN | FIN;
        assert_eq!(s.seq_len(), 5 + 2);
        s.flags = ACK;
        assert_eq!(s.seq_len(), 5);
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut bytes = sample().encode();
        bytes[8 + 12] = 0x20; // data offset 8 words = 32 bytes > segment? ok but options broken
        assert_eq!(Segment::decode(&bytes), Err(WireError::BadChecksum)); // csum fails first
    }

    #[test]
    fn unknown_options_are_skipped() {
        // Hand-craft a header with NOP, an unknown option, then MSS.
        let src = Endpoint::new(1, 10);
        let dst = Endpoint::new(2, 20);
        let mut tcp: Vec<u8> = Vec::new();
        tcp.extend_from_slice(&10u16.to_be_bytes());
        tcp.extend_from_slice(&20u16.to_be_bytes());
        tcp.extend_from_slice(&7u32.to_be_bytes()); // seq
        tcp.extend_from_slice(&9u32.to_be_bytes()); // ack
        tcp.push(8 << 4); // data offset: 32 bytes (12 option bytes)
        tcp.push(ACK);
        tcp.extend_from_slice(&100u16.to_be_bytes());
        tcp.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
        tcp.push(1); // NOP
        tcp.extend_from_slice(&[99, 3, 0xAA]); // unknown kind 99, len 3
        tcp.extend_from_slice(&[2, 4]);
        tcp.extend_from_slice(&1234u16.to_be_bytes()); // MSS 1234
        tcp.extend_from_slice(&[0, 0, 0, 0]); // pad to offset 32
        let csum = checksum(src.addr, dst.addr, &tcp);
        tcp[16] = (csum >> 8) as u8;
        tcp[17] = csum as u8;
        let mut bytes = src.addr.to_be_bytes().to_vec();
        bytes.extend_from_slice(&dst.addr.to_be_bytes());
        bytes.extend_from_slice(&tcp);
        let seg = Segment::decode(&bytes).expect("decodes");
        assert_eq!(seg.mss, Some(1234));
        assert_eq!(seg.seq, 7);
    }

    #[test]
    fn checksum_of_valid_segment_is_zero() {
        let bytes = sample().encode();
        assert_eq!(checksum(0x0A000001, 0x0A000002, &bytes[8..]), 0);
    }

    proptest::proptest! {
        #[test]
        fn prop_any_segment_round_trips(
            sa: u32, da: u32, sp: u16, dp: u16, seq: u32, ack: u32,
            flags in 0u8..32, wnd: u16, mss in proptest::option::of(proptest::num::u16::ANY),
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..300),
        ) {
            let s = Segment {
                src: Endpoint::new(sa, sp),
                dst: Endpoint::new(da, dp),
                seq, ack, flags, wnd, mss, payload,
            };
            proptest::prop_assert_eq!(Segment::decode(&s.encode()), Ok(s));
        }

        #[test]
        fn prop_decode_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..600),
        ) {
            // Ok or typed Err — any panic fails the test harness itself.
            let _ = Segment::decode(&bytes);
        }

        #[test]
        fn prop_decode_never_panics_on_mutated_valid_segment(
            flip in 0usize..33, val: u8,
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
        ) {
            // Mutations of *almost-valid* frames probe the deep parse paths
            // (options, offsets) that random bytes rarely reach past the
            // checksum — so re-seal the checksum after mutating.
            let mut bytes = Segment { payload, ..sample() }.encode();
            let i = flip % bytes.len();
            bytes[i] = val;
            bytes[8 + 16] = 0;
            bytes[8 + 17] = 0;
            let sa = u32::from_be_bytes(bytes[0..4].try_into().unwrap());
            let da = u32::from_be_bytes(bytes[4..8].try_into().unwrap());
            let csum = checksum(sa, da, &bytes[8..]);
            bytes[8 + 16] = (csum >> 8) as u8;
            bytes[8 + 17] = csum as u8;
            let _ = Segment::decode(&bytes);
        }
    }

    #[test]
    fn debug_format_shows_flags() {
        let s = format!("{:?}", sample());
        assert!(s.contains("[SA]"), "{s}");
    }
}
