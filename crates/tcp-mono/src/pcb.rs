//! The Protocol Control Block: **all** connection state in one struct.
//!
//! This is the paper's §2.3 exhibit: "the state maintained by the
//! transport layer (e.g., sequence numbers, window sizes, etc.) is shared
//! by all of these subfunctions, which leads to non-modular code". The
//! fields below are read and written by demultiplexing, connection
//! management, reliable delivery, congestion control, flow control and the
//! timer machinery alike — exactly the entangled layout of the BSD/lwIP
//! PCB. The instrumentation in `stack.rs` records every subfunction's
//! accesses so experiment E6 can quantify the sharing.

use crate::wire::FourTuple;
use netsim::{Dur, Time};
use slcc::{CongSignal, NewReno, RateController};
use std::collections::{BTreeMap, VecDeque};

/// RFC 793 connection states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcpState {
    Listen,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    Closing,
    TimeWait,
    CloseWait,
    LastAck,
    Closed,
}

impl TcpState {
    /// May the application still send data?
    pub fn can_send(&self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }
}

/// Default maximum segment size (payload bytes per segment).
pub const DEFAULT_MSS: u16 = 1000;
/// Receive buffer capacity; the advertised window is its free space.
pub const RCV_BUF_CAP: usize = 64 * 1024 - 1;
/// Initial retransmission timeout.
pub const INITIAL_RTO: Dur = Dur(1_000_000_000);
/// RTO bounds.
pub const MIN_RTO: Dur = Dur(200_000_000);
pub const MAX_RTO: Dur = Dur(60_000_000_000);
/// 2*MSL for TIME_WAIT (shortened for simulation practicality).
pub const TIME_WAIT_DUR: Dur = Dur(10_000_000_000);
/// Connection-establishment retry limit.
pub const MAX_SYN_RETRIES: u32 = 6;
/// Data retransmission limit before the connection is aborted.
pub const MAX_RETRIES: u32 = 10;

/// The monolithic protocol control block.
pub struct Pcb {
    pub tuple: FourTuple,
    pub state: TcpState,

    // --- send sequence space (RFC 793 SND.*) ---
    pub iss: u32,
    pub snd_una: u32,
    pub snd_nxt: u32,
    /// Highest sequence ever sent (BSD's `snd_max`); `snd_nxt` rewinds to
    /// `snd_una` on retransmission timeout but acks up to `snd_max` remain
    /// valid.
    pub snd_max: u32,
    /// Peer-advertised window.
    pub snd_wnd: u32,
    /// Segment/ack used for the last window update (RFC 793 WL1/WL2).
    pub snd_wl1: u32,
    pub snd_wl2: u32,

    // --- receive sequence space (RCV.*) ---
    pub irs: u32,
    pub rcv_nxt: u32,

    // --- congestion control (entangled with everything) ---
    /// The pluggable controller — the same shared [`RateController`] set
    /// the sublayered stack selects from (the paper's swap claim, cashed
    /// in for the monolith). The *feeder* state below (dupacks, recover,
    /// in_fast_recovery) stays in the PCB: classifying acks against the
    /// recovery point is sequence arithmetic, which the controller never
    /// sees.
    pub cc: Box<dyn RateController>,
    /// CC observability: window samples and loss/recovery event counts,
    /// in the shared `slmetrics` shape both stacks fill (E19).
    pub cc_stats: slmetrics::CcCounters,
    pub dupacks: u32,
    /// Right edge of fast recovery (NewReno `recover`).
    pub recover: u32,
    pub in_fast_recovery: bool,
    /// F-RTO (RFC 5682, simplified): the pre-timeout `snd_max`, armed by
    /// the first RTO of a loss episode. While set, ack progress decides
    /// between "spurious — cancel the go-back-N replay" and "genuine —
    /// keep the conventional rewind" (see `stack.rs` ACK processing).
    pub frto_mark: Option<u32>,
    /// The first post-RTO ack advance was seen (F-RTO step 2 taken).
    pub frto_probed: bool,

    // --- RTT estimation ---
    pub srtt: Option<Dur>,
    pub rttvar: Dur,
    pub rto: Dur,
    /// Sequence being timed (Karn: only un-retransmitted samples count).
    pub rtt_timing: Option<(u32, Time)>,

    // --- buffers ---
    /// Unacknowledged + unsent payload bytes; `snd_buf_seq` is the
    /// sequence number of `snd_buf[0]`.
    pub snd_buf: VecDeque<u8>,
    pub snd_buf_seq: u32,
    /// In-order bytes awaiting the application.
    pub rcv_buf: VecDeque<u8>,
    /// Out-of-order segments keyed by sequence number.
    pub ooo: BTreeMap<u32, Vec<u8>>,

    // --- close handshake ---
    /// Application called close; FIN goes out after the buffer drains.
    pub fin_queued: bool,
    /// Sequence number our FIN occupies once sent.
    pub fin_seq: Option<u32>,

    // --- timers ---
    pub rto_deadline: Option<Time>,
    pub time_wait_deadline: Option<Time>,
    /// Zero-window probe timer.
    pub persist_deadline: Option<Time>,
    pub retries: u32,

    // --- keepalive ---
    /// Last time any segment arrived for this connection.
    pub last_rx: Time,
    /// Unanswered keepalive probes since `last_rx`.
    pub ka_probes: u32,

    /// When the oldest currently-unacked data last made cumulative-ack
    /// progress (armed when data goes outstanding, re-anchored on every
    /// ack advance, cleared when all acked). During a partition this ages
    /// linearly while `snd_buf` stays capped at [`SND_BUF_CAP`]
    /// (`crate::stack::SND_BUF_CAP`) — the oldest-segment accounting the
    /// host's resource budget reads.
    pub una_since: Option<Time>,

    pub mss: u32,
    /// Set when we owe the peer an ACK.
    pub ack_pending: bool,
    /// Pressure-driven delayed-ACK deadline. Note the entanglement: this
    /// one field is armed by the output path, cleared by the receive path,
    /// inspected by the timer scan, and gated by stack-global pressure —
    /// four subfunctions sharing a timer the sublayered stack keeps
    /// private inside RD.
    pub delayed_ack_deadline: Option<Time>,
}

impl Pcb {
    pub fn new(tuple: FourTuple, state: TcpState, iss: u32) -> Pcb {
        Self::with_cc(tuple, state, iss, Box::new(NewReno::new()))
    }

    /// Construct with an explicit (already-validated) rate controller.
    pub fn with_cc(
        tuple: FourTuple,
        state: TcpState,
        iss: u32,
        cc: Box<dyn RateController>,
    ) -> Pcb {
        Pcb {
            tuple,
            state,
            iss,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            snd_wnd: 0,
            snd_wl1: 0,
            snd_wl2: 0,
            irs: 0,
            rcv_nxt: 0,
            cc,
            cc_stats: slmetrics::CcCounters::default(),
            dupacks: 0,
            recover: iss,
            in_fast_recovery: false,
            frto_mark: None,
            frto_probed: false,
            srtt: None,
            rttvar: Dur::ZERO,
            rto: INITIAL_RTO,
            rtt_timing: None,
            snd_buf: VecDeque::new(),
            snd_buf_seq: iss.wrapping_add(1),
            rcv_buf: VecDeque::new(),
            ooo: BTreeMap::new(),
            fin_queued: false,
            fin_seq: None,
            rto_deadline: None,
            time_wait_deadline: None,
            persist_deadline: None,
            retries: 0,
            last_rx: Time::ZERO,
            ka_probes: 0,
            una_since: None,
            mss: DEFAULT_MSS as u32,
            ack_pending: false,
            delayed_ack_deadline: None,
        }
    }

    /// Free space in the receive buffer = advertised window.
    pub fn rcv_wnd(&self) -> u32 {
        (RCV_BUF_CAP - self.rcv_buf.len()) as u32
    }

    /// Bytes in flight.
    pub fn flight_size(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Current congestion allowance in bytes, clamped to window width.
    pub fn cwnd(&self, now: Time) -> u32 {
        self.cc.allowance(now).min(u32::MAX as u64) as u32
    }

    /// Feed one congestion signal to the controller, keeping the
    /// observability counters in step (the same [`slmetrics::CcCounters`]
    /// shape the sublayered OSR fills).
    pub fn feed_cc(&mut self, now: Time, sig: CongSignal) {
        match sig {
            CongSignal::DupAckLoss => {
                self.cc_stats.dupack_losses = self.cc_stats.dupack_losses.saturating_add(1)
            }
            CongSignal::PartialAck { .. } => {
                self.cc_stats.partial_acks = self.cc_stats.partial_acks.saturating_add(1)
            }
            CongSignal::TimeoutLoss => {
                self.cc_stats.rto_resets = self.cc_stats.rto_resets.saturating_add(1)
            }
            CongSignal::EcnEcho => {
                self.cc_stats.ecn_signals = self.cc_stats.ecn_signals.saturating_add(1)
            }
            _ => {}
        }
        let was_in_recovery = self.cc.in_recovery();
        self.cc.on_signal(now, sig);
        if !was_in_recovery && self.cc.in_recovery() {
            self.cc_stats.fast_recoveries = self.cc_stats.fast_recoveries.saturating_add(1);
        }
        self.cc_stats.sample(self.cc.allowance(now), self.cc.ssthresh());
    }

    /// Has every byte (and FIN, if queued) been acknowledged?
    pub fn all_acked(&self) -> bool {
        self.snd_buf.is_empty() && self.snd_una == self.snd_nxt
    }

    /// How long the oldest unacked data has gone without ack progress.
    /// `None` when nothing is outstanding.
    pub fn oldest_unacked_age(&self, now: Time) -> Option<Dur> {
        self.una_since.map(|t| now.since(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Endpoint;

    fn pcb() -> Pcb {
        let t = FourTuple {
            local: Endpoint::new(1, 10),
            remote: Endpoint::new(2, 20),
        };
        Pcb::new(t, TcpState::SynSent, 1000)
    }

    #[test]
    fn fresh_pcb_invariants() {
        let p = pcb();
        assert_eq!(p.snd_una, 1000);
        assert_eq!(p.snd_nxt, 1000);
        assert_eq!(p.snd_buf_seq, 1001, "payload starts after the SYN");
        assert_eq!(p.rcv_wnd(), RCV_BUF_CAP as u32);
        assert!(p.all_acked());
        assert_eq!(p.flight_size(), 0);
    }

    #[test]
    fn rcv_wnd_shrinks_with_buffered_data() {
        let mut p = pcb();
        p.rcv_buf.extend(std::iter::repeat_n(0u8, 1000));
        assert_eq!(p.rcv_wnd(), (RCV_BUF_CAP - 1000) as u32);
    }

    #[test]
    fn state_can_send() {
        assert!(TcpState::Established.can_send());
        assert!(TcpState::CloseWait.can_send());
        assert!(!TcpState::FinWait1.can_send());
        assert!(!TcpState::Listen.can_send());
    }

    #[test]
    fn flight_size_wraps() {
        let mut p = pcb();
        p.snd_una = u32::MAX - 10;
        p.snd_nxt = 20;
        assert_eq!(p.flight_size(), 31);
    }
}
