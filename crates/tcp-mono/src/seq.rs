//! TCP sequence-number arithmetic (RFC 793 §3.3): comparisons on a 32-bit
//! circular space. Shared by both the monolithic stack and (via re-export)
//! the sublayered stack's RD sublayer — the *arithmetic* is common; what
//! differs between the designs is who owns the state.

/// `a < b` in sequence space.
#[inline]
pub fn lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
#[inline]
pub fn leq(a: u32, b: u32) -> bool {
    a == b || lt(a, b)
}

/// `a > b` in sequence space.
#[inline]
pub fn gt(a: u32, b: u32) -> bool {
    lt(b, a)
}

/// `a >= b` in sequence space.
#[inline]
pub fn geq(a: u32, b: u32) -> bool {
    a == b || gt(a, b)
}

/// `lo <= x < hi` in sequence space.
#[inline]
pub fn between(x: u32, lo: u32, hi: u32) -> bool {
    hi.wrapping_sub(lo) > x.wrapping_sub(lo)
}

/// `max` in sequence space.
#[inline]
pub fn max(a: u32, b: u32) -> u32 {
    if gt(a, b) {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ordering() {
        assert!(lt(1, 2));
        assert!(!lt(2, 1));
        assert!(leq(2, 2));
        assert!(gt(2, 1));
        assert!(geq(2, 2));
    }

    #[test]
    fn wrapping_ordering() {
        // Near the wrap point, 0xFFFF_FFFF < 0.
        assert!(lt(u32::MAX, 0));
        assert!(gt(5, u32::MAX - 5));
        assert!(lt(u32::MAX - 5, 5));
    }

    #[test]
    fn between_handles_wrap() {
        assert!(between(5, 1, 10));
        assert!(!between(0, 1, 10));
        assert!(!between(10, 1, 10));
        // Window straddling the wrap point.
        assert!(between(u32::MAX, u32::MAX - 2, 3));
        assert!(between(1, u32::MAX - 2, 3));
        assert!(!between(4, u32::MAX - 2, 3));
    }

    #[test]
    fn empty_window_contains_nothing() {
        assert!(!between(7, 7, 7));
    }

    #[test]
    fn seq_max() {
        assert_eq!(max(3, 9), 9);
        assert_eq!(max(5, u32::MAX - 5), 5);
    }
}
