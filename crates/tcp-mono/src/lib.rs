//! # tcp-mono — the monolithic TCP baseline (paper §2.3 / §4.2)
//!
//! An lwIP/BSD-style TCP: one [`pcb::Pcb`] holding *all* connection state,
//! and one interleaved input path ([`stack::TcpStack`]) in which
//! demultiplexing, connection management, reliable delivery, congestion
//! control (NewReno), and flow control all read and write that shared
//! state — the design whose verification §4.2 found so painful. It is
//! wire-compatible RFC 793 (as carried over the simulator's 8-byte
//! network header) and is the interop peer and performance baseline for
//! the sublayered stack in `sublayer-core`.
//!
//! Features: 3-way handshake, clock-based ISNs, sliding window, cumulative
//! ACKs, RTO with Karn/Jacobson estimation and exponential backoff, fast
//! retransmit + NewReno fast recovery, out-of-order reassembly, zero-window
//! persist probes, graceful close through FIN/TIME_WAIT, RST handling,
//! simultaneous open, and checksummed segments.

pub mod hash;
pub mod pcb;
pub mod seq;
pub mod stack;
pub mod wire;

pub use hash::{shard_of, tuple_hash, FxBuildHasher, FxHasher};
pub use pcb::{Pcb, TcpState, DEFAULT_MSS};
pub use stack::{Keepalive, TcpStack, TcpStats};
pub use wire::{Endpoint, FourTuple, Segment, WireError};

#[cfg(test)]
mod tests;
