//! Fault injection for simulated links.
//!
//! Mirrors the adverse-condition knobs found in real test harnesses
//! (e.g. smoltcp's examples): random drop, single-bit corruption, frame
//! duplication and extra-delay reordering, each with an independent
//! probability, applied from a deterministic per-link random stream.
//! For chaos campaigns two correlated impairments join them: a
//! Gilbert–Elliott two-state burst-loss chain and uniform per-frame delay
//! jitter.

use crate::rng::DetRng;
use crate::time::Dur;

/// Gilbert–Elliott burst-loss model: a two-state (good/bad) Markov chain
/// advanced once per offered frame, with a per-state loss probability.
/// Captures correlated loss (fades, congestion bursts) that independent
/// per-frame drop cannot.
#[derive(Clone, Debug, PartialEq)]
pub struct BurstLoss {
    /// Per-frame probability of transitioning good → bad.
    pub p_good_to_bad: f64,
    /// Per-frame probability of transitioning bad → good.
    pub p_bad_to_good: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl BurstLoss {
    /// Classic Gilbert model: lossless good state, `loss_bad` in the bad
    /// state, with the given transition probabilities.
    pub fn gilbert(p_good_to_bad: f64, p_bad_to_good: f64, loss_bad: f64) -> BurstLoss {
        BurstLoss { p_good_to_bad, p_bad_to_good, loss_good: 0.0, loss_bad }
    }
}

/// Probabilities and parameters for link impairments.
#[derive(Clone, Debug, Default)]
pub struct FaultProfile {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability one random bit of the frame is flipped.
    pub corrupt: f64,
    /// Probability the frame is delivered twice.
    pub duplicate: f64,
    /// Probability the frame is held back by `reorder_delay`, letting later
    /// frames overtake it.
    pub reorder: f64,
    /// Extra delay applied to reordered frames.
    pub reorder_delay: Dur,
    /// Correlated burst loss, applied before the independent `drop` draw.
    pub burst: Option<BurstLoss>,
    /// Uniform extra delay in `[0, jitter]` applied per frame.
    pub jitter: Dur,
}

/// Why a [`FaultProfile`] failed validation.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultConfigError {
    /// A probability field is NaN or outside `[0, 1]`.
    ProbabilityOutOfRange { field: &'static str, value: f64 },
    /// `reorder` is enabled but `reorder_delay` is zero, which cannot
    /// actually reorder anything.
    ZeroReorderDelay,
}

impl std::fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultConfigError::ProbabilityOutOfRange { field, value } => {
                write!(f, "fault probability `{field}` = {value} is outside [0, 1]")
            }
            FaultConfigError::ZeroReorderDelay => {
                write!(f, "reorder probability is nonzero but reorder_delay is zero")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

impl FaultProfile {
    /// A perfect link: no impairments.
    pub fn none() -> FaultProfile {
        FaultProfile::default()
    }

    /// Drop-only impairment with the given probability.
    pub fn lossy(p: f64) -> FaultProfile {
        FaultProfile { drop: p, ..Default::default() }
    }

    /// A "hostile" profile exercising every impairment at once.
    pub fn hostile(p: f64, reorder_delay: Dur) -> FaultProfile {
        FaultProfile {
            drop: p,
            corrupt: p,
            duplicate: p,
            reorder: p,
            reorder_delay,
            ..Default::default()
        }
    }

    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    pub fn with_reorder(mut self, p: f64, delay: Dur) -> Self {
        self.reorder = p;
        self.reorder_delay = delay;
        self
    }

    pub fn with_burst(mut self, burst: BurstLoss) -> Self {
        self.burst = Some(burst);
        self
    }

    pub fn with_jitter(mut self, jitter: Dur) -> Self {
        self.jitter = jitter;
        self
    }

    /// Strict validation: every probability must be a finite value in
    /// `[0, 1]`, and enabling `reorder` requires a nonzero `reorder_delay`.
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        let mut probs = vec![
            ("drop", self.drop),
            ("corrupt", self.corrupt),
            ("duplicate", self.duplicate),
            ("reorder", self.reorder),
        ];
        if let Some(b) = &self.burst {
            probs.extend([
                ("burst.p_good_to_bad", b.p_good_to_bad),
                ("burst.p_bad_to_good", b.p_bad_to_good),
                ("burst.loss_good", b.loss_good),
                ("burst.loss_bad", b.loss_bad),
            ]);
        }
        for (field, value) in probs {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultConfigError::ProbabilityOutOfRange { field, value });
            }
        }
        if self.reorder > 0.0 && self.reorder_delay == Dur::ZERO {
            return Err(FaultConfigError::ZeroReorderDelay);
        }
        Ok(())
    }

    /// Forgiving form of [`validate`](FaultProfile::validate): clamp every
    /// probability into `[0, 1]` (NaN becomes `0`), and disable `reorder`
    /// when `reorder_delay` is zero (a zero hold-back cannot reorder).
    /// [`FaultInjector`] applies this to every profile it is given, so an
    /// out-of-range profile degrades predictably instead of misbehaving.
    pub fn clamped(&self) -> FaultProfile {
        fn clamp01(p: f64) -> f64 {
            if p.is_nan() {
                0.0
            } else {
                p.clamp(0.0, 1.0)
            }
        }
        let mut out = self.clone();
        out.drop = clamp01(out.drop);
        out.corrupt = clamp01(out.corrupt);
        out.duplicate = clamp01(out.duplicate);
        out.reorder = clamp01(out.reorder);
        if let Some(b) = &mut out.burst {
            b.p_good_to_bad = clamp01(b.p_good_to_bad);
            b.p_bad_to_good = clamp01(b.p_bad_to_good);
            b.loss_good = clamp01(b.loss_good);
            b.loss_bad = clamp01(b.loss_bad);
        }
        if out.reorder_delay == Dur::ZERO {
            out.reorder = 0.0;
        }
        out
    }
}

/// Counters describing what the injector actually did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub offered: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub duplicated: u64,
    pub reordered: u64,
    /// Subset of `dropped` caused by the burst-loss chain.
    pub burst_dropped: u64,
    /// Frames that received a nonzero jitter delay.
    pub jittered: u64,
}

/// The fate decided for one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fate {
    /// Deliveries to perform: `(extra_delay, frame_bytes)`.
    /// Empty when the frame was dropped.
    pub deliveries: Vec<(Dur, Vec<u8>)>,
}

/// Applies a [`FaultProfile`] to frames using a deterministic stream.
///
/// Profiles are [clamped](FaultProfile::clamped) on the way in, so an
/// out-of-range probability can never make the injector misbehave. Random
/// draws are strictly conditional on the features a profile enables:
/// a profile with burst loss and jitter disabled consumes exactly the same
/// stream as it did before those features existed.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: DetRng,
    stats: FaultStats,
    /// Gilbert–Elliott chain state: `true` while in the bad (bursty) state.
    in_bad: bool,
}

impl FaultInjector {
    pub fn new(profile: FaultProfile, rng: DetRng) -> FaultInjector {
        FaultInjector { profile: profile.clamped(), rng, stats: FaultStats::default(), in_bad: false }
    }

    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Replace the profile mid-run (e.g. to heal or degrade a link). The
    /// burst-chain state carries over; stats keep accumulating.
    pub fn set_profile(&mut self, profile: FaultProfile) {
        self.profile = profile.clamped();
    }

    /// Decide the fate of one frame.
    pub fn apply(&mut self, frame: &[u8]) -> Fate {
        self.stats.offered += 1;
        if let Some(burst) = &self.profile.burst {
            // Advance the chain one step per offered frame, then draw loss
            // from the state landed in.
            let flip = if self.in_bad { burst.p_bad_to_good } else { burst.p_good_to_bad };
            if self.rng.chance(flip) {
                self.in_bad = !self.in_bad;
            }
            let loss = if self.in_bad { burst.loss_bad } else { burst.loss_good };
            if self.rng.chance(loss) {
                self.stats.dropped += 1;
                self.stats.burst_dropped += 1;
                return Fate { deliveries: Vec::new() };
            }
        }
        if self.rng.chance(self.profile.drop) {
            self.stats.dropped += 1;
            return Fate { deliveries: Vec::new() };
        }
        let mut bytes = frame.to_vec();
        if !bytes.is_empty() && self.rng.chance(self.profile.corrupt) {
            self.stats.corrupted += 1;
            let bit = self.rng.below(bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        let mut delay = if self.rng.chance(self.profile.reorder) {
            self.stats.reordered += 1;
            self.profile.reorder_delay
        } else {
            Dur::ZERO
        };
        if self.profile.jitter > Dur::ZERO {
            let j = Dur(self.rng.below(self.profile.jitter.0.saturating_add(1)));
            if j > Dur::ZERO {
                self.stats.jittered += 1;
            }
            delay += j;
        }
        let mut deliveries = vec![(delay, bytes.clone())];
        if self.rng.chance(self.profile.duplicate) {
            self.stats.duplicated += 1;
            deliveries.push((delay, bytes));
        }
        Fate { deliveries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(p: FaultProfile) -> FaultInjector {
        FaultInjector::new(p, DetRng::new(1234))
    }

    #[test]
    fn perfect_link_passes_everything() {
        let mut inj = injector(FaultProfile::none());
        for _ in 0..1000 {
            let fate = inj.apply(b"hello");
            assert_eq!(fate.deliveries, vec![(Dur::ZERO, b"hello".to_vec())]);
        }
        assert_eq!(inj.stats().dropped, 0);
        assert_eq!(inj.stats().offered, 1000);
    }

    #[test]
    fn drop_rate_is_plausible() {
        let mut inj = injector(FaultProfile::lossy(0.3));
        for _ in 0..10_000 {
            inj.apply(b"x");
        }
        let frac = inj.stats().dropped as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = injector(FaultProfile::none().with_corrupt(1.0));
        let fate = inj.apply(&[0u8; 8]);
        let out = &fate.deliveries[0].1;
        let ones: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
    }

    #[test]
    fn corruption_skips_empty_frames() {
        let mut inj = injector(FaultProfile::none().with_corrupt(1.0));
        let fate = inj.apply(&[]);
        assert_eq!(fate.deliveries.len(), 1);
        assert!(fate.deliveries[0].1.is_empty());
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut inj = injector(FaultProfile::none().with_duplicate(1.0));
        let fate = inj.apply(b"dup");
        assert_eq!(fate.deliveries.len(), 2);
        assert_eq!(fate.deliveries[0].1, fate.deliveries[1].1);
    }

    #[test]
    fn reordering_adds_delay() {
        let d = Dur::from_millis(5);
        let mut inj = injector(FaultProfile::none().with_reorder(1.0, d));
        let fate = inj.apply(b"late");
        assert_eq!(fate.deliveries[0].0, d);
    }

    #[test]
    fn deterministic_across_runs() {
        let profile = FaultProfile::hostile(0.2, Dur::from_millis(1));
        let run = |seed| {
            let mut inj = FaultInjector::new(profile.clone(), DetRng::new(seed));
            (0..200).map(|i| inj.apply(&[i as u8; 4])).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn burst_loss_is_correlated() {
        // Sticky states: long bursts of loss separated by long clean runs.
        let profile = FaultProfile::none()
            .with_burst(BurstLoss::gilbert(0.02, 0.1, 1.0));
        let mut inj = injector(profile);
        let outcomes: Vec<bool> =
            (0..20_000).map(|_| inj.apply(b"x").deliveries.is_empty()).collect();
        let losses = outcomes.iter().filter(|&&l| l).count();
        // Stationary bad-state share is 0.02/(0.02+0.1) = 1/6.
        let frac = losses as f64 / outcomes.len() as f64;
        assert!((frac - 1.0 / 6.0).abs() < 0.05, "loss fraction {frac}");
        // Correlation: a loss is followed by another loss far more often
        // than the marginal loss rate (runs average 10 frames).
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let repeats = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        let cond = repeats as f64 / pairs as f64;
        assert!(cond > 0.8, "P(loss|loss) = {cond} should reflect bursts");
        assert_eq!(inj.stats().burst_dropped, losses as u64);
    }

    #[test]
    fn jitter_delays_within_bound() {
        let j = Dur::from_millis(2);
        let mut inj = injector(FaultProfile::none().with_jitter(j));
        let mut saw_nonzero = false;
        for _ in 0..500 {
            let fate = inj.apply(b"y");
            assert!(fate.deliveries[0].0 <= j);
            saw_nonzero |= fate.deliveries[0].0 > Dur::ZERO;
        }
        assert!(saw_nonzero);
        assert!(inj.stats().jittered > 0);
    }

    #[test]
    fn disabled_chaos_features_leave_stream_untouched() {
        // A profile without burst/jitter must consume the same rng draws as
        // before those knobs existed: adding the features must not perturb
        // existing seeded experiments.
        let base = FaultProfile::hostile(0.3, Dur::from_millis(2));
        let mut plain = FaultInjector::new(base.clone(), DetRng::new(42));
        let mut chaotic = FaultInjector::new(
            base.with_burst(BurstLoss::gilbert(0.5, 0.5, 0.01)).with_jitter(Dur::ZERO),
            DetRng::new(42),
        );
        // The burst chain consumes extra draws, so the streams diverge...
        let a: Vec<_> = (0..50).map(|_| plain.apply(b"frame")).collect();
        let b: Vec<_> = (0..50).map(|_| chaotic.apply(b"frame")).collect();
        assert_ne!(a, b);
        // ...whereas burst=None + jitter=0 reproduces the original stream.
        let mut plain2 = FaultInjector::new(
            FaultProfile::hostile(0.3, Dur::from_millis(2)),
            DetRng::new(42),
        );
        let c: Vec<_> = (0..50).map(|_| plain2.apply(b"frame")).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        assert!(FaultProfile::none().validate().is_ok());
        assert_eq!(
            FaultProfile::lossy(1.5).validate(),
            Err(FaultConfigError::ProbabilityOutOfRange { field: "drop", value: 1.5 })
        );
        assert!(FaultProfile::lossy(-0.1).validate().is_err());
        assert!(FaultProfile::lossy(f64::NAN).validate().is_err());
        let bad_burst = FaultProfile::none().with_burst(BurstLoss::gilbert(0.1, 2.0, 0.5));
        assert!(matches!(
            bad_burst.validate(),
            Err(FaultConfigError::ProbabilityOutOfRange { field: "burst.p_bad_to_good", .. })
        ));
    }

    #[test]
    fn validate_rejects_reorder_without_delay() {
        let p = FaultProfile::none().with_reorder(0.5, Dur::ZERO);
        assert_eq!(p.validate(), Err(FaultConfigError::ZeroReorderDelay));
        assert!(FaultProfile::none().with_reorder(0.5, Dur::from_millis(1)).validate().is_ok());
    }

    #[test]
    fn injector_clamps_wild_profiles() {
        // Out-of-range probabilities degrade to certainties, not misbehaviour.
        let mut inj = injector(FaultProfile::lossy(7.0));
        assert_eq!(inj.profile().drop, 1.0);
        assert!(inj.apply(b"z").deliveries.is_empty());
        let mut inj = injector(FaultProfile::lossy(f64::NAN).with_corrupt(-3.0));
        assert_eq!(inj.profile().drop, 0.0);
        assert_eq!(inj.profile().corrupt, 0.0);
        assert_eq!(inj.apply(b"z").deliveries.len(), 1);
        // reorder with zero delay is disabled rather than silently useless.
        let inj = injector(FaultProfile::none().with_reorder(1.0, Dur::ZERO));
        assert_eq!(inj.profile().reorder, 0.0);
    }
}
