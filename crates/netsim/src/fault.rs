//! Fault injection for simulated links.
//!
//! Mirrors the adverse-condition knobs found in real test harnesses
//! (e.g. smoltcp's examples): random drop, single-bit corruption, frame
//! duplication and extra-delay reordering, each with an independent
//! probability, applied from a deterministic per-link random stream.

use crate::rng::DetRng;
use crate::time::Dur;

/// Probabilities and parameters for link impairments.
#[derive(Clone, Debug, Default)]
pub struct FaultProfile {
    /// Probability a frame is silently dropped.
    pub drop: f64,
    /// Probability one random bit of the frame is flipped.
    pub corrupt: f64,
    /// Probability the frame is delivered twice.
    pub duplicate: f64,
    /// Probability the frame is held back by `reorder_delay`, letting later
    /// frames overtake it.
    pub reorder: f64,
    /// Extra delay applied to reordered frames.
    pub reorder_delay: Dur,
}

impl FaultProfile {
    /// A perfect link: no impairments.
    pub fn none() -> FaultProfile {
        FaultProfile::default()
    }

    /// Drop-only impairment with the given probability.
    pub fn lossy(p: f64) -> FaultProfile {
        FaultProfile { drop: p, ..Default::default() }
    }

    /// A "hostile" profile exercising every impairment at once.
    pub fn hostile(p: f64, reorder_delay: Dur) -> FaultProfile {
        FaultProfile {
            drop: p,
            corrupt: p,
            duplicate: p,
            reorder: p,
            reorder_delay,
        }
    }

    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    pub fn with_reorder(mut self, p: f64, delay: Dur) -> Self {
        self.reorder = p;
        self.reorder_delay = delay;
        self
    }
}

/// Counters describing what the injector actually did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub offered: u64,
    pub dropped: u64,
    pub corrupted: u64,
    pub duplicated: u64,
    pub reordered: u64,
}

/// The fate decided for one frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fate {
    /// Deliveries to perform: `(extra_delay, frame_bytes)`.
    /// Empty when the frame was dropped.
    pub deliveries: Vec<(Dur, Vec<u8>)>,
}

/// Applies a [`FaultProfile`] to frames using a deterministic stream.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    profile: FaultProfile,
    rng: DetRng,
    stats: FaultStats,
}

impl FaultInjector {
    pub fn new(profile: FaultProfile, rng: DetRng) -> FaultInjector {
        FaultInjector { profile, rng, stats: FaultStats::default() }
    }

    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Replace the profile mid-run (e.g. to heal or degrade a link).
    pub fn set_profile(&mut self, profile: FaultProfile) {
        self.profile = profile;
    }

    /// Decide the fate of one frame.
    pub fn apply(&mut self, frame: &[u8]) -> Fate {
        self.stats.offered += 1;
        if self.rng.chance(self.profile.drop) {
            self.stats.dropped += 1;
            return Fate { deliveries: Vec::new() };
        }
        let mut bytes = frame.to_vec();
        if !bytes.is_empty() && self.rng.chance(self.profile.corrupt) {
            self.stats.corrupted += 1;
            let bit = self.rng.below(bytes.len() as u64 * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
        }
        let delay = if self.rng.chance(self.profile.reorder) {
            self.stats.reordered += 1;
            self.profile.reorder_delay
        } else {
            Dur::ZERO
        };
        let mut deliveries = vec![(delay, bytes.clone())];
        if self.rng.chance(self.profile.duplicate) {
            self.stats.duplicated += 1;
            deliveries.push((delay, bytes));
        }
        Fate { deliveries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(p: FaultProfile) -> FaultInjector {
        FaultInjector::new(p, DetRng::new(1234))
    }

    #[test]
    fn perfect_link_passes_everything() {
        let mut inj = injector(FaultProfile::none());
        for _ in 0..1000 {
            let fate = inj.apply(b"hello");
            assert_eq!(fate.deliveries, vec![(Dur::ZERO, b"hello".to_vec())]);
        }
        assert_eq!(inj.stats().dropped, 0);
        assert_eq!(inj.stats().offered, 1000);
    }

    #[test]
    fn drop_rate_is_plausible() {
        let mut inj = injector(FaultProfile::lossy(0.3));
        for _ in 0..10_000 {
            inj.apply(b"x");
        }
        let frac = inj.stats().dropped as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = injector(FaultProfile::none().with_corrupt(1.0));
        let fate = inj.apply(&[0u8; 8]);
        let out = &fate.deliveries[0].1;
        let ones: u32 = out.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
    }

    #[test]
    fn corruption_skips_empty_frames() {
        let mut inj = injector(FaultProfile::none().with_corrupt(1.0));
        let fate = inj.apply(&[]);
        assert_eq!(fate.deliveries.len(), 1);
        assert!(fate.deliveries[0].1.is_empty());
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut inj = injector(FaultProfile::none().with_duplicate(1.0));
        let fate = inj.apply(b"dup");
        assert_eq!(fate.deliveries.len(), 2);
        assert_eq!(fate.deliveries[0].1, fate.deliveries[1].1);
    }

    #[test]
    fn reordering_adds_delay() {
        let d = Dur::from_millis(5);
        let mut inj = injector(FaultProfile::none().with_reorder(1.0, d));
        let fate = inj.apply(b"late");
        assert_eq!(fate.deliveries[0].0, d);
    }

    #[test]
    fn deterministic_across_runs() {
        let profile = FaultProfile::hostile(0.2, Dur::from_millis(1));
        let run = |seed| {
            let mut inj = FaultInjector::new(profile.clone(), DetRng::new(seed));
            (0..200).map(|i| inj.apply(&[i as u8; 4])).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
