//! # netsim — deterministic discrete-event network simulator
//!
//! The substrate for every experiment in this workspace (see `DESIGN.md`,
//! system S1). Provides:
//!
//! * a virtual clock ([`Time`], [`Dur`]) — no wall-clock dependence;
//! * a deterministic, forkable PRNG ([`DetRng`]);
//! * a tie-break-stable event queue ([`EventQueue`]);
//! * fault injection ([`FaultProfile`], [`FaultInjector`]) with drop,
//!   single-bit corruption, duplication, reordering, Gilbert–Elliott burst
//!   loss ([`BurstLoss`]) and delay jitter;
//! * replayable chaos campaigns ([`AdminOp`]): scheduled link partitions
//!   and flaps, rate throttling, fault-profile swaps, and node restarts
//!   with state loss;
//! * an adversarial man-in-the-middle bridge ([`Attacker`]) that forges,
//!   replays and fuzzily mutates segments through a per-stack
//!   [`AttackCodec`], for robustness campaigns;
//! * point-to-point links with propagation delay, serialization delay and
//!   MTU ([`LinkParams`]);
//! * a multi-node simulator ([`SimNet`]) hosting [`Node`]s;
//! * a sans-IO protocol endpoint abstraction ([`Stack`], [`StackNode`]) in
//!   the style of poll-driven stacks such as smoltcp.
//!
//! Every run is exactly reproducible from its seed: event ties break by
//! insertion order and all randomness flows from per-link forks of a single
//! root seed.

pub mod attack;
pub mod event;
pub mod fault;
pub mod net;
pub mod rng;
pub mod stack;
pub mod tap;
pub mod time;
pub mod workload;

pub use attack::{AttackCodec, AttackConfig, Attacker, AttackerStats, SeqKnowledge, SnoopInfo};
pub use event::EventQueue;
pub use fault::{BurstLoss, FaultConfigError, FaultInjector, FaultProfile, FaultStats, Fate};
pub use net::{AdminOp, DirStats, LinkId, LinkParams, Node, NodeCtx, NodeId, PortId, SimNet, TimerId};
pub use rng::DetRng;
pub use stack::{MultiStack, MultiStackNode, Stack, StackNode, TransportError};
pub use tap::{tap_buffer, SharedTap, TapDir, TapEvent, TapStack};
pub use time::{Dur, Time};
pub use workload::{HeavyTailed, OpenLoopArrivals, ReadBudget};

/// Convenience: build a two-node network from two sans-IO stacks joined by
/// one link, returning the network and both node ids. Used throughout the
/// workspace for two-party protocol experiments.
pub fn two_party<A: Stack, B: Stack>(
    seed: u64,
    a: A,
    b: B,
    params: LinkParams,
) -> (SimNet, NodeId, NodeId) {
    let mut net = SimNet::new(seed);
    let na = net.add_node(Box::new(StackNode::new(a)));
    let nb = net.add_node(Box::new(StackNode::new(b)));
    net.connect(na, 0, nb, 0, params);
    (net, na, nb)
}

/// Convenience: build a star topology — one multi-port server node in the
/// middle, one link per client, client `i`'s port 0 wired to server port
/// `i`. Every link gets a clone of `params`. Used by the many-client scale
/// experiments.
pub fn star<S: MultiStack, C: Stack>(
    seed: u64,
    server: S,
    clients: impl IntoIterator<Item = C>,
    params: LinkParams,
) -> (SimNet, NodeId, Vec<NodeId>) {
    let mut net = SimNet::new(seed);
    let ns = net.add_node(Box::new(MultiStackNode::new(server)));
    let mut ids = Vec::new();
    for (i, c) in clients.into_iter().enumerate() {
        let nc = net.add_node(Box::new(StackNode::new(c)));
        net.connect(ns, i, nc, 0, params.clone());
        ids.push(nc);
    }
    (net, ns, ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quiet;
    impl Stack for Quiet {
        fn on_frame(&mut self, _: Time, _: &[u8]) {}
        fn poll_transmit(&mut self, _: Time) -> Option<Vec<u8>> {
            None
        }
        fn poll_deadline(&self, _: Time) -> Option<Time> {
            None
        }
        fn on_tick(&mut self, _: Time) {}
    }

    #[test]
    fn two_party_builds_a_connected_pair() {
        let (mut net, a, b) = two_party(1, Quiet, Quiet, LinkParams::default());
        assert_eq!((a, b), (0, 1));
        net.poll_all();
        assert!(net.is_idle());
    }

    /// Echoes every frame back out the port it arrived on.
    struct PortEcho {
        seen: Vec<(PortId, Vec<u8>)>,
        pending: Vec<(PortId, Vec<u8>)>,
    }
    impl MultiStack for PortEcho {
        fn on_frame(&mut self, _: Time, port: PortId, frame: &[u8]) {
            self.seen.push((port, frame.to_vec()));
            self.pending.push((port, frame.to_vec()));
        }
        fn poll_transmit(&mut self, _: Time) -> Option<(PortId, Vec<u8>)> {
            self.pending.pop()
        }
        fn poll_deadline(&self, _: Time) -> Option<Time> {
            None
        }
        fn on_tick(&mut self, _: Time) {}
    }

    /// Sends one tagged frame at t=0, remembers what comes back.
    struct OneShot {
        tag: u8,
        sent: bool,
        got: Vec<Vec<u8>>,
    }
    impl Stack for OneShot {
        fn on_frame(&mut self, _: Time, frame: &[u8]) {
            self.got.push(frame.to_vec());
        }
        fn poll_transmit(&mut self, _: Time) -> Option<Vec<u8>> {
            (!std::mem::replace(&mut self.sent, true)).then(|| vec![self.tag])
        }
        fn poll_deadline(&self, _: Time) -> Option<Time> {
            None
        }
        fn on_tick(&mut self, _: Time) {}
    }

    #[test]
    fn star_routes_per_port() {
        let clients =
            (0..5).map(|i| OneShot { tag: i as u8, sent: false, got: vec![] });
        let (mut net, ns, ids) = star(
            7,
            PortEcho { seen: vec![], pending: vec![] },
            clients,
            LinkParams::default(),
        );
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(1));
        let server = net.node::<MultiStackNode<PortEcho>>(ns);
        assert_eq!(server.stack.seen.len(), 5);
        for (port, frame) in &server.stack.seen {
            assert_eq!(frame, &vec![*port as u8], "frame tag matches its port");
        }
        for (i, &id) in ids.iter().enumerate() {
            let c = net.node::<StackNode<OneShot>>(id);
            assert_eq!(c.stack.got, vec![vec![i as u8]], "echo came back to client {i}");
        }
    }
}
