//! # netsim — deterministic discrete-event network simulator
//!
//! The substrate for every experiment in this workspace (see `DESIGN.md`,
//! system S1). Provides:
//!
//! * a virtual clock ([`Time`], [`Dur`]) — no wall-clock dependence;
//! * a deterministic, forkable PRNG ([`DetRng`]);
//! * a tie-break-stable event queue ([`EventQueue`]);
//! * fault injection ([`FaultProfile`], [`FaultInjector`]) with drop,
//!   single-bit corruption, duplication, reordering, Gilbert–Elliott burst
//!   loss ([`BurstLoss`]) and delay jitter;
//! * replayable chaos campaigns ([`AdminOp`]): scheduled link partitions
//!   and flaps, rate throttling, fault-profile swaps, and node restarts
//!   with state loss;
//! * an adversarial man-in-the-middle bridge ([`Attacker`]) that forges,
//!   replays and fuzzily mutates segments through a per-stack
//!   [`AttackCodec`], for robustness campaigns;
//! * point-to-point links with propagation delay, serialization delay and
//!   MTU ([`LinkParams`]);
//! * a multi-node simulator ([`SimNet`]) hosting [`Node`]s;
//! * a sans-IO protocol endpoint abstraction ([`Stack`], [`StackNode`]) in
//!   the style of poll-driven stacks such as smoltcp.
//!
//! Every run is exactly reproducible from its seed: event ties break by
//! insertion order and all randomness flows from per-link forks of a single
//! root seed.

pub mod attack;
pub mod event;
pub mod fault;
pub mod net;
pub mod rng;
pub mod stack;
pub mod time;

pub use attack::{AttackCodec, AttackConfig, Attacker, AttackerStats, SeqKnowledge, SnoopInfo};
pub use event::EventQueue;
pub use fault::{BurstLoss, FaultConfigError, FaultInjector, FaultProfile, FaultStats, Fate};
pub use net::{AdminOp, DirStats, LinkId, LinkParams, Node, NodeCtx, NodeId, PortId, SimNet, TimerId};
pub use rng::DetRng;
pub use stack::{Stack, StackNode, TransportError};
pub use time::{Dur, Time};

/// Convenience: build a two-node network from two sans-IO stacks joined by
/// one link, returning the network and both node ids. Used throughout the
/// workspace for two-party protocol experiments.
pub fn two_party<A: Stack, B: Stack>(
    seed: u64,
    a: A,
    b: B,
    params: LinkParams,
) -> (SimNet, NodeId, NodeId) {
    let mut net = SimNet::new(seed);
    let na = net.add_node(Box::new(StackNode::new(a)));
    let nb = net.add_node(Box::new(StackNode::new(b)));
    net.connect(na, 0, nb, 0, params);
    (net, na, nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Quiet;
    impl Stack for Quiet {
        fn on_frame(&mut self, _: Time, _: &[u8]) {}
        fn poll_transmit(&mut self, _: Time) -> Option<Vec<u8>> {
            None
        }
        fn poll_deadline(&self, _: Time) -> Option<Time> {
            None
        }
        fn on_tick(&mut self, _: Time) {}
    }

    #[test]
    fn two_party_builds_a_connected_pair() {
        let (mut net, a, b) = two_party(1, Quiet, Quiet, LinkParams::default());
        assert_eq!((a, b), (0, 1));
        net.poll_all();
        assert!(net.is_idle());
    }
}
