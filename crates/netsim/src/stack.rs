//! Sans-IO protocol stack adapter.
//!
//! Protocol endpoints in this workspace (ARQ machines, both TCPs, routing
//! daemons) are written *sans-IO*, in the style of event-driven stacks like
//! smoltcp: a [`Stack`] is a pure state machine that consumes frames and the
//! clock, and is polled for frames to transmit and for its next timer
//! deadline. This keeps protocol logic directly unit-testable — you can feed
//! it frames by hand — while [`StackNode`] adapts any `Stack` onto a
//! simulator [`Node`](crate::net::Node).

use crate::net::{Node, NodeCtx, PortId, TimerId};
use crate::time::Time;

/// Terminal connection failure surfaced by a transport stack.
///
/// Graceful degradation contract: when a peer vanishes or a link stays
/// partitioned past the retry budget, a stack must *abort* the affected
/// connection and report one of these — never hang, spin, or panic. Both the
/// sublayered stack and the monolithic baseline surface the same vocabulary
/// so chaos campaigns can assert parity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransportError {
    /// Data retransmissions were exhausted without the peer acknowledging
    /// progress.
    RetriesExhausted,
    /// The peer reset the connection (inbound RST).
    Reset,
    /// Keepalive probes went unanswered; the peer is presumed gone.
    PeerVanished,
    /// The connection never completed establishment (SYN retries exhausted).
    HandshakeFailed,
    /// The host's connection table is at capacity; no new connection can
    /// be admitted (accept path refuses, active open fails typed).
    ConnTableFull,
    /// Every ephemeral port toward the requested remote endpoint is in
    /// use; an active open cannot be given a local port.
    PortsExhausted,
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::RetriesExhausted => write!(f, "connection aborted: retries exhausted"),
            TransportError::Reset => write!(f, "connection reset by peer"),
            TransportError::PeerVanished => write!(f, "connection aborted: peer vanished"),
            TransportError::HandshakeFailed => write!(f, "connection aborted: handshake failed"),
            TransportError::ConnTableFull => write!(f, "connection refused: connection table full"),
            TransportError::PortsExhausted => write!(f, "connect failed: ephemeral ports exhausted"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A poll-driven protocol endpoint.
pub trait Stack: 'static {
    /// Handle a frame received at `now`.
    fn on_frame(&mut self, now: Time, frame: &[u8]);

    /// Return the next frame to transmit, or `None` when idle. Called
    /// repeatedly until it returns `None`.
    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>>;

    /// The next instant at which [`Stack::on_tick`] must run, or `None` when
    /// no timer is pending. Deadlines at or before `now` mean "tick me
    /// immediately".
    fn poll_deadline(&self, now: Time) -> Option<Time>;

    /// Advance timers to `now`. Spurious calls (before any deadline) must be
    /// harmless.
    fn on_tick(&mut self, now: Time);
}

/// A poll-driven protocol endpoint attached to *several* links (a server
/// host facing many clients). Identical contract to [`Stack`] except that
/// frames are tagged with the port they arrived on / should leave by.
pub trait MultiStack: 'static {
    /// Handle a frame received on `port` at `now`.
    fn on_frame(&mut self, now: Time, port: PortId, frame: &[u8]);

    /// Next frame to transmit and the port to send it on, or `None` when
    /// idle. Called repeatedly until it returns `None`.
    fn poll_transmit(&mut self, now: Time) -> Option<(PortId, Vec<u8>)>;

    /// The next instant at which [`MultiStack::on_tick`] must run.
    fn poll_deadline(&self, now: Time) -> Option<Time>;

    /// Advance timers to `now`. Spurious calls must be harmless.
    fn on_tick(&mut self, now: Time);
}

/// Adapter embedding a sans-IO [`MultiStack`] as a multi-port simulator
/// node — the server end of a [`crate::star`] topology.
pub struct MultiStackNode<S: MultiStack> {
    /// The protocol endpoint, freely accessible between simulation steps.
    pub stack: S,
    armed: Option<(Time, TimerId)>,
}

impl<S: MultiStack> MultiStackNode<S> {
    pub fn new(stack: S) -> Self {
        MultiStackNode { stack, armed: None }
    }

    fn pump(&mut self, ctx: &mut NodeCtx) {
        while let Some((port, frame)) = self.stack.poll_transmit(ctx.now) {
            ctx.send(port, frame);
        }
        match self.stack.poll_deadline(ctx.now) {
            Some(deadline) => {
                let deadline = deadline.max(ctx.now);
                let needs_rearm = match self.armed {
                    None => true,
                    Some((at, _)) => deadline < at,
                };
                if needs_rearm {
                    if let Some((_, id)) = self.armed.take() {
                        ctx.cancel(id);
                    }
                    let id = ctx.arm_at(deadline, 0);
                    self.armed = Some((deadline, id));
                }
            }
            None => {
                if let Some((_, id)) = self.armed.take() {
                    ctx.cancel(id);
                }
            }
        }
    }
}

impl<S: MultiStack> Node for MultiStackNode<S> {
    fn on_frame(&mut self, port: PortId, frame: Vec<u8>, ctx: &mut NodeCtx) {
        self.stack.on_frame(ctx.now, port, &frame);
        self.pump(ctx);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut NodeCtx) {
        self.armed = None;
        self.stack.on_tick(ctx.now);
        self.pump(ctx);
    }

    fn poll(&mut self, ctx: &mut NodeCtx) {
        self.pump(ctx);
    }
}

/// Adapter embedding a sans-IO [`Stack`] as a single-port simulator node.
pub struct StackNode<S: Stack> {
    /// The protocol endpoint. Freely accessible for inspection and for
    /// driving the application-side API between simulation steps.
    pub stack: S,
    armed: Option<(Time, TimerId)>,
}

impl<S: Stack> StackNode<S> {
    pub fn new(stack: S) -> Self {
        StackNode { stack, armed: None }
    }

    fn pump(&mut self, ctx: &mut NodeCtx) {
        while let Some(frame) = self.stack.poll_transmit(ctx.now) {
            ctx.send(0, frame);
        }
        match self.stack.poll_deadline(ctx.now) {
            Some(deadline) => {
                let deadline = deadline.max(ctx.now);
                let needs_rearm = match self.armed {
                    None => true,
                    Some((at, _)) => deadline < at,
                };
                if needs_rearm {
                    if let Some((_, id)) = self.armed.take() {
                        ctx.cancel(id);
                    }
                    let id = ctx.arm_at(deadline, 0);
                    self.armed = Some((deadline, id));
                }
            }
            None => {
                if let Some((_, id)) = self.armed.take() {
                    ctx.cancel(id);
                }
            }
        }
    }
}

impl<S: Stack> Node for StackNode<S> {
    fn on_frame(&mut self, _port: PortId, frame: Vec<u8>, ctx: &mut NodeCtx) {
        self.stack.on_frame(ctx.now, &frame);
        self.pump(ctx);
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut NodeCtx) {
        self.armed = None;
        self.stack.on_tick(ctx.now);
        self.pump(ctx);
    }

    fn poll(&mut self, ctx: &mut NodeCtx) {
        self.pump(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{LinkParams, SimNet};
    use crate::time::Dur;

    /// Emits `n` frames paced one per millisecond, then goes idle.
    struct Ticker {
        remaining: u32,
        next_at: Time,
        ready: bool,
    }
    impl Stack for Ticker {
        fn on_frame(&mut self, _: Time, _: &[u8]) {}
        fn poll_transmit(&mut self, _: Time) -> Option<Vec<u8>> {
            if self.ready {
                self.ready = false;
                Some(vec![self.remaining as u8])
            } else {
                None
            }
        }
        fn poll_deadline(&self, _: Time) -> Option<Time> {
            (self.remaining > 0).then_some(self.next_at)
        }
        fn on_tick(&mut self, now: Time) {
            if self.remaining > 0 && now >= self.next_at {
                self.remaining -= 1;
                self.ready = true;
                self.next_at = now + Dur::from_millis(1);
            }
        }
    }

    struct Collector {
        got: Vec<Vec<u8>>,
    }
    impl Stack for Collector {
        fn on_frame(&mut self, _: Time, frame: &[u8]) {
            self.got.push(frame.to_vec());
        }
        fn poll_transmit(&mut self, _: Time) -> Option<Vec<u8>> {
            None
        }
        fn poll_deadline(&self, _: Time) -> Option<Time> {
            None
        }
        fn on_tick(&mut self, _: Time) {}
    }

    #[test]
    fn paced_sender_delivers_all() {
        let mut net = SimNet::new(4);
        let t = net.add_node(Box::new(StackNode::new(Ticker {
            remaining: 5,
            next_at: Time::ZERO,
            ready: false,
        })));
        let c = net.add_node(Box::new(StackNode::new(Collector { got: vec![] })));
        net.connect(t, 0, c, 0, LinkParams::delay_only(Dur::from_micros(100)));
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(1));
        let got = &net.node::<StackNode<Collector>>(c).stack.got;
        assert_eq!(got.len(), 5);
        // `remaining` is decremented before the frame is emitted.
        assert_eq!(got[0], vec![4]);
        assert_eq!(got[4], vec![0]);
    }

    #[test]
    fn idle_stack_schedules_nothing() {
        let mut net = SimNet::new(4);
        net.add_node(Box::new(StackNode::new(Collector { got: vec![] })));
        net.poll_all();
        assert!(net.is_idle());
    }
}
