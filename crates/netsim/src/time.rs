//! Simulated time.
//!
//! The simulator runs on a virtual clock completely decoupled from wall-clock
//! time, so every experiment in this repository is deterministic and
//! reproducible bit-for-bit. Time is kept in integer nanoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Time {
    /// The start of the simulation.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as "never").
    pub const MAX: Time = Time(u64::MAX);

    /// Nanoseconds since simulation start.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds since simulation start.
    pub fn micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since simulation start.
    pub fn millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl Dur {
    pub const ZERO: Dur = Dur(0);

    pub fn from_nanos(n: u64) -> Dur {
        Dur(n)
    }
    pub fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }
    pub fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }
    pub fn from_secs(s: u64) -> Dur {
        Dur(s * 1_000_000_000)
    }

    pub fn nanos(self) -> u64 {
        self.0
    }
    pub fn micros(self) -> u64 {
        self.0 / 1_000
    }
    pub fn millis(self) -> u64 {
        self.0 / 1_000_000
    }
    pub fn secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Scale the duration by an integer factor, saturating.
    pub fn saturating_mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: Dur, hi: Dur) -> Dur {
        Dur(self.0.clamp(lo.0, hi.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        self.since(rhs)
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Dur::from_millis(3).nanos(), 3_000_000);
        assert_eq!(Dur::from_micros(7).nanos(), 7_000);
        assert_eq!(Dur::from_secs(2).millis(), 2_000);
        assert_eq!((Time::ZERO + Dur::from_millis(5)).millis(), 5);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Time::MAX + Dur::from_secs(1), Time::MAX);
        assert_eq!(Dur(3) - Dur(10), Dur::ZERO);
        assert_eq!(Time(5).since(Time(9)), Dur::ZERO);
    }

    #[test]
    fn ordering_is_by_instant() {
        assert!(Time(1) < Time(2));
        assert!(Dur::from_millis(1) < Dur::from_secs(1));
    }

    #[test]
    fn sub_time_gives_dur() {
        assert_eq!(Time(100) - Time(40), Dur(60));
    }

    #[test]
    fn clamp_and_mul() {
        assert_eq!(Dur(5).saturating_mul(3), Dur(15));
        assert_eq!(Dur(5).clamp(Dur(10), Dur(20)), Dur(10));
        assert_eq!(Dur(50).clamp(Dur(10), Dur(20)), Dur(20));
    }
}
