//! Frame tap: a transparent recording adapter around any sans-IO
//! [`Stack`].
//!
//! [`TapStack`] wraps a stack and appends every frame the stack receives
//! or emits — with its simulated timestamp and direction — into a shared
//! buffer the test harness holds on to. The wrapped stack sees exactly
//! the frames it would have seen bare, so a tapped run is byte-identical
//! to an untapped one. The conformance harness (`slconform`) uses taps on
//! both endpoints to capture wire traces for oracle checking, golden
//! snapshots, and byte-level replay.

use std::cell::RefCell;
use std::rc::Rc;

use crate::stack::Stack;
use crate::time::Time;

/// Which way a tapped frame was traveling, from the wrapped stack's
/// point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TapDir {
    /// The stack received this frame (`on_frame`).
    Rx,
    /// The stack emitted this frame (`poll_transmit`).
    Tx,
}

/// One captured frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TapEvent {
    pub at: Time,
    pub dir: TapDir,
    pub bytes: Vec<u8>,
}

/// The capture buffer, shared between the [`TapStack`] (owned by the
/// simulator) and the harness that reads it back out.
pub type SharedTap = Rc<RefCell<Vec<TapEvent>>>;

/// A fresh, empty capture buffer.
pub fn tap_buffer() -> SharedTap {
    Rc::new(RefCell::new(Vec::new()))
}

/// Recording adapter: behaves exactly like the wrapped stack, capturing
/// every frame in both directions.
pub struct TapStack<S: Stack> {
    /// The wrapped endpoint, accessible for app-side driving between
    /// simulation steps.
    pub inner: S,
    /// The capture buffer.
    pub tap: SharedTap,
}

impl<S: Stack> TapStack<S> {
    pub fn new(inner: S, tap: SharedTap) -> Self {
        TapStack { inner, tap }
    }
}

impl<S: Stack> Stack for TapStack<S> {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        self.tap.borrow_mut().push(TapEvent {
            at: now,
            dir: TapDir::Rx,
            bytes: frame.to_vec(),
        });
        self.inner.on_frame(now, frame);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        let frame = self.inner.poll_transmit(now);
        if let Some(ref bytes) = frame {
            self.tap.borrow_mut().push(TapEvent {
                at: now,
                dir: TapDir::Tx,
                bytes: bytes.clone(),
            });
        }
        frame
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        self.inner.poll_deadline(now)
    }

    fn on_tick(&mut self, now: Time) {
        self.inner.on_tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkParams;
    use crate::time::Dur;
    use crate::two_party;

    /// Sends one primer frame, stores whatever comes back.
    struct Pinger {
        primed: bool,
        got: Vec<Vec<u8>>,
    }
    impl Stack for Pinger {
        fn on_frame(&mut self, _: Time, frame: &[u8]) {
            self.got.push(frame.to_vec());
        }
        fn poll_transmit(&mut self, _: Time) -> Option<Vec<u8>> {
            std::mem::take(&mut self.primed).then(|| vec![42])
        }
        fn poll_deadline(&self, _: Time) -> Option<Time> {
            None
        }
        fn on_tick(&mut self, _: Time) {}
    }

    /// Echoes every received frame back once.
    struct Echo {
        pending: Vec<Vec<u8>>,
    }
    impl Stack for Echo {
        fn on_frame(&mut self, _: Time, frame: &[u8]) {
            self.pending.push(frame.to_vec());
        }
        fn poll_transmit(&mut self, _: Time) -> Option<Vec<u8>> {
            self.pending.pop()
        }
        fn poll_deadline(&self, _: Time) -> Option<Time> {
            None
        }
        fn on_tick(&mut self, _: Time) {}
    }

    #[test]
    fn tap_records_both_directions_without_altering_traffic() {
        let ta = tap_buffer();
        let tb = tap_buffer();
        let a = TapStack::new(Pinger { primed: true, got: vec![] }, ta.clone());
        let b = TapStack::new(Echo { pending: vec![] }, tb.clone());
        let (mut net, na, _) = two_party(1, a, b, LinkParams::delay_only(Dur::from_millis(1)));
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(1));

        // Traffic was unaltered: the echo made it back to A.
        let got = &net.node::<crate::StackNode<TapStack<Pinger>>>(na).stack.inner.got;
        assert_eq!(got, &vec![vec![42]]);

        let a_ev = ta.borrow().clone();
        let b_ev = tb.borrow().clone();
        assert_eq!(
            a_ev.iter().map(|e| e.dir).collect::<Vec<_>>(),
            vec![TapDir::Tx, TapDir::Rx]
        );
        assert_eq!(
            b_ev.iter().map(|e| e.dir).collect::<Vec<_>>(),
            vec![TapDir::Rx, TapDir::Tx]
        );
        // Rx timestamps trail the matching Tx by the link delay.
        assert_eq!(b_ev[0].at, a_ev[0].at + Dur::from_millis(1));
        assert_eq!(b_ev[0].bytes, a_ev[0].bytes);
    }
}
