//! The discrete-event network simulator.
//!
//! A [`SimNet`] owns a set of [`Node`]s connected by point-to-point links.
//! Nodes are poll-driven, in the style of event-driven network stacks such as
//! smoltcp: the simulator calls [`Node::on_frame`] / [`Node::on_timer`] and
//! then [`Node::poll`], and the node responds by queuing actions (frames to
//! transmit, timers to arm) on its [`NodeCtx`]. All scheduling runs on the
//! simulated clock with deterministic tie-breaking, and every random choice
//! (fault injection) comes from per-link forks of one seed, so runs are
//! exactly reproducible.

use crate::event::EventQueue;
use crate::fault::{FaultInjector, FaultProfile, FaultStats};
use crate::rng::DetRng;
use crate::time::{Dur, Time};
use std::any::Any;
use std::collections::HashSet;

/// Index of a node within a [`SimNet`].
pub type NodeId = usize;
/// Index of a port (link attachment point) on a node.
pub type PortId = usize;
/// Index of a link within a [`SimNet`].
pub type LinkId = usize;

/// Identifier of an armed timer, used for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

/// Physical characteristics of a link (applied independently per direction).
#[derive(Clone, Debug)]
pub struct LinkParams {
    /// One-way propagation delay.
    pub delay: Dur,
    /// Transmission rate in bits/second; `0` means infinite (no serialization
    /// delay).
    pub rate_bps: u64,
    /// Maximum frame size in bytes; larger frames are dropped. `0` = no limit.
    pub mtu: usize,
    /// Impairments applied to frames in flight.
    pub fault: FaultProfile,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams {
            delay: Dur::from_micros(10),
            rate_bps: 0,
            mtu: 0,
            fault: FaultProfile::none(),
        }
    }
}

impl LinkParams {
    /// A link with only a propagation delay.
    pub fn delay_only(delay: Dur) -> LinkParams {
        LinkParams { delay, ..Default::default() }
    }

    pub fn with_fault(mut self, fault: FaultProfile) -> Self {
        self.fault = fault;
        self
    }

    pub fn with_rate(mut self, bps: u64) -> Self {
        self.rate_bps = bps;
        self
    }

    pub fn with_mtu(mut self, mtu: usize) -> Self {
        self.mtu = mtu;
        self
    }
}

/// Behaviour of a simulated node. Implementations embed whatever protocol
/// stack and application logic the experiment needs.
pub trait Node: Any {
    /// A frame arrived on `port`.
    fn on_frame(&mut self, port: PortId, frame: Vec<u8>, ctx: &mut NodeCtx);
    /// A previously armed timer fired. `token` is the caller-chosen tag.
    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx);
    /// Give the node an opportunity to transmit. Called once at startup and
    /// after every event delivered to this node.
    fn poll(&mut self, _ctx: &mut NodeCtx) {}
}

enum Action {
    Send { port: PortId, frame: Vec<u8> },
    Arm { at: Time, token: u64, id: TimerId },
    Cancel { id: TimerId },
}

/// Interface through which a [`Node`] interacts with the simulator during a
/// callback.
pub struct NodeCtx {
    /// Current simulated time.
    pub now: Time,
    /// The node being called.
    pub node: NodeId,
    actions: Vec<Action>,
    next_timer: u64,
}

impl NodeCtx {
    /// Queue a frame for transmission on `port`.
    pub fn send(&mut self, port: PortId, frame: Vec<u8>) {
        self.actions.push(Action::Send { port, frame });
    }

    /// Arm a one-shot timer to fire at absolute time `at` with `token`.
    pub fn arm_at(&mut self, at: Time, token: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.actions.push(Action::Arm { at, token, id });
        id
    }

    /// Arm a one-shot timer to fire after `d` with `token`.
    pub fn arm_in(&mut self, d: Dur, token: u64) -> TimerId {
        self.arm_at(self.now + d, token)
    }

    /// Cancel a previously armed timer. Cancelling an already-fired timer is
    /// a harmless no-op.
    pub fn cancel(&mut self, id: TimerId) {
        self.actions.push(Action::Cancel { id });
    }
}

/// A scheduled change to the network itself (chaos campaigns): link
/// partitions, profile/rate swaps, and node restarts, executed at a chosen
/// simulated time like any other event so campaigns are fully replayable.
#[derive(Clone, Debug)]
pub enum AdminOp {
    /// Sever the link: frames offered while down are counted and discarded.
    LinkDown(LinkId),
    /// Restore a severed link.
    LinkUp(LinkId),
    /// Swap the link's fault profile (both directions).
    SetFault(LinkId, FaultProfile),
    /// Change the link's transmission rate in bits/second (`0` = infinite).
    SetRate(LinkId, u64),
    /// Restart a node: its state is rebuilt from its registered factory and
    /// all of its pending timers are invalidated. Frames already in flight
    /// toward it still arrive (at the fresh instance).
    RestartNode(NodeId),
}

enum Event {
    Deliver { node: NodeId, port: PortId, frame: Vec<u8> },
    Timer { node: NodeId, token: u64, id: TimerId, epoch: u64 },
    Admin(AdminOp),
    /// Index into [`SimNet::hooks`]: a scheduled callback with full
    /// simulator access ([`AdminOp`] is `Clone + Debug` data, so closures
    /// cannot ride it).
    Hook(usize),
}

/// A scheduled control-plane intervention needing full simulator access —
/// e.g. installing reroute tables into router nodes once a partition is
/// "detected", or wiping a middlebox's translation table.
type Hook = Box<dyn FnOnce(&mut SimNet)>;

struct Direction {
    injector: FaultInjector,
    busy_until: Time,
    stats: DirStats,
}

/// Per-direction link statistics.
#[derive(Clone, Debug, Default)]
pub struct DirStats {
    /// Frames offered by the sender.
    pub tx_frames: u64,
    /// Bytes offered by the sender.
    pub tx_bytes: u64,
    /// Frames actually delivered (after faults; includes duplicates).
    pub rx_frames: u64,
    /// Bytes actually delivered.
    pub rx_bytes: u64,
    /// Frames dropped for exceeding the MTU.
    pub mtu_drops: u64,
    /// Frames discarded because the link was partitioned (down).
    pub partition_drops: u64,
}

struct Link {
    params: LinkParams,
    ends: [(NodeId, PortId); 2],
    dirs: [Direction; 2],
    /// False while the link is partitioned by [`AdminOp::LinkDown`].
    up: bool,
}

/// Rebuilds a node from scratch after [`AdminOp::RestartNode`].
type NodeFactory = Box<dyn Fn() -> Box<dyn Node>>;

/// The simulator: nodes, links, clock, and event queue.
pub struct SimNet {
    nodes: Vec<Box<dyn Node>>,
    links: Vec<Link>,
    /// `port_map[node][port] = (link, direction index when transmitting)`
    port_map: Vec<Vec<Option<(LinkId, usize)>>>,
    queue: EventQueue<Event>,
    now: Time,
    rng: DetRng,
    next_timer: u64,
    cancelled: HashSet<TimerId>,
    events_processed: u64,
    /// Bumped on restart; timers armed in an older epoch never fire.
    node_epochs: Vec<u64>,
    /// Rebuilds a node's state after [`AdminOp::RestartNode`].
    factories: Vec<Option<NodeFactory>>,
    /// Restarts performed, per node.
    restarts: Vec<u64>,
    /// Scheduled callbacks; each slot is taken (run at most once) when its
    /// [`Event::Hook`] pops.
    hooks: Vec<Option<Hook>>,
}

impl SimNet {
    /// Create an empty network; all randomness derives from `seed`.
    pub fn new(seed: u64) -> SimNet {
        SimNet {
            nodes: Vec::new(),
            links: Vec::new(),
            port_map: Vec::new(),
            queue: EventQueue::new(),
            now: Time::ZERO,
            rng: DetRng::new(seed),
            next_timer: 0,
            cancelled: HashSet::new(),
            events_processed: 0,
            node_epochs: Vec::new(),
            factories: Vec::new(),
            restarts: Vec::new(),
            hooks: Vec::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Add a node; returns its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(node);
        self.port_map.push(Vec::new());
        self.node_epochs.push(0);
        self.factories.push(None);
        self.restarts.push(0);
        self.nodes.len() - 1
    }

    /// Add a node built by `factory`, which is kept so the node can be
    /// restarted (state loss) by [`AdminOp::RestartNode`].
    pub fn add_restartable_node(
        &mut self,
        factory: impl Fn() -> Box<dyn Node> + 'static,
    ) -> NodeId {
        let id = self.add_node(factory());
        self.factories[id] = Some(Box::new(factory));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Connect `a`'s port `ap` to `b`'s port `bp` with the given parameters.
    /// Both directions share the parameters but draw independent fault
    /// streams.
    pub fn connect(
        &mut self,
        a: NodeId,
        ap: PortId,
        b: NodeId,
        bp: PortId,
        params: LinkParams,
    ) -> LinkId {
        let id = self.links.len();
        let f0 = FaultInjector::new(params.fault.clone(), self.rng.fork(id as u64 * 2 + 1));
        let f1 = FaultInjector::new(params.fault.clone(), self.rng.fork(id as u64 * 2 + 2));
        self.links.push(Link {
            params,
            ends: [(a, ap), (b, bp)],
            dirs: [
                Direction { injector: f0, busy_until: Time::ZERO, stats: DirStats::default() },
                Direction { injector: f1, busy_until: Time::ZERO, stats: DirStats::default() },
            ],
            up: true,
        });
        for (node, port, dir) in [(a, ap, 0), (b, bp, 1)] {
            let ports = &mut self.port_map[node];
            if ports.len() <= port {
                ports.resize(port + 1, None);
            }
            assert!(ports[port].is_none(), "port {port} of node {node} already connected");
            ports[port] = Some((id, dir));
        }
        id
    }

    /// Replace a link's fault profile mid-run (both directions).
    pub fn set_link_fault(&mut self, link: LinkId, fault: FaultProfile) {
        for dir in &mut self.links[link].dirs {
            dir.injector.set_profile(fault.clone());
        }
    }

    /// Sever a link: everything sent on it from now on is dropped.
    pub fn fail_link(&mut self, link: LinkId) {
        self.set_link_fault(link, FaultProfile::lossy(1.0));
    }

    /// Restore a failed link to a perfect link.
    pub fn heal_link(&mut self, link: LinkId) {
        self.set_link_fault(link, FaultProfile::none());
    }

    /// Whether the link is currently up (not partitioned).
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.links[link].up
    }

    /// Partition or restore a link immediately.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.links[link].up = up;
    }

    /// Restarts performed on a node so far.
    pub fn node_restarts(&self, node: NodeId) -> u64 {
        self.restarts[node]
    }

    /// Schedule an [`AdminOp`] to execute at simulated time `at`.
    pub fn schedule_admin(&mut self, at: Time, op: AdminOp) {
        self.queue.push(at.max(self.now), Event::Admin(op));
    }

    /// Schedule a callback with full simulator access to run at `at`,
    /// ordered against deliveries/timers/admin ops like any other event.
    /// This is the control-plane escape hatch the multi-hop topology layer
    /// uses for partition-triggered reroute (install backup tables after a
    /// detection delay) and middlebox state loss (wipe a NAT table) —
    /// interventions that must mutate node state, which plain-data
    /// [`AdminOp`]s cannot express.
    pub fn schedule_call(&mut self, at: Time, f: impl FnOnce(&mut SimNet) + 'static) {
        let idx = self.hooks.len();
        self.hooks.push(Some(Box::new(f)));
        self.queue.push(at.max(self.now), Event::Hook(idx));
    }

    /// Schedule a partition at `down_at` healed at `up_at`.
    pub fn schedule_partition(&mut self, link: LinkId, down_at: Time, up_at: Time) {
        self.schedule_admin(down_at, AdminOp::LinkDown(link));
        self.schedule_admin(up_at, AdminOp::LinkUp(link));
    }

    /// Schedule `cycles` down/up flaps: the link goes down at `first_down`,
    /// stays down for `down_for`, comes back for `up_for`, and repeats.
    pub fn schedule_link_flaps(
        &mut self,
        link: LinkId,
        first_down: Time,
        down_for: Dur,
        up_for: Dur,
        cycles: u32,
    ) {
        let mut t = first_down;
        for _ in 0..cycles {
            self.schedule_partition(link, t, t + down_for);
            t = t + down_for + up_for;
        }
    }

    /// Restart a node immediately: rebuild it from its factory, invalidate
    /// its pending timers, and poll the fresh instance so it can start up.
    /// Panics if the node was not added via
    /// [`SimNet::add_restartable_node`].
    pub fn restart_node(&mut self, node: NodeId) {
        let factory = self.factories[node]
            .as_ref()
            .unwrap_or_else(|| panic!("node {node} has no factory; cannot restart"));
        self.nodes[node] = factory();
        self.node_epochs[node] += 1;
        self.restarts[node] += 1;
        self.poll_node(node);
    }

    fn apply_admin(&mut self, op: AdminOp) {
        match op {
            AdminOp::LinkDown(l) => self.links[l].up = false,
            AdminOp::LinkUp(l) => self.links[l].up = true,
            AdminOp::SetFault(l, f) => self.set_link_fault(l, f),
            AdminOp::SetRate(l, bps) => self.links[l].params.rate_bps = bps,
            AdminOp::RestartNode(n) => self.restart_node(n),
        }
    }

    /// Fault statistics for one direction (`0` = first endpoint transmitting).
    pub fn link_fault_stats(&self, link: LinkId, dir: usize) -> &FaultStats {
        self.links[link].dirs[dir].injector.stats()
    }

    /// Traffic statistics for one direction.
    pub fn link_dir_stats(&self, link: LinkId, dir: usize) -> &DirStats {
        &self.links[link].dirs[dir].stats
    }

    /// Instantaneous queueing delay for one direction: how long a frame
    /// handed to the link *now* would wait behind frames still
    /// serializing under the link rate. The rate-limited link models an
    /// unbounded serialization queue, so this is the bufferbloat gauge —
    /// sample it while driving and keep the peak.
    pub fn link_queue_delay(&self, link: LinkId, dir: usize) -> Dur {
        self.links[link].dirs[dir].busy_until.since(self.now)
    }

    /// Borrow a node, downcast to its concrete type.
    pub fn node<T: 'static>(&self, id: NodeId) -> &T {
        (self.nodes[id].as_ref() as &dyn Any)
            .downcast_ref::<T>()
            .expect("node type mismatch")
    }

    /// Mutably borrow a node, downcast to its concrete type. After external
    /// mutation call [`SimNet::poll_node`] so the node can transmit.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> &mut T {
        (self.nodes[id].as_mut() as &mut dyn Any)
            .downcast_mut::<T>()
            .expect("node type mismatch")
    }

    fn make_ctx(&mut self, node: NodeId) -> NodeCtx {
        NodeCtx { now: self.now, node, actions: Vec::new(), next_timer: self.next_timer }
    }

    fn apply_ctx(&mut self, ctx: NodeCtx) {
        self.next_timer = ctx.next_timer;
        let node = ctx.node;
        for action in ctx.actions {
            match action {
                Action::Send { port, frame } => self.transmit(node, port, frame),
                Action::Arm { at, token, id } => {
                    let epoch = self.node_epochs[node];
                    self.queue.push(at, Event::Timer { node, token, id, epoch });
                }
                Action::Cancel { id } => {
                    self.cancelled.insert(id);
                }
            }
        }
    }

    fn transmit(&mut self, node: NodeId, port: PortId, frame: Vec<u8>) {
        let Some(Some((link_id, dir_idx))) = self.port_map[node].get(port).copied() else {
            // Sending on an unconnected port silently discards the frame,
            // like transmitting on an unplugged interface.
            return;
        };
        let link = &mut self.links[link_id];
        let dest = link.ends[1 - dir_idx];
        let dir = &mut link.dirs[dir_idx];
        dir.stats.tx_frames += 1;
        dir.stats.tx_bytes += frame.len() as u64;
        if !link.up {
            dir.stats.partition_drops += 1;
            return;
        }
        if link.params.mtu != 0 && frame.len() > link.params.mtu {
            dir.stats.mtu_drops += 1;
            return;
        }
        // Serialization (transmission) delay under the link rate.
        let tx_time = if link.params.rate_bps == 0 {
            Dur::ZERO
        } else {
            Dur((frame.len() as u128 * 8 * 1_000_000_000 / link.params.rate_bps as u128) as u64)
        };
        let start = self.now.max(dir.busy_until);
        dir.busy_until = start + tx_time;
        let base_arrival = start + tx_time + link.params.delay;
        let fate = dir.injector.apply(&frame);
        for (extra, bytes) in fate.deliveries {
            dir.stats.rx_frames += 1;
            dir.stats.rx_bytes += bytes.len() as u64;
            self.queue.push(
                base_arrival + extra,
                Event::Deliver { node: dest.0, port: dest.1, frame: bytes },
            );
        }
    }

    /// Invoke `poll` on a node and apply the resulting actions.
    pub fn poll_node(&mut self, id: NodeId) {
        let mut ctx = self.make_ctx(id);
        let mut node = std::mem::replace(&mut self.nodes[id], Box::new(NullNode));
        node.poll(&mut ctx);
        self.nodes[id] = node;
        self.apply_ctx(ctx);
    }

    /// Poll every node once (typically to bootstrap transmissions).
    pub fn poll_all(&mut self) {
        for id in 0..self.nodes.len() {
            self.poll_node(id);
        }
    }

    /// Drop cancelled and stale-epoch timers from the head of the queue,
    /// then return the time of the next *live* event.
    fn live_peek_time(&mut self) -> Option<Time> {
        loop {
            match self.queue.peek() {
                Some((_, Event::Timer { id, .. })) if self.cancelled.contains(id) => {
                    let id = *id;
                    self.queue.pop();
                    self.cancelled.remove(&id);
                }
                Some((_, Event::Timer { node, epoch, .. }))
                    if *epoch != self.node_epochs[*node] =>
                {
                    self.queue.pop();
                }
                Some((t, _)) => return Some(t),
                None => return None,
            }
        }
    }

    /// Process the next event, if any. Returns `false` when the queue is
    /// empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some((at, ev)) = self.queue.pop() else { return false };
            debug_assert!(at >= self.now, "time moved backwards");
            match ev {
                Event::Timer { id, .. } if self.cancelled.remove(&id) => continue,
                // A timer armed before its node restarted belongs to state
                // that no longer exists.
                Event::Timer { node, epoch, .. } if epoch != self.node_epochs[node] => continue,
                Event::Admin(op) => {
                    self.now = at;
                    self.events_processed += 1;
                    self.apply_admin(op);
                }
                Event::Hook(idx) => {
                    self.now = at;
                    self.events_processed += 1;
                    if let Some(f) = self.hooks[idx].take() {
                        f(self);
                    }
                }
                Event::Deliver { node, port, frame } => {
                    self.now = at;
                    self.events_processed += 1;
                    let mut ctx = self.make_ctx(node);
                    let mut n = std::mem::replace(&mut self.nodes[node], Box::new(NullNode));
                    n.on_frame(port, frame, &mut ctx);
                    n.poll(&mut ctx);
                    self.nodes[node] = n;
                    self.apply_ctx(ctx);
                }
                Event::Timer { node, token, .. } => {
                    self.now = at;
                    self.events_processed += 1;
                    let mut ctx = self.make_ctx(node);
                    let mut n = std::mem::replace(&mut self.nodes[node], Box::new(NullNode));
                    n.on_timer(token, &mut ctx);
                    n.poll(&mut ctx);
                    self.nodes[node] = n;
                    self.apply_ctx(ctx);
                }
            }
            return true;
        }
    }

    /// Run until the queue drains or the clock passes `deadline`.
    /// Returns the time at which the run stopped.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        while let Some(t) = self.live_peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
        self.now
    }

    /// Run until no events remain, up to a safety deadline.
    /// Panics if the deadline is hit (runaway simulation).
    pub fn run_to_idle(&mut self, deadline: Time) -> Time {
        while let Some(t) = self.live_peek_time() {
            assert!(t <= deadline, "simulation did not go idle by {deadline:?}");
            self.step();
        }
        self.now
    }

    /// True when no live events are pending.
    pub fn is_idle(&mut self) -> bool {
        self.live_peek_time().is_none()
    }
}

/// Placeholder swapped in while a node's callback runs (nodes never see it).
struct NullNode;
impl Node for NullNode {
    fn on_frame(&mut self, _: PortId, _: Vec<u8>, _: &mut NodeCtx) {
        unreachable!("NullNode received a frame")
    }
    fn on_timer(&mut self, _: u64, _: &mut NodeCtx) {
        unreachable!("NullNode received a timer")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes every frame back on the same port, tagging it.
    struct Echo {
        seen: Vec<Vec<u8>>,
    }
    impl Node for Echo {
        fn on_frame(&mut self, port: PortId, frame: Vec<u8>, ctx: &mut NodeCtx) {
            self.seen.push(frame.clone());
            let mut reply = frame;
            reply.push(b'!');
            ctx.send(port, reply);
        }
        fn on_timer(&mut self, _: u64, _: &mut NodeCtx) {}
    }

    /// Sends one frame at startup and records replies.
    struct Pinger {
        sent: bool,
        replies: Vec<Vec<u8>>,
        reply_times: Vec<Time>,
    }
    impl Node for Pinger {
        fn on_frame(&mut self, _: PortId, frame: Vec<u8>, ctx: &mut NodeCtx) {
            self.replies.push(frame);
            self.reply_times.push(ctx.now);
        }
        fn on_timer(&mut self, _: u64, _: &mut NodeCtx) {}
        fn poll(&mut self, ctx: &mut NodeCtx) {
            if !self.sent {
                self.sent = true;
                ctx.send(0, b"ping".to_vec());
            }
        }
    }

    fn two_nodes(params: LinkParams) -> (SimNet, NodeId, NodeId) {
        let mut net = SimNet::new(99);
        let p = net.add_node(Box::new(Pinger { sent: false, replies: vec![], reply_times: vec![] }));
        let e = net.add_node(Box::new(Echo { seen: vec![] }));
        net.connect(p, 0, e, 0, params);
        (net, p, e)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut net, p, e) = two_nodes(LinkParams::delay_only(Dur::from_millis(1)));
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(1));
        assert_eq!(net.node::<Echo>(e).seen, vec![b"ping".to_vec()]);
        let pinger = net.node::<Pinger>(p);
        assert_eq!(pinger.replies, vec![b"ping!".to_vec()]);
        // One millisecond each way.
        assert_eq!(pinger.reply_times, vec![Time::ZERO + Dur::from_millis(2)]);
    }

    #[test]
    fn lossy_link_drops_everything() {
        let (mut net, p, e) = two_nodes(
            LinkParams::delay_only(Dur::from_millis(1)).with_fault(FaultProfile::lossy(1.0)),
        );
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(1));
        assert!(net.node::<Echo>(e).seen.is_empty());
        assert!(net.node::<Pinger>(p).replies.is_empty());
        assert_eq!(net.link_fault_stats(0, 0).dropped, 1);
    }

    #[test]
    fn mtu_drops_oversized() {
        let mut net = SimNet::new(1);
        let p = net.add_node(Box::new(Pinger { sent: false, replies: vec![], reply_times: vec![] }));
        let e = net.add_node(Box::new(Echo { seen: vec![] }));
        net.connect(p, 0, e, 0, LinkParams::default().with_mtu(2));
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(1));
        assert!(net.node::<Echo>(e).seen.is_empty());
        assert_eq!(net.link_dir_stats(0, 0).mtu_drops, 1);
    }

    #[test]
    fn serialization_delay_spaces_frames() {
        // 1000 bytes at 8 Mbps = 1 ms of transmission time per frame.
        struct Burst;
        impl Node for Burst {
            fn on_frame(&mut self, _: PortId, _: Vec<u8>, _: &mut NodeCtx) {}
            fn on_timer(&mut self, _: u64, _: &mut NodeCtx) {}
            fn poll(&mut self, ctx: &mut NodeCtx) {
                if ctx.now == Time::ZERO {
                    ctx.send(0, vec![0; 1000]);
                    ctx.send(0, vec![0; 1000]);
                }
            }
        }
        struct Sink {
            times: Vec<Time>,
        }
        impl Node for Sink {
            fn on_frame(&mut self, _: PortId, _: Vec<u8>, ctx: &mut NodeCtx) {
                self.times.push(ctx.now);
            }
            fn on_timer(&mut self, _: u64, _: &mut NodeCtx) {}
        }
        let mut net = SimNet::new(5);
        let b = net.add_node(Box::new(Burst));
        let s = net.add_node(Box::new(Sink { times: vec![] }));
        net.connect(
            b,
            0,
            s,
            0,
            LinkParams { delay: Dur::ZERO, rate_bps: 8_000_000, mtu: 0, fault: FaultProfile::none() },
        );
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(1));
        let times = &net.node::<Sink>(s).times;
        assert_eq!(times.len(), 2);
        assert_eq!(times[0], Time::ZERO + Dur::from_millis(1));
        assert_eq!(times[1], Time::ZERO + Dur::from_millis(2));
    }

    #[test]
    fn timers_fire_and_cancel() {
        struct Timed {
            fired: Vec<u64>,
            armed: bool,
        }
        impl Node for Timed {
            fn on_frame(&mut self, _: PortId, _: Vec<u8>, _: &mut NodeCtx) {}
            fn on_timer(&mut self, token: u64, _: &mut NodeCtx) {
                self.fired.push(token);
            }
            fn poll(&mut self, ctx: &mut NodeCtx) {
                if !self.armed {
                    self.armed = true;
                    ctx.arm_in(Dur::from_millis(1), 1);
                    let id = ctx.arm_in(Dur::from_millis(2), 2);
                    ctx.arm_in(Dur::from_millis(3), 3);
                    ctx.cancel(id);
                }
            }
        }
        let mut net = SimNet::new(2);
        let t = net.add_node(Box::new(Timed { fired: vec![], armed: false }));
        net.poll_all();
        net.run_to_idle(Time::ZERO + Dur::from_secs(1));
        assert_eq!(net.node::<Timed>(t).fired, vec![1, 3]);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let run = || {
            let (mut net, p, _) = two_nodes(
                LinkParams::delay_only(Dur::from_millis(1))
                    .with_fault(FaultProfile::lossy(0.5)),
            );
            net.poll_all();
            net.run_to_idle(Time::ZERO + Dur::from_secs(1));
            net.node::<Pinger>(p).replies.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unconnected_port_discards() {
        let mut net = SimNet::new(3);
        let p = net.add_node(Box::new(Pinger { sent: false, replies: vec![], reply_times: vec![] }));
        net.poll_all(); // Pinger sends on port 0, which has no link.
        net.run_to_idle(Time::ZERO + Dur::from_secs(1));
        assert!(net.node::<Pinger>(p).replies.is_empty());
    }

    /// Sends one frame per millisecond, forever (stopped by the deadline).
    struct Beacon {
        next: u64,
    }
    impl Node for Beacon {
        fn on_frame(&mut self, _: PortId, _: Vec<u8>, _: &mut NodeCtx) {}
        fn on_timer(&mut self, _: u64, ctx: &mut NodeCtx) {
            ctx.send(0, vec![self.next as u8]);
            self.next += 1;
            ctx.arm_in(Dur::from_millis(1), 0);
        }
        fn poll(&mut self, ctx: &mut NodeCtx) {
            if self.next == 0 {
                self.next = 1;
                ctx.send(0, vec![0]);
                ctx.arm_in(Dur::from_millis(1), 0);
            }
        }
    }
    struct Count {
        frames: u64,
    }
    impl Node for Count {
        fn on_frame(&mut self, _: PortId, _: Vec<u8>, _: &mut NodeCtx) {
            self.frames += 1;
        }
        fn on_timer(&mut self, _: u64, _: &mut NodeCtx) {}
    }

    #[test]
    fn scheduled_partition_blackholes_frames() {
        let mut net = SimNet::new(4);
        let b = net.add_node(Box::new(Beacon { next: 0 }));
        let c = net.add_node(Box::new(Count { frames: 0 }));
        let link = net.connect(b, 0, c, 0, LinkParams::delay_only(Dur::ZERO));
        // Down during [10ms, 20ms): 10 of the first 30 beacons vanish.
        net.schedule_partition(
            link,
            Time::ZERO + Dur::from_millis(10),
            Time::ZERO + Dur::from_millis(20),
        );
        net.poll_all();
        net.run_until(Time::ZERO + Dur::from_millis(29));
        assert_eq!(net.node::<Count>(c).frames, 20);
        assert_eq!(net.link_dir_stats(link, 0).partition_drops, 10);
        assert!(net.link_is_up(link));
    }

    #[test]
    fn link_flaps_alternate_up_and_down() {
        let mut net = SimNet::new(4);
        let b = net.add_node(Box::new(Beacon { next: 0 }));
        let c = net.add_node(Box::new(Count { frames: 0 }));
        let link = net.connect(b, 0, c, 0, LinkParams::delay_only(Dur::ZERO));
        // Three flaps: down 5 ms, up 5 ms, starting at 10 ms.
        net.schedule_link_flaps(
            link,
            Time::ZERO + Dur::from_millis(10),
            Dur::from_millis(5),
            Dur::from_millis(5),
            3,
        );
        net.poll_all();
        net.run_until(Time::ZERO + Dur::from_millis(49));
        // 50 beacons offered; 3 × 5 dropped while down.
        assert_eq!(net.link_dir_stats(link, 0).partition_drops, 15);
        assert_eq!(net.node::<Count>(c).frames, 35);
    }

    #[test]
    fn scheduled_rate_change_applies() {
        let mut net = SimNet::new(4);
        let b = net.add_node(Box::new(Beacon { next: 0 }));
        let c = net.add_node(Box::new(Count { frames: 0 }));
        let link = net.connect(b, 0, c, 0, LinkParams::delay_only(Dur::ZERO));
        assert_eq!(net.links[link].params.rate_bps, 0);
        net.schedule_admin(Time::ZERO + Dur::from_millis(1), AdminOp::SetRate(link, 1_000_000));
        net.poll_all();
        net.run_until(Time::ZERO + Dur::from_millis(5));
        assert_eq!(net.links[link].params.rate_bps, 1_000_000);
    }

    #[test]
    fn node_restart_loses_state_and_invalidates_timers() {
        let mut net = SimNet::new(4);
        let b = net.add_restartable_node(|| Box::new(Beacon { next: 0 }));
        let c = net.add_node(Box::new(Count { frames: 0 }));
        net.connect(b, 0, c, 0, LinkParams::delay_only(Dur::ZERO));
        net.schedule_admin(Time::ZERO + Dur::from_millis(10), AdminOp::RestartNode(b));
        net.poll_all();
        net.run_until(Time::ZERO + Dur::from_millis(20));
        // The fresh instance restarted its sequence from zero...
        assert_eq!(net.node_restarts(b), 1);
        let fresh = net.node::<Beacon>(b);
        assert!(fresh.next < 15, "state should have been lost, next={}", fresh.next);
        // ...and exactly one beacon cadence survived (the old epoch's timer
        // chain died with the restart; only the new chain ticks).
        let frames = net.node::<Count>(c).frames;
        assert_eq!(frames, 21, "beacons 0..10ms, restart tick, then 11..20ms");
    }

    #[test]
    fn scheduled_call_runs_once_at_its_time_with_net_access() {
        let mut net = SimNet::new(4);
        let b = net.add_node(Box::new(Beacon { next: 0 }));
        let c = net.add_node(Box::new(Count { frames: 0 }));
        let link = net.connect(b, 0, c, 0, LinkParams::delay_only(Dur::ZERO));
        // The hook partitions the link itself (full simulator access) and
        // rewrites node state.
        net.schedule_call(Time::ZERO + Dur::from_millis(10), move |net| {
            net.set_link_up(link, false);
            net.node_mut::<Count>(1).frames += 1000;
        });
        net.poll_all();
        net.run_until(Time::ZERO + Dur::from_millis(20));
        // 10 beacons arrived before the hook; everything after is dropped,
        // and the hook's own mutation is visible.
        assert_eq!(net.node::<Count>(c).frames, 10 + 1000);
        assert!(!net.link_is_up(link));
    }

    #[test]
    fn restart_campaign_is_deterministic() {
        let run = || {
            let mut net = SimNet::new(77);
            let b = net.add_restartable_node(|| Box::new(Beacon { next: 0 }));
            let c = net.add_node(Box::new(Count { frames: 0 }));
            let link = net.connect(
                b,
                0,
                c,
                0,
                LinkParams::delay_only(Dur::from_micros(100))
                    .with_fault(FaultProfile::lossy(0.3)),
            );
            net.schedule_link_flaps(
                link,
                Time::ZERO + Dur::from_millis(3),
                Dur::from_millis(2),
                Dur::from_millis(2),
                2,
            );
            net.schedule_admin(Time::ZERO + Dur::from_millis(7), AdminOp::RestartNode(b));
            net.poll_all();
            net.run_until(Time::ZERO + Dur::from_millis(15));
            (net.node::<Count>(c).frames, net.link_fault_stats(link, 0).clone())
        };
        assert_eq!(run(), run());
    }
}
