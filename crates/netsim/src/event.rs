//! A deterministic discrete-event queue.
//!
//! Events are ordered by timestamp, with insertion order breaking ties so
//! that two events scheduled for the same instant always pop in the order
//! they were pushed — a requirement for reproducible simulations.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: Time,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of simulation events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `ev` to fire at `at`.
    pub fn push(&mut self, at: Time, ev: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| (e.at, e.ev))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Timestamp and payload of the earliest pending event.
    pub fn peek(&self) -> Option<(Time, &E)> {
        self.heap.peek().map(|e| (e.at, &e.ev))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), "c");
        q.push(Time(10), "a");
        q.push(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time(5), i)));
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time(9), ());
        q.push(Time(4), ());
        assert_eq!(q.peek_time(), Some(Time(4)));
        assert_eq!(q.len(), 2);
    }
}
