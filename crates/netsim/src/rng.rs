//! Deterministic pseudo-random number generation for the simulator.
//!
//! We implement splitmix64 (for seeding) and xoshiro256** (for the stream)
//! ourselves rather than depending on an external crate, so simulation
//! results are stable regardless of dependency versions. The generator is
//! *forkable*: independent sub-streams can be derived for each link or node,
//! so adding a fault source to one link never perturbs another link's draws.

/// splitmix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** PRNG.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> DetRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** must not start in the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// Derive an independent sub-stream keyed by `stream`.
    ///
    /// Forks with distinct keys from the same parent produce statistically
    /// independent sequences; the parent is unaffected.
    pub fn fork(&self, stream: u64) -> DetRng {
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        DetRng { s }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 random bits give a uniform double in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Multiply-shift with rejection to avoid modulo bias.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (n as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo < n {
                // Rare rejection zone; retry if x falls in the biased region.
                let threshold = n.wrapping_neg() % n;
                if lo < threshold {
                    continue;
                }
            }
            return hi;
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.unit_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Fill a byte slice with random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A random byte vector of the given length.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.fill_bytes(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially disjoint");
    }

    #[test]
    fn forks_are_independent_and_deterministic() {
        let root = DetRng::new(7);
        let mut f1 = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = DetRng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn chance_rates_are_plausible() {
        let mut r = DetRng::new(9);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "got {frac}");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = DetRng::new(5);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exp_mean_is_plausible() {
        let mut r = DetRng::new(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exp(3.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "got mean {mean}");
    }

    #[test]
    fn range_inclusive() {
        let mut r = DetRng::new(13);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..2000 {
            let v = r.range(5, 8);
            assert!((5..=8).contains(&v));
            saw_lo |= v == 5;
            saw_hi |= v == 8;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn fill_bytes_fills() {
        let mut r = DetRng::new(17);
        let a = r.bytes(13);
        let b = r.bytes(13);
        assert_eq!(a.len(), 13);
        assert_ne!(a, b);
    }
}
