//! An adversarial **man-in-the-middle node** for robustness campaigns.
//!
//! [`Attacker`] is a two-port bridge: legitimate traffic between its ports
//! is forwarded, and — driven entirely by a [`DetRng`] fork, so campaigns
//! replay exactly — it injects forged segments (blind RST, blind SYN,
//! blind data), replays duplicates, fuzzily mutates wire bytes without
//! re-sealing checksums, and mounts SYN floods from spoofed sources.
//!
//! The simulator knows nothing about TCP wire formats (the dependency
//! points the other way), so the attacker is parameterized by an
//! [`AttackCodec`]: the per-stack knowledge of how to *read* a snooped
//! frame and how to *forge* one. The benchmark crate implements the codec
//! once per stack, which keeps this node — scheduling, probabilities,
//! sequence-guessing skill — identical across victims, exactly what a
//! fair two-stack comparison needs.
//!
//! Topology convention: port 0 faces the connection initiator (client),
//! port 1 faces the listener (server):
//!
//! ```text
//! client ──link── [0] attacker [1] ──link── server
//! ```

use crate::net::{Node, NodeCtx, PortId};
use crate::rng::DetRng;
use crate::time::{Dur, Time};

/// How well the attacker can guess the victim's sequence numbers — the
/// knob RFC 5961 robustness is measured against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqKnowledge {
    /// Omniscient: forged segments carry the exact next expected sequence
    /// (an on-path attacker who parses every byte). Defenses are *meant*
    /// to fail here — an exact RST is indistinguishable from a real one.
    Exact,
    /// Off-by-some: within the receive window but not exact — the best a
    /// blind in-window guesser (classic RST-injection attacker) achieves.
    InWindow,
    /// No idea: uniformly random 32-bit sequence numbers.
    Blind,
}

/// A snooped frame's transport-level summary, extracted by the codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnoopInfo {
    pub src_addr: u32,
    pub src_port: u16,
    pub dst_addr: u32,
    pub dst_port: u16,
    /// The sequence number the *receiver* of this frame will expect next
    /// once it has processed it (seq + payload + SYN/FIN units).
    pub next_seq: u32,
    pub syn: bool,
    pub rst: bool,
}

/// Stack-specific wire knowledge: how to read a frame in flight and how
/// to forge one impersonating a snooped endpoint.
pub trait AttackCodec {
    /// Parse a forwarded frame; `None` when it is not decodable.
    fn snoop(&self, frame: &[u8]) -> Option<SnoopInfo>;
    /// Forge a RST continuing `flow` (same direction) with sequence `seq`.
    fn forge_rst(&self, flow: &SnoopInfo, seq: u32) -> Vec<u8>;
    /// Forge a SYN continuing `flow` (same direction) with ISN `isn`.
    fn forge_syn(&self, flow: &SnoopInfo, isn: u32) -> Vec<u8>;
    /// Forge a data segment continuing `flow` at `seq` carrying `payload`.
    fn forge_data(&self, flow: &SnoopInfo, seq: u32, payload: &[u8]) -> Vec<u8>;
    /// Forge a handshake-opening SYN from an arbitrary (spoofed) source to
    /// a listener — the SYN-flood primitive.
    fn forge_syn_to(
        &self,
        src_addr: u32,
        src_port: u16,
        dst_addr: u32,
        dst_port: u16,
        isn: u32,
    ) -> Vec<u8>;
}

/// What the attacker does, and how often. All probabilities are per
/// forwarded frame; the attack runs only inside `[start, stop)`.
#[derive(Clone, Debug)]
pub struct AttackConfig {
    pub knowledge: SeqKnowledge,
    /// Forge a RST continuing the most recently snooped flow.
    pub rst_rate: f64,
    /// Forge a SYN (random ISN) into the most recently snooped flow.
    pub syn_rate: f64,
    /// Forge a data segment (random payload) into the snooped flow.
    pub data_rate: f64,
    /// Re-send a verbatim copy of the forwarded frame.
    pub replay_rate: f64,
    /// Forward a fuzzily mutated copy *instead of* the original (one bit
    /// flipped, checksum NOT re-sealed: a decoder-robustness probe).
    pub mutate_rate: f64,
    /// SYN-flood burst size per tick toward port 1's listener; 0 = off.
    pub flood_syns: u32,
    /// Interval between flood bursts.
    pub flood_interval: Dur,
    /// Attack window start.
    pub start: Time,
    /// Attack window end; `None` = never stops.
    pub stop: Option<Time>,
}

impl Default for AttackConfig {
    fn default() -> Self {
        AttackConfig {
            knowledge: SeqKnowledge::Blind,
            rst_rate: 0.0,
            syn_rate: 0.0,
            data_rate: 0.0,
            replay_rate: 0.0,
            mutate_rate: 0.0,
            flood_syns: 0,
            flood_interval: Dur::from_millis(100),
            start: Time::ZERO,
            stop: None,
        }
    }
}

/// Attacker-side counters (what was *attempted*; the victims' own stats
/// say what got through).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttackerStats {
    pub forwarded: u64,
    pub replayed: u64,
    pub mutated: u64,
    pub rst_forged: u64,
    pub syn_forged: u64,
    pub data_forged: u64,
    pub flood_syns_sent: u64,
    /// Replies addressed to spoofed flood sources, swallowed (a real
    /// spoofed host never answers, so neither does the bridge).
    pub blackholed: u64,
}

impl AttackerStats {
    /// Everything the attacker put on the wire beyond honest forwarding.
    pub fn forged_total(&self) -> u64 {
        self.replayed
            + self.mutated
            + self.rst_forged
            + self.syn_forged
            + self.data_forged
            + self.flood_syns_sent
    }
}

const FLOOD_TIMER: u64 = 1;
/// Spoofed SYN-flood sources are drawn from this block.
const FLOOD_SRC_BASE: u32 = 0xC600_0000;

/// The man-in-the-middle bridge node. See the module docs for topology.
pub struct Attacker {
    codec: Box<dyn AttackCodec>,
    cfg: AttackConfig,
    rng: DetRng,
    /// Most recent decodable frame seen per inbound port.
    last: [Option<SnoopInfo>; 2],
    /// Listener endpoint behind port 1, learned from client traffic.
    server: Option<(u32, u16)>,
    flood_src_counter: u32,
    flood_armed: bool,
    pub stats: AttackerStats,
}

impl Attacker {
    pub fn new(codec: Box<dyn AttackCodec>, cfg: AttackConfig, rng: DetRng) -> Attacker {
        Attacker {
            codec,
            cfg,
            rng,
            last: [None, None],
            server: None,
            flood_src_counter: 0,
            flood_armed: false,
            stats: AttackerStats::default(),
        }
    }

    fn active(&self, now: Time) -> bool {
        now >= self.cfg.start && self.cfg.stop.is_none_or(|s| now < s)
    }

    /// A forged sequence number at the configured skill level, relative
    /// to the exact value the snooped flow's receiver expects next.
    fn guess_seq(&mut self, flow: &SnoopInfo) -> u32 {
        match self.cfg.knowledge {
            SeqKnowledge::Exact => flow.next_seq,
            SeqKnowledge::InWindow => {
                flow.next_seq.wrapping_add(1 + self.rng.below(32_000) as u32)
            }
            SeqKnowledge::Blind => self.rng.next_u32(),
        }
    }
}

impl Node for Attacker {
    fn on_frame(&mut self, port: PortId, frame: Vec<u8>, ctx: &mut NodeCtx) {
        let out = 1 - port;
        if let Some(info) = self.codec.snoop(&frame) {
            // Replies to spoofed flood sources go nowhere: the hosts the
            // flood impersonates do not exist, so their SYN|ACKs (and any
            // later retransmissions) must never be answered or forwarded.
            if info.dst_addr >= FLOOD_SRC_BASE
                && info.dst_addr < FLOOD_SRC_BASE.wrapping_add(self.flood_src_counter.max(1))
                && self.flood_src_counter > 0
            {
                self.stats.blackholed += 1;
                return;
            }
            if port == 0 {
                self.server = Some((info.dst_addr, info.dst_port));
            }
            self.last[port] = Some(info);
        }
        self.stats.forwarded += 1;
        let active = self.active(ctx.now);

        // Forward — possibly a fuzzily mutated copy instead. Exactly one
        // bit is flipped: a single-bit error always changes exactly one
        // word of a one's-complement checksum, so every mutation MUST be
        // caught by a correct decoder. (Multiple flips can cancel in the
        // checksum — a genuine weakness of the TCP checksum, but not a
        // decoder-robustness property, so not probed here.)
        if active && self.rng.chance(self.cfg.mutate_rate) {
            let mut m = frame.clone();
            if !m.is_empty() {
                let i = self.rng.below(m.len() as u64) as usize;
                m[i] ^= 1 << self.rng.below(8);
            }
            self.stats.mutated += 1;
            ctx.send(out, m);
        } else {
            ctx.send(out, frame.clone());
        }
        if !active {
            return;
        }

        if self.rng.chance(self.cfg.replay_rate) {
            self.stats.replayed += 1;
            ctx.send(out, frame);
        }
        // Forgeries continue the flow just snooped on this port, so they
        // chase the live connection in both directions.
        let Some(flow) = self.last[port] else { return };
        if self.rng.chance(self.cfg.rst_rate) {
            let seq = self.guess_seq(&flow);
            self.stats.rst_forged += 1;
            ctx.send(out, self.codec.forge_rst(&flow, seq));
        }
        if self.rng.chance(self.cfg.syn_rate) {
            let isn = self.rng.next_u32();
            self.stats.syn_forged += 1;
            ctx.send(out, self.codec.forge_syn(&flow, isn));
        }
        if self.rng.chance(self.cfg.data_rate) {
            let seq = self.guess_seq(&flow);
            let len = 1 + self.rng.below(512) as usize;
            let payload = self.rng.bytes(len);
            self.stats.data_forged += 1;
            ctx.send(out, self.codec.forge_data(&flow, seq, &payload));
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx) {
        if token != FLOOD_TIMER || self.cfg.flood_syns == 0 {
            return;
        }
        if self.active(ctx.now) {
            if let Some((addr, dst_port)) = self.server {
                for _ in 0..self.cfg.flood_syns {
                    let src = FLOOD_SRC_BASE + self.flood_src_counter;
                    self.flood_src_counter = self.flood_src_counter.wrapping_add(1);
                    let isn = self.rng.next_u32();
                    let syn = self.codec.forge_syn_to(src, 40_000, addr, dst_port, isn);
                    self.stats.flood_syns_sent += 1;
                    ctx.send(1, syn);
                }
            }
        }
        if self.cfg.stop.is_none_or(|s| ctx.now < s) {
            ctx.arm_in(self.cfg.flood_interval, FLOOD_TIMER);
        }
    }

    fn poll(&mut self, ctx: &mut NodeCtx) {
        // Arm the flood clock exactly once, at the first poll.
        if self.cfg.flood_syns > 0 && !self.flood_armed {
            self.flood_armed = true;
            let at = self.cfg.start.max(Time::ZERO + self.cfg.flood_interval);
            ctx.arm_at(at, FLOOD_TIMER);
        }
    }
}
