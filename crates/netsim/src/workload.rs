//! Deterministic workload shapes for overload experiments.
//!
//! Open-loop load (arrivals keep coming regardless of completions) is
//! what separates graceful degradation from a goodput cliff: a closed
//! loop self-throttles when the server slows down, an open loop does
//! not. [`OpenLoopArrivals`] is a fixed arrival schedule; [`ReadBudget`]
//! is a byte-rate limiter used to model deliberately slow readers
//! (slowloris clients that accept data at a trickle so the server's
//! buffers stay pinned).

use crate::time::{Dur, Time};

/// A deterministic open-loop arrival schedule: `count` arrivals spaced
/// `interval` apart starting at `start`. Poll it with the current time
/// to learn how many arrivals are due; they are due whether or not
/// earlier work finished — that is the point.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopArrivals {
    start: Time,
    interval: Dur,
    count: u64,
    issued: u64,
}

impl OpenLoopArrivals {
    pub fn new(start: Time, interval: Dur, count: u64) -> Self {
        OpenLoopArrivals { start, interval, count, issued: 0 }
    }

    /// Arrivals due at `now` that have not yet been handed out. The
    /// caller performs one "arrival" (e.g. one connect) per unit.
    pub fn poll(&mut self, now: Time) -> u64 {
        if self.issued >= self.count || now < self.start {
            return 0;
        }
        let elapsed = now.since(self.start);
        let due = if self.interval == Dur::ZERO {
            self.count
        } else {
            (elapsed.0 / self.interval.0) + 1
        };
        let due = due.min(self.count);
        let fresh = due.saturating_sub(self.issued);
        self.issued = due;
        fresh
    }

    /// When the next arrival is due (`None` once exhausted).
    pub fn next_deadline(&self) -> Option<Time> {
        if self.issued >= self.count {
            return None;
        }
        Some(self.start + Dur(self.interval.0.saturating_mul(self.issued)))
    }

    pub fn remaining(&self) -> u64 {
        self.count - self.issued
    }
}

/// Deterministic heavy-tailed flow sizes: a bounded "octave Pareto".
///
/// `size(i)` is a pure function of `(seed, i)`: a splitmix64-style hash
/// picks an octave `k` with `P(k) = 2^-(k+1)` and the size is
/// `min << k`, clamped to `max` — so `P(size ≥ min·2^k) = 2^-k`, a
/// discrete Pareto tail. Most flows are mice, a thin tail are elephants:
/// the canonical internet flow-size mix, without any shared sampler
/// state (shards and clients can sample in any order and still agree).
#[derive(Clone, Copy, Debug)]
pub struct HeavyTailed {
    seed: u64,
    min: u64,
    max: u64,
}

impl HeavyTailed {
    /// Sizes in `[min, max]`; `min ≥ 1`, `max ≥ min`.
    pub fn new(seed: u64, min: u64, max: u64) -> Self {
        assert!(min >= 1 && max >= min, "need 1 <= min <= max");
        HeavyTailed { seed, min, max }
    }

    fn hash(&self, i: u64) -> u64 {
        let mut z = self.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Flow size for index `i`.
    pub fn size(&self, i: u64) -> u64 {
        let k = self.hash(i).trailing_zeros();
        self.min.checked_shl(k).map_or(self.max, |v| v.min(self.max))
    }

    /// An independent uniform pick in `[0, n)` for index `i` — a second
    /// per-flow stream from the same seed (e.g. an RTT-class choice).
    pub fn pick(&self, i: u64, n: u64) -> u64 {
        assert!(n > 0);
        self.hash(i ^ 0xD1B5_4A32_D192_ED03) % n
    }
}

/// A token-bucket byte budget for modelling slow readers: `rate` bytes
/// per second, bursting to at most `burst` bytes. A slowloris client
/// wraps its `recv` in one of these so the server's send buffer drains
/// at a trickle.
#[derive(Clone, Copy, Debug)]
pub struct ReadBudget {
    /// Bytes per second granted.
    rate: u64,
    /// Token cap.
    burst: u64,
    tokens: u64,
    last_refill: Time,
}

impl ReadBudget {
    pub fn new(start: Time, rate: u64, burst: u64) -> Self {
        ReadBudget { rate, burst, tokens: burst, last_refill: start }
    }

    /// Refill for elapsed time and return the bytes currently allowed.
    pub fn grant(&mut self, now: Time) -> u64 {
        if now > self.last_refill {
            let elapsed = now.since(self.last_refill);
            let earned = elapsed.0.saturating_mul(self.rate) / 1_000_000_000;
            if earned > 0 {
                self.tokens = (self.tokens + earned).min(self.burst);
                self.last_refill = now;
            }
        }
        self.tokens
    }

    /// Spend `n` bytes of the current grant.
    pub fn consume(&mut self, n: u64) {
        self.tokens = self.tokens.saturating_sub(n);
    }

    /// When a depleted budget will next have at least one byte.
    pub fn next_refill(&self, now: Time) -> Option<Time> {
        if self.tokens > 0 || self.rate == 0 {
            return None;
        }
        let wait = 1_000_000_000u64.div_ceil(self.rate);
        Some(now.max(self.last_refill) + Dur(wait))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_arrivals_are_due_on_schedule() {
        let t0 = Time::ZERO;
        let mut a = OpenLoopArrivals::new(t0, Dur::from_millis(10), 5);
        assert_eq!(a.poll(t0), 1, "first arrival at start");
        assert_eq!(a.poll(t0), 0, "no double issue");
        assert_eq!(a.next_deadline(), Some(t0 + Dur::from_millis(10)));
        assert_eq!(a.poll(t0 + Dur::from_millis(25)), 2, "catches up");
        assert_eq!(a.poll(t0 + Dur::from_secs(10)), 2, "capped at count");
        assert_eq!(a.next_deadline(), None);
        assert_eq!(a.remaining(), 0);
    }

    #[test]
    fn arrivals_do_not_wait_for_completions() {
        // Open loop: polling late yields every missed arrival at once.
        let mut a = OpenLoopArrivals::new(Time::ZERO, Dur::from_millis(1), 100);
        assert_eq!(a.poll(Time::ZERO + Dur::from_secs(1)), 100);
    }

    #[test]
    fn read_budget_trickles() {
        let t0 = Time::ZERO;
        let mut b = ReadBudget::new(t0, 1000, 100);
        assert_eq!(b.grant(t0), 100, "starts with a full burst");
        b.consume(100);
        assert_eq!(b.grant(t0), 0);
        let t1 = t0 + Dur::from_millis(50);
        assert_eq!(b.grant(t1), 50, "1000 B/s for 50 ms");
        b.consume(50);
        assert_eq!(b.next_refill(t1), Some(t1 + Dur(1_000_000)));
        let t2 = t0 + Dur::from_secs(60);
        assert_eq!(b.grant(t2), 100, "refill is capped at the burst");
    }

    #[test]
    fn heavy_tail_is_bounded_and_heavy() {
        let ht = HeavyTailed::new(42, 256, 1 << 20);
        let n = 20_000u64;
        let sizes: Vec<u64> = (0..n).map(|i| ht.size(i)).collect();
        assert!(sizes.iter().all(|&s| (256..=1 << 20).contains(&s)));
        // P(size = min) = 1/2, P(size >= min * 16) = 1/16.
        let mice = sizes.iter().filter(|&&s| s == 256).count() as u64;
        assert!((n * 4 / 10..=n * 6 / 10).contains(&mice), "mice: {mice}/{n}");
        let elephants = sizes.iter().filter(|&&s| s >= 256 * 16).count() as u64;
        assert!(
            (n / 32..=n / 8).contains(&elephants),
            "elephants: {elephants}/{n}"
        );
        // Stateless: re-sampling any index agrees.
        assert_eq!(ht.size(17), ht.size(17));
        assert_eq!(HeavyTailed::new(42, 256, 1 << 20).size(17), ht.size(17));
    }

    #[test]
    fn heavy_tail_pick_is_uniform_ish() {
        let ht = HeavyTailed::new(7, 1, 2);
        let mut buckets = [0u64; 8];
        for i in 0..8_000 {
            buckets[ht.pick(i, 8) as usize] += 1;
        }
        for (k, &b) in buckets.iter().enumerate() {
            assert!((700..=1300).contains(&b), "bucket {k}: {b}");
        }
    }

    #[test]
    fn zero_rate_budget_never_refills() {
        let mut b = ReadBudget::new(Time::ZERO, 0, 10);
        b.consume(10);
        assert_eq!(b.grant(Time::ZERO + Dur::from_secs(100)), 0);
        assert_eq!(b.next_refill(Time::ZERO), None, "no refill to wait for");
    }
}
