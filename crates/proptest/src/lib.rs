//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment for this workspace has no network access, so the
//! real crates-io `proptest` cannot be resolved. This crate implements the
//! (small) subset of its API that the workspace's property tests use, with
//! the same call syntax, so the tests compile unchanged:
//!
//! * the [`proptest!`] macro with `name in strategy` and `name: Type`
//!   argument forms;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: integer ranges (`0u8..32`, `1usize..=8`),
//!   `num::<ty>::ANY`, `bool::ANY`, `collection::vec`, `option::of`, and
//!   tuples of strategies.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its generated input verbatim), and a fixed deterministic seed per case
//! index, so failures reproduce exactly across runs. The case count
//! defaults to 64 and can be raised via `PROPTEST_CASES`.

use std::fmt::Debug;
use std::marker::PhantomData;

/// Deterministic splitmix64 generator driving all value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u128) -> u128 {
        assert!(n > 0);
        // 128 random bits mod n; the modulo bias is irrelevant for testing.
        let hi = self.next_u64() as u128;
        let lo = self.next_u64() as u128;
        ((hi << 64) | lo) % n
    }
}

/// A generator of random values (the real crate's `Strategy`, minus
/// shrinking). `Value` is not bound by `Debug` because std tuples above
/// arity 12 aren't; the [`proptest!`] macro renders inputs per-argument
/// instead.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Types with a natural "any value" strategy (`name: Type` arguments).
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy generating any value of `T` (see [`any`]).
pub struct AnyOf<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy behind `name: Type` macro arguments.
pub fn any<T: Arbitrary>() -> AnyOf<T> {
    AnyOf(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! any_mod {
    ($($m:ident => $t:ty),*) => {$(
        pub mod $m {
            /// `ANY`'s strategy type for this primitive.
            pub struct Any;
            pub const ANY: Any = Any;
            impl crate::Strategy for Any {
                type Value = $t;
                fn generate(&self, rng: &mut crate::TestRng) -> $t {
                    <$t as crate::Arbitrary>::arbitrary(rng)
                }
            }
        }
    )*};
}

/// `proptest::num::<ty>::ANY` equivalents.
pub mod num {
    any_mod!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
             i8 => i8, i16 => i16, i32 => i32, i64 => i64, isize => isize);
}

// `proptest::bool::ANY`.
any_mod!(bool => bool);

pub mod collection {
    use super::{Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `None` about a quarter of the time, otherwise `Some` of the inner
    /// strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A0) (A0, A1) (A0, A1, A2) (A0, A1, A2, A3) (A0, A1, A2, A3, A4)
    (A0, A1, A2, A3, A4, A5) (A0, A1, A2, A3, A4, A5, A6)
    (A0, A1, A2, A3, A4, A5, A6, A7)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15, A16)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15, A16, A17)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15, A16, A17, A18)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15, A16, A17, A18, A19)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15, A16, A17, A18, A19, A20)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15, A16, A17, A18, A19, A20, A21)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15, A16, A17, A18, A19, A20, A21, A22)
    (A0, A1, A2, A3, A4, A5, A6, A7, A8, A9, A10, A11, A12, A13, A14, A15, A16, A17, A18, A19, A20, A21, A22, A23)
}

/// Number of cases per property (env `PROPTEST_CASES`, default 64).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Drive one property: generate `case_count()` inputs and run the body on
/// each. Called by the [`proptest!`] macro expansion, not directly.
pub fn run_cases<S: Strategy>(strat: S, body: impl Fn(S::Value) -> Result<(), String>) {
    for case in 0..case_count() {
        let mut rng = TestRng::new(0x5eed_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let value = strat.generate(&mut rng);
        if let Err(msg) = body(value) {
            panic!("property failed on case {case}: {msg}");
        }
    }
}

/// The `proptest!` macro: wraps each `fn` in a case-generation loop.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::__prop_case!([$(#[$meta])*] $name, [] [$($args)*] $body);
        $crate::proptest!($($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_case {
    // All arguments parsed: emit the test function.
    ([$($meta:tt)*] $name:ident, [$(($pat:ident, $strat:expr))*] [] $body:block) => {
        $($meta)*
        fn $name() {
            $crate::run_cases(($($strat,)*), |($($pat,)*)| {
                let mut __inputs = ::std::string::String::new();
                $(__inputs.push_str(&::std::format!(
                    "{} = {:?}; ", ::std::stringify!($pat), &$pat));)*
                let __inner = move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __inner().map_err(|e| ::std::format!("{e}\n    inputs: {__inputs}"))
            });
        }
    };
    // `name in strategy` argument, more to come.
    ([$($meta:tt)*] $name:ident, [$($done:tt)*] [$p:ident in $e:expr, $($rest:tt)*] $body:block) => {
        $crate::__prop_case!([$($meta)*] $name, [$($done)* ($p, $e)] [$($rest)*] $body);
    };
    // `name in strategy` argument, last, no trailing comma.
    ([$($meta:tt)*] $name:ident, [$($done:tt)*] [$p:ident in $e:expr] $body:block) => {
        $crate::__prop_case!([$($meta)*] $name, [$($done)* ($p, $e)] [] $body);
    };
    // `name: Type` argument, more to come.
    ([$($meta:tt)*] $name:ident, [$($done:tt)*] [$p:ident : $t:ty, $($rest:tt)*] $body:block) => {
        $crate::__prop_case!([$($meta)*] $name, [$($done)* ($p, $crate::any::<$t>())] [$($rest)*] $body);
    };
    // `name: Type` argument, last, no trailing comma.
    ([$($meta:tt)*] $name:ident, [$($done:tt)*] [$p:ident : $t:ty] $body:block) => {
        $crate::__prop_case!([$($meta)*] $name, [$($done)* ($p, $crate::any::<$t>())] [] $body);
    };
}

/// Assert inside a property body; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return ::std::result::Result::Err(
                format!("assertion failed: {l:?} != {r:?}"));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if l != r {
            return ::std::result::Result::Err(
                format!("assertion failed: {l:?} != {r:?} ({})", format!($($fmt)+)));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let w = (0usize..=2).generate(&mut rng);
            assert!(w <= 2);
            let s = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            let v = collection::vec(num::u8::ANY, 1..9).generate(&mut rng);
            assert!((1..9).contains(&v.len()));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = TestRng::new(3);
        let vals: Vec<Option<u8>> =
            (0..100).map(|_| option::of(num::u8::ANY).generate(&mut rng)).collect();
        assert!(vals.iter().any(Option::is_none));
        assert!(vals.iter().any(Option::is_some));
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = |seed| {
            let mut rng = TestRng::new(seed);
            collection::vec((num::u32::ANY, 0u8..=32), 0..40).generate(&mut rng)
        };
        assert_eq!(gen(9), gen(9));
        assert_ne!(gen(9), gen(10));
    }

    proptest! {
        #[test]
        fn macro_mixed_arg_forms(
            x: u16,
            n in 1usize..4,
            data in collection::vec(bool::ANY, 0..10),
        ) {
            prop_assert!((1..4).contains(&n));
            prop_assert_eq!(x, x, "x must equal itself, n={}", n);
            prop_assert!(data.len() < 10);
        }

        #[test]
        fn macro_single_arg(v in collection::vec(num::u8::ANY, 0..5)) {
            prop_assert!(v.len() < 5);
        }
    }
}
