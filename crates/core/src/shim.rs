//! The **shim sublayer** (§3.1): native Figure-6 header ↔ RFC 793.
//!
//! "Adding a shim sublayer that converts the sublayered header in Figure 6
//! to a standard TCP header, together with replicating all existing TCP
//! functionality in some sublayer, should allow interoperability." This
//! module is that shim: a *stateless* bidirectional translation, possible
//! precisely because the two headers are isomorphic — every RFC 793 field
//! has a home in some sublayer's bits:
//!
//! | RFC 793 field | native home |
//! |---|---|
//! | ports | DM |
//! | SYN/FIN/RST flags | CM flags |
//! | ISNs | CM `isn`/`ack_isn` (redundant after handshake) |
//! | seq / ack | RD |
//! | window | OSR `rcv_wnd` |
//! | (SACK has no RFC 793 home) | RD — dropped by the shim |
//!
//! [`ShimStack`] wraps an [`SlTcpStack`] so it speaks RFC 793 on the wire;
//! experiment E7 runs it against the monolithic `tcp-mono` stack in both
//! directions.

use crate::stack::SlTcpStack;
use crate::wire::Packet;
use netsim::{Stack, Time};
use tcp_mono::wire::{Segment, ACK, FIN, PSH, RST, SYN};

/// Default MSS advertised on translated SYNs (both stacks use 1000).
const MSS: u16 = crate::osr::MSS as u16;

/// Translate one native packet to an RFC 793 segment.
pub fn to_rfc793(pkt: &Packet) -> Segment {
    let mut flags = 0u8;
    let (seq, ack, has_ack);
    if pkt.cm.flags.syn {
        flags |= SYN;
        // A SYN's sequence number is the ISN itself (it consumes it).
        seq = pkt.cm.isn;
        if pkt.cm.flags.cm_ack {
            has_ack = true;
            ack = pkt.cm.ack_isn.wrapping_add(1);
        } else {
            has_ack = false;
            ack = 0;
        }
    } else {
        seq = pkt.rd.seq;
        has_ack = pkt.rd.has_ack;
        ack = pkt.rd.ack;
    }
    if has_ack {
        flags |= ACK;
    }
    if pkt.cm.flags.fin {
        flags |= FIN;
    }
    if pkt.cm.flags.rst {
        flags |= RST;
    }
    if !pkt.payload.is_empty() {
        flags |= PSH;
    }
    Segment {
        src: pkt.src(),
        dst: pkt.dst(),
        seq,
        ack,
        flags,
        wnd: pkt.osr.rcv_wnd,
        mss: pkt.cm.flags.syn.then_some(MSS),
        payload: pkt.payload.clone(),
    }
}

/// Translate one RFC 793 segment to a native packet.
pub fn from_rfc793(seg: &Segment) -> Packet {
    let mut pkt = Packet {
        src_addr: seg.src.addr,
        dst_addr: seg.dst.addr,
        ..Default::default()
    };
    pkt.dm.src_port = seg.src.port;
    pkt.dm.dst_port = seg.dst.port;
    pkt.cm.flags.fin = seg.fin();
    pkt.cm.flags.rst = seg.rst();
    if seg.syn() {
        pkt.cm.flags.syn = true;
        pkt.cm.isn = seg.seq;
        if seg.ack_flag() {
            pkt.cm.flags.cm_ack = true;
            pkt.cm.ack_isn = seg.ack.wrapping_sub(1);
        }
    }
    pkt.rd.seq = seg.seq;
    pkt.rd.has_ack = seg.ack_flag();
    pkt.rd.ack = seg.ack;
    pkt.osr.rcv_wnd = seg.wnd;
    pkt.payload = seg.payload.clone();
    pkt
}

/// A sublayered stack speaking RFC 793 on the wire via the shim.
pub struct ShimStack {
    /// The wrapped native stack; the application drives it directly.
    pub inner: SlTcpStack,
    /// Translation counters.
    pub translated_tx: u64,
    pub translated_rx: u64,
    pub untranslatable_rx: u64,
}

impl ShimStack {
    pub fn new(inner: SlTcpStack) -> ShimStack {
        ShimStack { inner, translated_tx: 0, translated_rx: 0, untranslatable_rx: 0 }
    }
}

impl Stack for ShimStack {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        match Segment::decode(frame) {
            Ok(seg) => {
                self.translated_rx += 1;
                let pkt = from_rfc793(&seg);
                self.inner.on_frame(now, &pkt.encode());
            }
            Err(_) => self.untranslatable_rx += 1,
        }
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        let native = self.inner.poll_transmit(now)?;
        let pkt = Packet::decode(&native).expect("inner stack emits valid native packets");
        self.translated_tx += 1;
        Some(to_rfc793(&pkt).encode())
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        self.inner.poll_deadline(now)
    }

    fn on_tick(&mut self, now: Time) {
        self.inner.on_tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dm::ConnId;
    use crate::stack::SlConfig;
    use netsim::{two_party, Dur, FaultProfile, LinkParams, SimNet, StackNode};
    use tcp_mono::stack::TcpStack;
    use tcp_mono::wire::Endpoint;
    use tcp_mono::TcpState;

    const A: u32 = 0x0A000001;
    const B: u32 = 0x0A000002;

    fn run_for(net: &mut SimNet, d: Dur) {
        let deadline = net.now() + d;
        net.run_until(deadline);
    }

    #[test]
    fn translation_round_trips_where_isomorphic() {
        // native -> 793 -> native preserves the fields RFC 793 can carry.
        let mut pkt = Packet { src_addr: A, dst_addr: B, ..Packet::default() };
        pkt.dm.src_port = 5000;
        pkt.dm.dst_port = 80;
        pkt.rd.seq = 12345;
        pkt.rd.ack = 67890;
        pkt.rd.has_ack = true;
        pkt.osr.rcv_wnd = 4096;
        pkt.payload = b"data".to_vec();
        let back = from_rfc793(&to_rfc793(&pkt));
        assert_eq!(back.dm, pkt.dm);
        assert_eq!(back.rd.seq, pkt.rd.seq);
        assert_eq!(back.rd.ack, pkt.rd.ack);
        assert_eq!(back.osr.rcv_wnd, pkt.osr.rcv_wnd);
        assert_eq!(back.payload, pkt.payload);
    }

    #[test]
    fn syn_translation_carries_isn() {
        let mut pkt = Packet::default();
        pkt.cm.flags.syn = true;
        pkt.cm.isn = 999;
        let seg = to_rfc793(&pkt);
        assert!(seg.syn());
        assert_eq!(seg.seq, 999);
        assert_eq!(seg.mss, Some(1000));
        let back = from_rfc793(&seg);
        assert!(back.cm.flags.syn);
        assert_eq!(back.cm.isn, 999);
    }

    #[test]
    fn synack_translation_shifts_ack_by_one() {
        let mut pkt = Packet::default();
        pkt.cm.flags.syn = true;
        pkt.cm.flags.cm_ack = true;
        pkt.cm.isn = 200;
        pkt.cm.ack_isn = 100;
        let seg = to_rfc793(&pkt);
        assert_eq!(seg.ack, 101, "TCP acks ISN+1");
        let back = from_rfc793(&seg);
        assert_eq!(back.cm.ack_isn, 100);
    }

    /// Full interop: sublayered client (via shim) <-> monolithic server.
    fn sub_client_mono_server(seed: u64, fault: FaultProfile) {
        let mut client =
            ShimStack::new(SlTcpStack::new(A, SlConfig::default(), slmetrics::shared()));
        let mut server = TcpStack::new(B, slmetrics::shared());
        server.listen(80);
        let conn = client.inner.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
        let params = LinkParams::delay_only(Dur::from_millis(5)).with_fault(fault);
        let (mut net, nc, ns) = two_party(seed, client, server, params);
        net.poll_all();
        run_for(&mut net, Dur::from_secs(3));

        // Handshake completed on both sides.
        {
            let c = &net.node::<StackNode<ShimStack>>(nc).stack;
            assert_eq!(c.inner.state(conn), crate::cm::CmState::Established);
        }
        let sconn = net.node::<StackNode<TcpStack>>(ns).stack.established()[0];

        // Sublayered -> monolithic data.
        let up: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        net.node_mut::<StackNode<ShimStack>>(nc).stack.inner.send(conn, &up);
        // Monolithic -> sublayered data.
        let down: Vec<u8> = (0..15_000u32).map(|i| (i % 13) as u8).collect();
        net.node_mut::<StackNode<TcpStack>>(ns).stack.send(sconn, &down);
        net.poll_all();

        let mut got_up = Vec::new();
        let mut got_down = Vec::new();
        for _ in 0..120 {
            run_for(&mut net, Dur::from_secs(1));
            got_up.extend(net.node_mut::<StackNode<TcpStack>>(ns).stack.recv(sconn));
            got_down
                .extend(net.node_mut::<StackNode<ShimStack>>(nc).stack.inner.recv(conn));
            net.poll_all();
            if got_up.len() >= up.len() && got_down.len() >= down.len() {
                break;
            }
        }
        assert_eq!(got_up, up, "sublayered->monolithic direction");
        assert_eq!(got_down, down, "monolithic->sublayered direction");

        // Close initiated from the sublayered side completes the TCP
        // close handshake on the monolithic side.
        net.node_mut::<StackNode<ShimStack>>(nc).stack.inner.close(conn);
        net.poll_all();
        run_for(&mut net, Dur::from_secs(3));
        assert_eq!(
            net.node::<StackNode<TcpStack>>(ns).stack.state(sconn),
            TcpState::CloseWait,
            "monolithic server saw the translated FIN"
        );
        net.node_mut::<StackNode<TcpStack>>(ns).stack.close(sconn);
        net.poll_all();
        run_for(&mut net, Dur::from_secs(3));
        assert_eq!(
            net.node::<StackNode<TcpStack>>(ns).stack.state(sconn),
            TcpState::Closed
        );
    }

    #[test]
    fn interop_sublayered_client_monolithic_server_clean() {
        sub_client_mono_server(1, FaultProfile::none());
    }

    #[test]
    fn interop_sublayered_client_monolithic_server_lossy() {
        sub_client_mono_server(2, FaultProfile::lossy(0.08));
    }

    /// Full interop: monolithic client <-> sublayered server (via shim).
    #[test]
    fn interop_monolithic_client_sublayered_server() {
        let mut client = TcpStack::new(A, slmetrics::shared());
        let mut server =
            ShimStack::new(SlTcpStack::new(B, SlConfig::default(), slmetrics::shared()));
        server.inner.listen(80);
        let conn = client.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
        let (mut net, nc, ns) = two_party(
            3,
            client,
            server,
            LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile::lossy(0.05)),
        );
        net.poll_all();
        run_for(&mut net, Dur::from_secs(3));
        assert_eq!(
            net.node::<StackNode<TcpStack>>(nc).stack.state(conn),
            TcpState::Established
        );
        let sconn: ConnId = net.node::<StackNode<ShimStack>>(ns).stack.inner.established()[0];

        let data: Vec<u8> = (0..25_000u32).map(|i| (i % 201) as u8).collect();
        net.node_mut::<StackNode<TcpStack>>(nc).stack.send(conn, &data);
        net.poll_all();
        let mut got = Vec::new();
        for _ in 0..120 {
            run_for(&mut net, Dur::from_secs(1));
            got.extend(net.node_mut::<StackNode<ShimStack>>(ns).stack.inner.recv(sconn));
            net.poll_all();
            if got.len() >= data.len() {
                break;
            }
        }
        assert_eq!(got, data);
    }

    #[test]
    fn shim_counts_translations() {
        let mut client =
            ShimStack::new(SlTcpStack::new(A, SlConfig::default(), slmetrics::shared()));
        let mut server = TcpStack::new(B, slmetrics::shared());
        server.listen(80);
        client.inner.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
        let (mut net, nc, _ns) =
            two_party(4, client, server, LinkParams::delay_only(Dur::from_millis(5)));
        net.poll_all();
        run_for(&mut net, Dur::from_secs(2));
        let c = &net.node::<StackNode<ShimStack>>(nc).stack;
        assert!(c.translated_tx >= 2, "SYN + handshake ack");
        assert!(c.translated_rx >= 1, "SYN-ACK");
    }
}
