//! The native sublayered header (paper Figure 6).
//!
//! "The header as shown bears no resemblance to the standard TCP header in
//! order to clearly separate sublayers" — each sublayer owns a distinct
//! group of bits (test **T3**), laid out bottom-up on the wire:
//!
//! ```text
//! | DM: src_port, dst_port          |  demultiplexing
//! | CM: flags, isn, ack_isn         |  connection management
//! | RD: seq, ack, sack ranges       |  reliable delivery
//! | OSR: ecn, rcv_wnd               |  ordering/segmenting/rate control
//! | payload ...                     |
//! ```
//!
//! The format is *isomorphic* to RFC 793 (the paper's §3.1 claim): every
//! field of the standard header appears here and vice versa (the ISNs are
//! redundant but static after the handshake). [`crate::shim`] performs the
//! translation in both directions, which is what makes interoperation with
//! the monolithic stack possible (experiment E7).

pub use tcp_mono::wire::{Endpoint, FourTuple, WireError, MAX_FRAME_BYTES};

/// Demultiplexing subheader — the only bits DM may touch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct DmHeader {
    pub src_port: u16,
    pub dst_port: u16,
}

/// Connection-management flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CmFlags {
    pub syn: bool,
    pub fin: bool,
    pub rst: bool,
    /// Acknowledges the peer's SYN (handshake progress) or FIN.
    pub cm_ack: bool,
}

/// Connection-management subheader — SYN/FIN/RST plus the ISN pair.
/// "The main service it provides is to establish a pair of Initial
/// Sequence Numbers."
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CmHeader {
    pub flags: CmFlags,
    /// Sender's ISN (static after the handshake; redundancy acknowledged
    /// by the paper).
    pub isn: u32,
    /// Echo of the peer's ISN (handshake confirmation).
    pub ack_isn: u32,
}

/// One SACK range `[start, end)` in absolute sequence numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SackRange {
    pub start: u32,
    pub end: u32,
}

/// Reliable-delivery subheader: sequence/ack numbers and SACK — all
/// retransmission mechanics live here and nowhere else.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RdHeader {
    /// Absolute sequence number of the first payload byte.
    pub seq: u32,
    /// Cumulative acknowledgment: next expected sequence.
    pub ack: u32,
    /// Is the ack field meaningful?
    pub has_ack: bool,
    /// Up to two selective-ack ranges (RD-private, invisible to other
    /// sublayers; dropped by the shim since bare RFC 793 has no SACK).
    pub sack: Vec<SackRange>,
}

/// OSR subheader: congestion/flow-control signals available to OSR via its
/// own bits (test **T3**): ECN echo and the receiver window.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct OsrHeader {
    /// Explicit congestion notification echo.
    pub ecn_echo: bool,
    /// Receiver window (flow control).
    pub rcv_wnd: u16,
}

/// A full native packet: network addresses + the four subheaders +
/// payload.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Packet {
    pub src_addr: u32,
    pub dst_addr: u32,
    pub dm: DmHeader,
    pub cm: CmHeader,
    pub rd: RdHeader,
    pub osr: OsrHeader,
    pub payload: Vec<u8>,
}

/// Magic discriminating native sublayered packets from RFC 793 traffic on
/// the same simulated network.
const MAGIC: u8 = 0x5B; // "SubLayered"

impl Packet {
    pub fn src(&self) -> Endpoint {
        Endpoint::new(self.src_addr, self.dm.src_port)
    }

    pub fn dst(&self) -> Endpoint {
        Endpoint::new(self.dst_addr, self.dm.dst_port)
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(34 + self.payload.len());
        out.push(MAGIC);
        out.extend_from_slice(&self.src_addr.to_be_bytes());
        out.extend_from_slice(&self.dst_addr.to_be_bytes());
        // DM
        out.extend_from_slice(&self.dm.src_port.to_be_bytes());
        out.extend_from_slice(&self.dm.dst_port.to_be_bytes());
        // CM
        let f = &self.cm.flags;
        out.push(
            (f.syn as u8) | (f.fin as u8) << 1 | (f.rst as u8) << 2 | (f.cm_ack as u8) << 3,
        );
        out.extend_from_slice(&self.cm.isn.to_be_bytes());
        out.extend_from_slice(&self.cm.ack_isn.to_be_bytes());
        // RD. The header's 2-bit count carries at most two SACK ranges;
        // clamp rather than let a longer vector silently alias the count
        // bits in release builds.
        out.extend_from_slice(&self.rd.seq.to_be_bytes());
        out.extend_from_slice(&self.rd.ack.to_be_bytes());
        let n_sack = self.rd.sack.len().min(2);
        out.push((self.rd.has_ack as u8) | (n_sack as u8) << 1);
        for r in self.rd.sack.iter().take(n_sack) {
            out.extend_from_slice(&r.start.to_be_bytes());
            out.extend_from_slice(&r.end.to_be_bytes());
        }
        // OSR
        out.push(self.osr.ecn_echo as u8);
        out.extend_from_slice(&self.osr.rcv_wnd.to_be_bytes());
        // payload, checksummed for parity with the monolithic stack
        out.extend_from_slice(&self.payload);
        let csum = tcp_mono::wire::checksum(self.src_addr, self.dst_addr, &out[9..]);
        out.insert(9, (csum >> 8) as u8);
        out.insert(10, csum as u8);
        out
    }

    /// Parse and verify; a typed [`WireError`] for anything malformed.
    /// Arbitrary hostile bytes must classify — never panic, never
    /// mis-parse into a structurally valid packet.
    pub fn decode(bytes: &[u8]) -> Result<Packet, WireError> {
        if bytes.first() != Some(&MAGIC) {
            return Err(WireError::BadMagic);
        }
        if bytes.len() < 36 {
            return Err(WireError::Truncated { need: 36, got: bytes.len() });
        }
        if bytes.len() > MAX_FRAME_BYTES {
            return Err(WireError::Oversized { limit: MAX_FRAME_BYTES, got: bytes.len() });
        }
        let src_addr = u32::from_be_bytes(bytes[1..5].try_into().unwrap());
        let dst_addr = u32::from_be_bytes(bytes[5..9].try_into().unwrap());
        let csum = u16::from_be_bytes([bytes[9], bytes[10]]);
        if tcp_mono::wire::checksum(src_addr, dst_addr, &bytes[11..]) != csum {
            return Err(WireError::BadChecksum);
        }
        let b = &bytes[11..];
        let mut i = 0;
        let u16_at = |i: &mut usize| {
            let v = u16::from_be_bytes([b[*i], b[*i + 1]]);
            *i += 2;
            v
        };
        let src_port = u16_at(&mut i);
        let dst_port = u16_at(&mut i);
        let u32_at = |i: &mut usize| {
            let v = u32::from_be_bytes([b[*i], b[*i + 1], b[*i + 2], b[*i + 3]]);
            *i += 4;
            v
        };
        let fbyte = b[i];
        i += 1;
        let flags = CmFlags {
            syn: fbyte & 1 != 0,
            fin: fbyte & 2 != 0,
            rst: fbyte & 4 != 0,
            cm_ack: fbyte & 8 != 0,
        };
        let isn = u32_at(&mut i);
        let ack_isn = u32_at(&mut i);
        let seq = u32_at(&mut i);
        let ack = u32_at(&mut i);
        let rdb = b[i];
        i += 1;
        let has_ack = rdb & 1 != 0;
        let n_sack = ((rdb >> 1) & 0x3) as usize;
        if n_sack > 2 {
            return Err(WireError::BadSackCount);
        }
        if b.len() < i + n_sack * 8 + 3 {
            return Err(WireError::Truncated { need: 11 + i + n_sack * 8 + 3, got: bytes.len() });
        }
        let mut sack = Vec::with_capacity(n_sack);
        for _ in 0..n_sack {
            let start = u32_at(&mut i);
            let end = u32_at(&mut i);
            sack.push(SackRange { start, end });
        }
        let ecn_echo = b[i] != 0;
        i += 1;
        let rcv_wnd = u16::from_be_bytes([b[i], b[i + 1]]);
        i += 2;
        Ok(Packet {
            src_addr,
            dst_addr,
            dm: DmHeader { src_port, dst_port },
            cm: CmHeader { flags, isn, ack_isn },
            rd: RdHeader { seq, ack, has_ack, sack },
            osr: OsrHeader { ecn_echo, rcv_wnd },
            payload: b[i..].to_vec(),
        })
    }

    /// Render the packet as one line per sublayer — the paper's pedagogy
    /// claim ("sublayering has obvious pedagogic advantages in teaching")
    /// made tangible: every header bit is attributed to its owner.
    pub fn describe(&self) -> String {
        let f = &self.cm.flags;
        let mut flags = String::new();
        for (on, c) in [(f.syn, "SYN"), (f.fin, "FIN"), (f.rst, "RST"), (f.cm_ack, "CMACK")] {
            if on {
                if !flags.is_empty() {
                    flags.push('|');
                }
                flags.push_str(c);
            }
        }
        if flags.is_empty() {
            flags.push('-');
        }
        let sack = if self.rd.sack.is_empty() {
            String::new()
        } else {
            format!(
                " sack={:?}",
                self.rd.sack.iter().map(|r| (r.start, r.end)).collect::<Vec<_>>()
            )
        };
        format!(
            "DM [{} -> {}]  CM [{} isn={} ack_isn={}]  RD [seq={}{}{}]  OSR [wnd={}{}]  payload {}B",
            self.src_addr & 0xFF,
            self.dst_addr & 0xFF,
            flags,
            self.cm.isn,
            self.cm.ack_isn,
            self.rd.seq,
            if self.rd.has_ack { format!(" ack={}", self.rd.ack) } else { String::new() },
            sack,
            self.osr.rcv_wnd,
            if self.osr.ecn_echo { " ECN" } else { "" },
            self.payload.len()
        )
    }

    /// Header size in bytes for the given SACK count (experiment E11).
    pub fn header_len(n_sack: usize) -> usize {
        // magic + addrs + csum + DM(4) + CM(9) + RD(9 + 8*sack) + OSR(3)
        1 + 8 + 2 + 4 + 9 + 9 + 8 * n_sack + 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet {
            src_addr: 0x0A000001,
            dst_addr: 0x0A000002,
            dm: DmHeader { src_port: 5000, dst_port: 80 },
            cm: CmHeader {
                flags: CmFlags { syn: true, fin: false, rst: false, cm_ack: true },
                isn: 0x11111111,
                ack_isn: 0x22222222,
            },
            rd: RdHeader {
                seq: 100,
                ack: 200,
                has_ack: true,
                sack: vec![SackRange { start: 300, end: 400 }],
            },
            osr: OsrHeader { ecn_echo: true, rcv_wnd: 9000 },
            payload: b"native".to_vec(),
        }
    }

    #[test]
    fn round_trip() {
        let p = sample();
        assert_eq!(Packet::decode(&p.encode()), Ok(p));
    }

    #[test]
    fn round_trip_minimal() {
        let p = Packet {
            src_addr: 1,
            dst_addr: 2,
            dm: DmHeader { src_port: 1, dst_port: 2 },
            ..Default::default()
        };
        assert_eq!(Packet::decode(&p.encode()), Ok(p));
    }

    #[test]
    fn round_trip_two_sack_ranges() {
        let mut p = sample();
        p.rd.sack.push(SackRange { start: 500, end: 600 });
        assert_eq!(Packet::decode(&p.encode()), Ok(p));
    }

    #[test]
    fn encode_clamps_excess_sack_ranges() {
        // The 2-bit on-wire count cannot carry more than two ranges; a
        // third must be dropped at encode, not allowed to alias the count.
        let mut p = sample();
        p.rd.sack.push(SackRange { start: 500, end: 600 });
        p.rd.sack.push(SackRange { start: 700, end: 800 });
        let got = Packet::decode(&p.encode()).expect("still decodes");
        assert_eq!(got.rd.sack, p.rd.sack[..2].to_vec());
    }

    #[test]
    fn corruption_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            if let Ok(got) = Packet::decode(&bad) {
                panic!("flip at {i} undetected: {got:?}");
            }
        }
    }

    #[test]
    fn truncation_regressions() {
        // Every prefix of a valid packet must yield a typed error — the
        // fuzz-found class this decoder must never panic on again.
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            let err = Packet::decode(&bytes[..n]).expect_err("prefix accepted");
            if n == 0 {
                assert_eq!(err, WireError::BadMagic);
            } else if n < 36 {
                assert_eq!(err, WireError::Truncated { need: 36, got: n });
            }
        }
    }

    #[test]
    fn advertised_sack_past_end_is_truncated_error() {
        // Re-seal the checksum after raising the SACK count so the length
        // guard (not the checksum) must catch the overrun.
        let mut bytes = Packet { payload: vec![], ..sample() }.encode();
        let rdb_at = 11 + 21; // body offset of the RD count byte
        bytes[rdb_at] = (bytes[rdb_at] & 1) | (2 << 1); // claim 2 ranges, carry 1
        let src = u32::from_be_bytes(bytes[1..5].try_into().unwrap());
        let dst = u32::from_be_bytes(bytes[5..9].try_into().unwrap());
        let csum = tcp_mono::wire::checksum(src, dst, &bytes[11..]);
        bytes[9] = (csum >> 8) as u8;
        bytes[10] = csum as u8;
        assert!(matches!(
            Packet::decode(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut bytes = vec![0u8; MAX_FRAME_BYTES + 1];
        bytes[0] = 0x5B;
        assert_eq!(
            Packet::decode(&bytes),
            Err(WireError::Oversized { limit: MAX_FRAME_BYTES, got: MAX_FRAME_BYTES + 1 })
        );
    }

    #[test]
    fn rejects_rfc793_traffic() {
        // A standard segment from the monolithic stack must not parse as a
        // native packet.
        let seg = tcp_mono::wire::Segment {
            src: Endpoint::new(1, 2),
            dst: Endpoint::new(3, 4),
            seq: 0,
            ack: 0,
            flags: tcp_mono::wire::SYN,
            wnd: 100,
            mss: None,
            payload: vec![],
        };
        assert_eq!(Packet::decode(&seg.encode()), Err(WireError::BadMagic));
    }

    #[test]
    fn header_len_matches_encode() {
        for n_sack in 0..=2 {
            let mut p = sample();
            p.rd.sack = (0..n_sack as u32)
                .map(|i| SackRange { start: i * 10, end: i * 10 + 5 })
                .collect();
            p.payload.clear();
            assert_eq!(p.encode().len(), Packet::header_len(n_sack));
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_any_packet_round_trips(
            src_addr: u32, dst_addr: u32, sp: u16, dp: u16,
            syn: bool, fin: bool, rst: bool, cm_ack: bool,
            isn: u32, ack_isn: u32, seq: u32, ack: u32, has_ack: bool,
            n_sack in 0usize..=2, ecn: bool, wnd: u16,
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..300),
        ) {
            let pkt = Packet {
                src_addr,
                dst_addr,
                dm: DmHeader { src_port: sp, dst_port: dp },
                cm: CmHeader { flags: CmFlags { syn, fin, rst, cm_ack }, isn, ack_isn },
                rd: RdHeader {
                    seq,
                    ack,
                    has_ack,
                    sack: (0..n_sack as u32)
                        .map(|i| SackRange { start: seq.wrapping_add(i), end: ack.wrapping_add(i) })
                        .collect(),
                },
                osr: OsrHeader { ecn_echo: ecn, rcv_wnd: wnd },
                payload,
            };
            proptest::prop_assert_eq!(Packet::decode(&pkt.encode()), Ok(pkt));
        }

        #[test]
        fn prop_decode_never_panics_on_arbitrary_bytes(
            bytes in proptest::collection::vec(proptest::num::u8::ANY, 0..600),
        ) {
            // Ok or typed Err — any panic fails the harness itself.
            let _ = Packet::decode(&bytes);
        }

        #[test]
        fn prop_decode_never_panics_on_mutated_valid_packet(
            flip in 0usize..48, val: u8,
            payload in proptest::collection::vec(proptest::num::u8::ANY, 0..64),
        ) {
            // Mutate an almost-valid frame, then re-seal the checksum so the
            // parse proper (SACK counts, lengths) is what gets probed.
            let mut bytes = Packet { payload, ..sample() }.encode();
            let i = flip % bytes.len();
            bytes[i] = val;
            let src = u32::from_be_bytes(bytes[1..5].try_into().unwrap());
            let dst = u32::from_be_bytes(bytes[5..9].try_into().unwrap());
            let csum = tcp_mono::wire::checksum(src, dst, &bytes[11..]);
            bytes[9] = (csum >> 8) as u8;
            bytes[10] = csum as u8;
            let _ = Packet::decode(&bytes);
        }
    }

    #[test]
    fn describe_attributes_fields_to_sublayers() {
        let d = sample().describe();
        for part in ["DM [", "CM [SYN|CMACK", "RD [seq=100 ack=200", "OSR [wnd=9000 ECN", "payload 6B"] {
            assert!(d.contains(part), "{d:?} missing {part:?}");
        }
    }

    #[test]
    fn endpoints_combine_addr_and_port() {
        let p = sample();
        assert_eq!(p.src(), Endpoint::new(0x0A000001, 5000));
        assert_eq!(p.dst(), Endpoint::new(0x0A000002, 80));
    }
}
