//! Pluggable ISN generation — the mechanism encapsulated by CM.
//!
//! "Regardless of the mechanism encapsulated, the main function of CM is
//! to choose ISNs that are unique and hard to predict" (§3). Two
//! generators mirror the paper's history lesson: RFC 793's clock scheme
//! and RFC 1948's keyed-hash scheme. Because the mechanism is private to
//! CM, swapping them touches nothing else (experiment E8).

use netsim::Time;
use tcp_mono::wire::FourTuple;

/// The CM-private ISN mechanism.
pub trait IsnGenerator {
    fn name(&self) -> &'static str;
    fn isn(&mut self, now: Time, tuple: &FourTuple) -> u32;
}

/// RFC 793: "the low-order bits of a clock" (one tick per 4 µs).
#[derive(Clone, Debug, Default)]
pub struct ClockIsn;

impl IsnGenerator for ClockIsn {
    fn name(&self) -> &'static str {
        "clock (RFC 793)"
    }

    fn isn(&mut self, now: Time, tuple: &FourTuple) -> u32 {
        // Salt with the local endpoint so two simulated hosts starting at
        // t=0 do not collide; the clock term dominates over time.
        let salt = tuple.local.addr.wrapping_mul(0x9E3779B9) ^ (tuple.local.port as u32);
        ((now.micros() / 4) as u32).wrapping_add(salt)
    }
}

/// RFC 1948: `hash(ports, addresses, secret) + clock`, making the ISN
/// hard for an off-path attacker to predict.
#[derive(Clone, Debug)]
pub struct SecureIsn {
    key: u64,
}

impl SecureIsn {
    pub fn new(key: u64) -> SecureIsn {
        SecureIsn { key }
    }

    /// A small keyed mixing function (xorshift-multiply rounds); not
    /// cryptographic-grade, but structurally faithful to RFC 1948.
    fn keyed_hash(&self, tuple: &FourTuple) -> u32 {
        let mut x = self.key
            ^ ((tuple.local.addr as u64) << 32 | tuple.remote.addr as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= ((tuple.local.port as u64) << 16 | tuple.remote.port as u64) << 7;
        for _ in 0..3 {
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        }
        (x >> 32) as u32 ^ x as u32
    }
}

impl IsnGenerator for SecureIsn {
    fn name(&self) -> &'static str {
        "keyed hash (RFC 1948)"
    }

    fn isn(&mut self, now: Time, tuple: &FourTuple) -> u32 {
        self.keyed_hash(tuple).wrapping_add((now.micros() / 4) as u32)
    }
}

/// Factory by name, for configuration and experiments.
pub fn make(name: &str) -> Box<dyn IsnGenerator> {
    match name {
        "clock" => Box::new(ClockIsn),
        "secure" => Box::new(SecureIsn::new(0xC0FF_EE00_DEAD_BEEF)),
        other => panic!("unknown ISN generator {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Dur;
    use tcp_mono::wire::Endpoint;

    fn tup(lp: u16, rp: u16) -> FourTuple {
        FourTuple { local: Endpoint::new(1, lp), remote: Endpoint::new(2, rp) }
    }

    #[test]
    fn clock_isn_advances_with_time() {
        let mut g = ClockIsn;
        let a = g.isn(Time::ZERO, &tup(1, 2));
        let b = g.isn(Time::ZERO + Dur::from_millis(1), &tup(1, 2));
        assert_eq!(b.wrapping_sub(a), 250, "4µs per tick");
    }

    #[test]
    fn clock_isn_differs_across_hosts() {
        let mut g = ClockIsn;
        let t1 = FourTuple { local: Endpoint::new(1, 80), remote: Endpoint::new(2, 90) };
        let t2 = FourTuple { local: Endpoint::new(2, 80), remote: Endpoint::new(1, 90) };
        assert_ne!(g.isn(Time::ZERO, &t1), g.isn(Time::ZERO, &t2));
    }

    #[test]
    fn secure_isn_depends_on_tuple_and_key() {
        let mut a = SecureIsn::new(1);
        let mut b = SecureIsn::new(2);
        assert_ne!(a.isn(Time::ZERO, &tup(1, 2)), b.isn(Time::ZERO, &tup(1, 2)));
        assert_ne!(a.isn(Time::ZERO, &tup(1, 2)), a.isn(Time::ZERO, &tup(1, 3)));
        // Deterministic for the same inputs.
        assert_eq!(a.isn(Time::ZERO, &tup(1, 2)), a.isn(Time::ZERO, &tup(1, 2)));
    }

    #[test]
    fn secure_isn_spreads_over_the_space() {
        // Different tuples should land far apart (predictability test).
        let mut g = SecureIsn::new(42);
        let mut vals: Vec<u32> = (0..64u16).map(|p| g.isn(Time::ZERO, &tup(p, 80))).collect();
        vals.sort();
        vals.dedup();
        assert_eq!(vals.len(), 64, "no collisions across 64 tuples");
    }

    #[test]
    fn factory() {
        assert_eq!(make("clock").name(), "clock (RFC 793)");
        assert_eq!(make("secure").name(), "keyed hash (RFC 1948)");
    }
}
