//! # sublayer-core — the sublayered TCP (paper §3, Figures 5 & 6)
//!
//! The paper's primary contribution, implemented in full:
//!
//! | sublayer | module | service (test T1) | owned header bits (test T3) |
//! |---|---|---|---|
//! | OSR | [`osr`] | byte stream ↔ segments, ordering, rate & flow control | ECN echo, receiver window |
//! | RD | [`rd`] | exactly-once segment delivery | seq, ack, SACK |
//! | CM | [`cm`] | ISN establishment, open/close lifecycle | SYN/FIN/RST flags, ISNs |
//! | DM | [`dm`] | port demultiplexing ("essentially UDP") | ports |
//!
//! Interfaces between adjacent sublayers are narrow (test T2): OSR hands RD
//! segments and receives `Delivered` events plus *summarized* congestion
//! signals; RD obtains its ISN pair from CM's `Established` event; CM gives
//! DM a 4-tuple. Each sublayer's state lives in a private struct — Rust's
//! module system enforces the separation the paper wants, and the
//! `slmetrics` instrumentation proves it (experiment E6).
//!
//! Replaceable mechanisms (experiment E8): rate controllers ([`cc`]:
//! Reno / CUBIC / rate-based / fixed), ISN generators ([`isn`]: RFC 793
//! clock / RFC 1948 keyed hash), and whole CM schemes ([`cm::CmScheme`]:
//! three-way handshake / Watson timer-based).
//!
//! [`shim`] translates the native Figure-6 header to and from RFC 793 so
//! the stack interoperates with the monolithic `tcp-mono` (experiment E7);
//! [`offload`] models NIC/host partitions of the sublayer stack (E10);
//! [`record`] *inserts* a new security sublayer under DM without touching
//! the other four (the QUIC-style record/transport split of §5).

pub mod cc;
pub mod cm;
pub mod dm;
pub mod fingerprint;
pub mod isn;
pub mod offload;
pub mod osr;
pub mod rd;
pub mod record;
pub mod shim;
pub mod signals;
pub mod stack;
pub mod wire;

pub use cc::RateController;
pub use cm::{BuggyCm, CmDriver, CmEvent, CmPass, CmScheme, CmState, ConnMgmt};
pub use dm::{Admitted, BuggyDm, ConnId, Demux, DmDriver, DmError, DmVerdict};
pub use isn::IsnGenerator;
pub use osr::{BuggyOsr, Osr, OsrDriver};
pub use rd::{BuggyRd, RdDriver, RdEvent, ReliableDelivery};
pub use record::RecordStack;
pub use signals::CongSignal;
pub use stack::{CrossingStats, KeepaliveConfig, SlConfig, SlStats, SlTcpStack};
pub use wire::{Packet, WireError};

#[cfg(test)]
mod tests;
