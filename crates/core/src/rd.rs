//! The **reliable delivery (RD)** sublayer (§3).
//!
//! RD "uses the ISNs supplied by the lower connection management layer to
//! reliably (i.e., exactly once) deliver segments given by the upper layer
//! (OSR). OSR gives RD a segment identified by its byte offset, and RD
//! translates this to segment sequence numbers (by adding the ISN)...
//! All details of retransmission, including keeping track of a window of
//! outstanding packets are encapsulated in RD; if Selective
//! Acknowledgement is used, the SACK options are also processed by this
//! sublayer."
//!
//! Per test **T3**, RD owns the `seq`/`ack`/SACK bits of the native header
//! and nothing else. Its upward interface (test **T2**) is:
//! segments-by-offset down, possibly-out-of-order `Delivered` events up
//! (OSR does the reordering), and **summarized congestion signals**
//! ([`CongSignal`]) — OSR never sees a sequence number.
//!
//! Internally RD works in unwrapped 64-bit byte offsets (offset 0 = first
//! payload byte = wire sequence `isn + 1`); conversion to/from the 32-bit
//! wire space happens only at the header boundary.

use crate::fingerprint as fp;
use crate::signals::{CongSignal, SeqValidity};
use crate::wire::{Packet, SackRange};
use netsim::{Dur, Time};
use slmetrics::SharedLog;
use std::collections::{BTreeMap, VecDeque};

/// Events RD reports to the stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RdEvent {
    /// A (possibly out-of-order) segment for OSR, exactly once.
    Delivered { offset: u64, data: Vec<u8> },
    /// Our FIN was acknowledged (close handshake progress, relayed to CM).
    LocalFinAcked,
    /// The peer's FIN was reached in sequence (relayed to CM).
    PeerFinReached,
    /// [`MAX_RETRIES`] consecutive RTOs fired without the cumulative ack
    /// advancing. The stack must abort the connection (graceful
    /// degradation) rather than back off forever.
    RetriesExhausted,
}

/// RD counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RdStats {
    pub segments_sent: u64,
    pub retransmits: u64,
    pub fast_retransmits: u64,
    pub acks_sent: u64,
    pub duplicate_payload_dropped: u64,
    pub sacked_skips: u64,
    pub timeouts: u64,
    pub keepalive_probes: u64,
    /// Out-of-order data dropped because the range map hit its safety cap
    /// (an attacker spraying disjoint bytes cannot grow state unboundedly).
    pub ooo_range_drops: u64,
    /// Segments dropped because their sequence number was outside the
    /// plausible receive window in either direction (RFC 793
    /// acceptability; blind data injection lands here).
    pub invalid_seq_drops: u64,
    /// Pure acks deferred by pressure-driven ACK pacing.
    pub acks_paced: u64,
}

#[derive(Clone)]
struct Flight {
    data: Vec<u8>,
    sent_at: Time,
    /// When the segment was *first* transmitted (never touched by
    /// retransmission, unlike `sent_at`) — the basis of oldest-segment
    /// accounting during partitions.
    first_sent: Time,
    retransmitted: bool,
    sacked: bool,
}

const INITIAL_RTO: Dur = Dur(1_000_000_000);
const MIN_RTO: Dur = Dur(200_000_000);
const MAX_RTO: Dur = Dur(60_000_000_000);
/// Safety cap on outstanding segments (the *policy* window is OSR's).
const MAX_IN_FLIGHT: usize = 1024;
/// Hard cap on bytes parked in the retransmission buffer. During a long
/// partition nothing is acked, so without this the application could keep
/// pushing until `MAX_IN_FLIGHT` large segments sat in memory; with it,
/// [`ReliableDelivery::can_accept`] goes false and backpressure propagates
/// up through OSR to the writer. The cap may be overshot by at most one
/// segment (the one accepted while just under it).
pub const RTX_BYTES_CAP: usize = 256 * 1024;
/// Window RD uses to classify inbound control sequences (RFC 5961): a
/// wire sequence within this many bytes past `rcv_nxt` is "in window".
/// Public so `slverify` can cross-check [`ReliableDelivery::seq_validity`]
/// against its own `classify_seq` relation over the same window.
pub const VALIDITY_WND: u32 = 64 * 1024;
/// Safety cap on disjoint out-of-order ranges tracked by the receiver.
const MAX_OOO_RANGES: usize = 256;
/// Safety cap on total out-of-order bytes accepted ahead of `rcv_nxt`
/// (matches OSR's `RCV_BUF_CAP`, which is where the bytes park).
const MAX_OOO_BYTES: u64 = 64 * 1024 - 1;
/// Consecutive RTO expirations without `snd_una` progress before RD gives
/// up and asks the stack to abort ([`RdEvent::RetriesExhausted`]).
pub const MAX_RETRIES: u32 = 8;
/// How long a pure ack may be delayed while ACK pacing is on (host memory
/// pressure). Well under [`MIN_RTO`], so pacing can never trigger a peer's
/// retransmission timer.
pub const ACK_DELAY: Dur = Dur(50_000_000);

/// The RD sublayer for one connection.
#[derive(Clone)]
pub struct ReliableDelivery {
    snd_isn: u32,
    rcv_isn: u32,

    // --- sender, in unwrapped offsets ---
    snd_una: u64,
    snd_nxt: u64,
    in_flight: BTreeMap<u64, Flight>,
    /// Total payload bytes across `in_flight` (kept incrementally so the
    /// memory-bound check is O(1)).
    flight_bytes: usize,
    fin_off: Option<u64>,
    fin_sent_at: Option<Time>,
    fin_retransmitted: bool,
    fin_acked: bool,
    dupacks: u32,
    /// NewReno-style recovery: retransmit the next hole on each partial
    /// ack until `recover` is reached.
    in_recovery: bool,
    recover: u64,

    // --- RTT / RTO ---
    srtt: Option<Dur>,
    rttvar: Dur,
    rto: Dur,
    rto_deadline: Option<Time>,
    /// RTO expirations since `snd_una` last advanced.
    consecutive_rtx: u32,

    // --- receiver ---
    rcv_nxt: u64,
    /// Disjoint out-of-order received ranges, start -> end (offsets).
    ooo: BTreeMap<u64, u64>,
    peer_fin_off: Option<u64>,
    peer_fin_reached: bool,
    ack_pending: bool,
    /// This pending ack must go out now (window update / probe answer) —
    /// pacing may not hold it.
    ack_forced: bool,
    /// RD's slice of the backpressure contract: when on, pure acks are
    /// held up to [`ACK_DELAY`] and coalesced, throttling the peer's ack
    /// clock. Data, FIN, and forced acks are never delayed.
    pace_acks: bool,
    delayed_ack_deadline: Option<Time>,
    /// Advertise SACK ranges (ablation knob; default on).
    use_sack: bool,

    // --- outputs ---
    /// (offset or None for a pure ack, payload, is_fin)
    outbox: VecDeque<(Option<u64>, Vec<u8>, bool)>,
    signals: VecDeque<CongSignal>,
    events: VecDeque<RdEvent>,
    pub stats: RdStats,
    log: SharedLog,
}

impl ReliableDelivery {
    /// Create from the ISN pair CM established.
    pub fn new(snd_isn: u32, rcv_isn: u32, log: SharedLog) -> ReliableDelivery {
        ReliableDelivery {
            snd_isn,
            rcv_isn,
            snd_una: 0,
            snd_nxt: 0,
            in_flight: BTreeMap::new(),
            flight_bytes: 0,
            fin_off: None,
            fin_sent_at: None,
            fin_retransmitted: false,
            fin_acked: false,
            dupacks: 0,
            in_recovery: false,
            recover: 0,
            srtt: None,
            rttvar: Dur::ZERO,
            rto: INITIAL_RTO,
            rto_deadline: None,
            consecutive_rtx: 0,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            peer_fin_off: None,
            peer_fin_reached: false,
            ack_pending: false,
            ack_forced: false,
            pace_acks: false,
            delayed_ack_deadline: None,
            use_sack: true,
            outbox: VecDeque::new(),
            signals: VecDeque::new(),
            events: VecDeque::new(),
            stats: RdStats::default(),
            log,
        }
    }

    // --- wire <-> offset conversions (RD-private) ---

    fn wire_snd(&self, off: u64) -> u32 {
        self.snd_isn.wrapping_add(1).wrapping_add(off as u32)
    }

    pub(crate) fn wire_rcv_ack(&self) -> u32 {
        self.rcv_isn.wrapping_add(1).wrapping_add(self.rcv_nxt as u32)
    }

    /// Classify an inbound wire sequence against the next expected one
    /// (RFC 5961). The *stack* derives this signal for CM — exactly like
    /// the `handshake_ack` boolean — so CM decides reset *policy* without
    /// ever touching RD's sequence arithmetic.
    pub fn seq_validity(&self, wire_seq: u32) -> SeqValidity {
        let delta = wire_seq.wrapping_sub(self.wire_rcv_ack());
        if delta == 0 {
            SeqValidity::Exact
        } else if delta < VALIDITY_WND {
            SeqValidity::InWindow
        } else {
            SeqValidity::Outside
        }
    }

    /// Unwrap a 32-bit wire value to the 64-bit offset closest to `near`.
    fn unwrap(base_isn: u32, wire: u32, near: u64) -> u64 {
        let raw = wire.wrapping_sub(base_isn.wrapping_add(1));
        let delta = raw.wrapping_sub(near as u32) as i32 as i64;
        near.saturating_add_signed(delta)
    }

    /// Enable/disable SACK advertisement (RD-private either way).
    pub fn set_use_sack(&mut self, on: bool) {
        self.use_sack = on;
    }

    /// Late-bind the peer ISN (timer-based CM learns it from the first
    /// inbound packet). Only legal while nothing has been received.
    pub fn set_rcv_isn(&mut self, isn: u32) {
        debug_assert!(self.rcv_nxt == 0 && self.ooo.is_empty(), "receive side must be fresh");
        self.rcv_isn = isn;
    }

    // --- sender side ---

    /// May OSR push another segment? (Safety bound only — rate policy
    /// lives in OSR.) Bounded both by segment count and by
    /// [`RTX_BYTES_CAP`] bytes, so an unreachable peer stalls the writer
    /// instead of growing the retransmission buffer for as long as the
    /// partition lasts.
    pub fn can_accept(&self) -> bool {
        self.in_flight.len() < MAX_IN_FLIGHT
            && self.flight_bytes < RTX_BYTES_CAP
            && self.fin_off.is_none()
    }

    /// Bytes handed to us and not yet acknowledged.
    pub fn bytes_unacked(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Bytes held in the retransmission buffer (memory-bound invariant).
    pub fn in_flight_bytes(&self) -> usize {
        self.flight_bytes
    }

    /// Age of the oldest byte still waiting for an ack, measured from its
    /// *first* transmission. During a partition this grows linearly while
    /// [`in_flight_bytes`](Self::in_flight_bytes) stays capped — the pair
    /// is what the host's `ResourceBudget` accounting sees.
    pub fn oldest_unacked_age(&self, now: Time) -> Option<Dur> {
        let seg = self.in_flight.first_key_value().map(|(_, f)| f.first_sent);
        seg.or(if self.fin_acked { None } else { self.fin_sent_at }).map(|t0| now.since(t0))
    }

    /// Accept a segment from OSR at the next offset; RD assigns sequence
    /// numbers and guarantees eventual delivery.
    pub fn push_segment(&mut self, now: Time, data: Vec<u8>) {
        self.log.borrow_mut().w("rd", "snd_nxt");
        self.log.borrow_mut().w("rd", "in_flight");
        assert!(self.can_accept(), "pushed past RD's safety window");
        assert!(!data.is_empty());
        let off = self.snd_nxt;
        self.snd_nxt += data.len() as u64;
        self.flight_bytes += data.len();
        self.outbox.push_back((Some(off), data.clone(), false));
        self.in_flight.insert(
            off,
            Flight { data, sent_at: now, first_sent: now, retransmitted: false, sacked: false },
        );
        self.stats.segments_sent += 1;
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto);
        }
    }

    /// Queue the FIN (CM decided to close; RD owns its retransmission).
    pub fn send_fin(&mut self, now: Time) {
        if self.fin_off.is_some() {
            return;
        }
        self.log.borrow_mut().w("rd", "snd_nxt");
        let off = self.snd_nxt;
        self.snd_nxt += 1;
        self.fin_off = Some(off);
        self.fin_sent_at = Some(now);
        self.outbox.push_back((Some(off), Vec::new(), true));
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.rto);
        }
    }

    pub fn fin_acked(&self) -> bool {
        self.fin_acked
    }

    /// All pushed data (and FIN if queued) acknowledged?
    pub fn all_acked(&self) -> bool {
        self.snd_una == self.snd_nxt
    }

    fn rtt_sample(&mut self, sample: Dur) {
        self.log.borrow_mut().w("rd", "srtt");
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = Dur(sample.0 / 2);
            }
            Some(srtt) => {
                let err = sample.0.abs_diff(srtt.0);
                self.rttvar = Dur((3 * self.rttvar.0 + err) / 4);
                self.srtt = Some(Dur((7 * srtt.0 + sample.0) / 8));
            }
        }
        let srtt = self.srtt.unwrap();
        self.rto = Dur(srtt.0 + (4 * self.rttvar.0).max(srtt.0 / 8)).clamp(MIN_RTO, MAX_RTO);
    }

    fn retransmit_first_unacked(&mut self, now: Time) {
        self.log.borrow_mut().r("rd", "in_flight");
        // Skip SACKed segments — SACK is RD-private mechanics.
        let target = self
            .in_flight
            .iter()
            .find(|(_, f)| !f.sacked)
            .map(|(&off, _)| off);
        if let Some(off) = target {
            let f = self.in_flight.get_mut(&off).unwrap();
            f.retransmitted = true;
            f.sent_at = now;
            let data = f.data.clone();
            self.outbox.push_back((Some(off), data, false));
            self.stats.retransmits += 1;
        } else if let Some(fin_off) = self.fin_off {
            if !self.fin_acked {
                self.fin_retransmitted = true;
                self.outbox.push_back((Some(fin_off), Vec::new(), true));
                self.stats.retransmits += 1;
            }
        }
    }

    // --- input processing ---

    /// Process the RD header (+ payload) of an inbound packet.
    /// `fin` is CM's flag, passed through because the FIN occupies one
    /// unit of RD's sequence space (the CM/RD coupling the paper
    /// acknowledges).
    pub fn on_packet(&mut self, now: Time, pkt: &Packet, fin: bool) {
        self.log.borrow_mut().r("rd", "snd_una");
        // Acknowledgment processing.
        if pkt.rd.has_ack {
            let ack = Self::unwrap(self.snd_isn, pkt.rd.ack, self.snd_una);
            if ack > self.snd_una && ack <= self.snd_nxt {
                self.log.borrow_mut().w("rd", "snd_una");
                self.log.borrow_mut().w("rd", "in_flight");
                let bytes = (ack - self.snd_una) as u32;
                // RTT sample from the newest fully-acked clean segment
                // (Karn's rule).
                let mut sample = None;
                let acked: Vec<u64> = self
                    .in_flight
                    .range(..ack)
                    .filter(|(&off, f)| off + f.data.len() as u64 <= ack)
                    .map(|(&off, _)| off)
                    .collect();
                for off in acked {
                    let f = self.in_flight.remove(&off).unwrap();
                    self.flight_bytes -= f.data.len();
                    if !f.retransmitted {
                        sample = Some(now.since(f.sent_at));
                    }
                }
                self.snd_una = ack;
                self.dupacks = 0;
                self.consecutive_rtx = 0;
                if let Some(s) = sample {
                    self.rtt_sample(s);
                }
                let was_in_recovery = self.in_recovery;
                if self.in_recovery {
                    if ack >= self.recover {
                        self.in_recovery = false;
                    } else {
                        // Partial ack: the next hole is lost too —
                        // retransmit it immediately (NewReno).
                        self.retransmit_first_unacked(now);
                    }
                }
                // FIN covered by this ack?
                if let Some(foff) = self.fin_off {
                    if ack > foff && !self.fin_acked {
                        self.fin_acked = true;
                        if let (Some(t0), false) = (self.fin_sent_at, self.fin_retransmitted) {
                            self.rtt_sample(now.since(t0));
                        }
                        self.events.push_back(RdEvent::LocalFinAcked);
                    }
                }
                // Summarize progress upward (fin consumes 1 non-data unit).
                let data_bytes = bytes.saturating_sub(
                    self.fin_off.map_or(0, |f| u32::from(ack > f)),
                );
                // RD owns the recovery point; the controller only sees
                // the classification: plain progress, one more hole
                // (partial ack), or episode-closing full ack.
                self.signals.push_back(if !was_in_recovery {
                    CongSignal::Acked { bytes: data_bytes, rtt: sample }
                } else if self.in_recovery {
                    CongSignal::PartialAck { bytes: data_bytes }
                } else {
                    CongSignal::FullAck { bytes: data_bytes, rtt: sample }
                });
                self.rto_deadline =
                    if self.all_acked() { None } else { Some(now + self.rto) };
            } else if ack == self.snd_una
                && !self.all_acked()
                && pkt.payload.is_empty()
                && !fin
            {
                // Duplicate ack.
                self.log.borrow_mut().w("rd", "dupacks");
                self.dupacks += 1;
                if self.dupacks == 3 {
                    self.stats.fast_retransmits += 1;
                    self.in_recovery = true;
                    self.recover = self.snd_nxt;
                    self.retransmit_first_unacked(now);
                    self.signals.push_back(CongSignal::DupAckLoss);
                } else if self.dupacks > 3 && self.in_recovery {
                    // Further dup acks mean segments left the pipe —
                    // NewReno window inflation.
                    self.signals.push_back(CongSignal::DupAck);
                }
            }
            // SACK: mark covered segments so retransmission skips them.
            for r in &pkt.rd.sack {
                let start = Self::unwrap(self.snd_isn, r.start, self.snd_una);
                let end = Self::unwrap(self.snd_isn, r.end, self.snd_una);
                for (_, f) in self.in_flight.range_mut(start..end) {
                    if !f.sacked {
                        f.sacked = true;
                        self.stats.sacked_skips += 1;
                    }
                }
            }
        }

        // Payload / FIN reception.
        let payload_len = pkt.payload.len() as u64;
        if payload_len > 0 || fin {
            // RFC 793 acceptability, checked in *wire* space before
            // unwrapping: the segment must start within VALIDITY_WND of
            // the next expected sequence in either direction (ahead =
            // in-window new data, behind = a retransmission). Without
            // this, a blindly forged sequence number can alias onto a
            // live stream offset and corrupt the byte stream.
            let expected = self.wire_rcv_ack();
            let ahead = pkt.rd.seq.wrapping_sub(expected);
            let behind = expected.wrapping_sub(pkt.rd.seq);
            if ahead >= VALIDITY_WND && behind > VALIDITY_WND {
                self.stats.invalid_seq_drops += 1;
                // Re-anchor an honest-but-desynced peer (and leave a
                // blind forger none the wiser about the real window).
                self.ack_pending = true;
                return;
            }
            self.log.borrow_mut().w("rd", "rcv_ranges");
            let seq_off = Self::unwrap(self.rcv_isn, pkt.rd.seq, self.rcv_nxt);
            if payload_len > 0 {
                self.receive_range(seq_off, &pkt.payload);
            }
            if fin {
                let fin_off = seq_off + payload_len;
                self.peer_fin_off = Some(fin_off);
            }
            self.advance_rcv();
            self.ack_pending = true;
        } else if pkt.rd.has_ack {
            // Pure acks at the peer's current sequence need no response,
            // but an empty segment *behind* rcv_nxt is a keepalive probe:
            // answer with a bare ack so the prober learns we are alive
            // (TCP's unacceptable-segment rule).
            let seq_off = Self::unwrap(self.rcv_isn, pkt.rd.seq, self.rcv_nxt);
            if seq_off < self.rcv_nxt {
                self.ack_pending = true;
            }
        }
    }

    /// Record a received payload range; deliver only the novel parts
    /// (exactly-once).
    fn receive_range(&mut self, start: u64, data: &[u8]) {
        let end = start + data.len() as u64;
        if start > self.rcv_nxt {
            // Receiver-state caps: accept only data that advances rcv_nxt
            // once either cap is reached, so a hostile sender ignoring the
            // advertised window (or spraying disjoint bytes) cannot grow
            // the range map or OSR's parked reassembly bytes unboundedly.
            let held: u64 = self.ooo.iter().map(|(&s, &e)| e - s).sum();
            if self.ooo.len() >= MAX_OOO_RANGES || held + data.len() as u64 > MAX_OOO_BYTES {
                self.stats.ooo_range_drops += 1;
                self.ack_pending = true;
                return;
            }
        }
        // Clip against already-delivered prefix.
        let mut covered: Vec<(u64, u64)> = vec![(0, self.rcv_nxt)];
        for (&s, &e) in &self.ooo {
            covered.push((s, e));
        }
        covered.sort_unstable();
        // Walk the covered list, emitting the novel gaps of [start, end).
        let mut cursor = start;
        let mut novel: Vec<(u64, u64)> = Vec::new();
        for (cs, ce) in covered {
            if ce <= cursor {
                continue;
            }
            if cs >= end {
                break;
            }
            if cs > cursor {
                novel.push((cursor, cs.min(end)));
            }
            cursor = cursor.max(ce);
            if cursor >= end {
                break;
            }
        }
        if cursor < end {
            novel.push((cursor, end));
        }
        if novel.is_empty() {
            self.stats.duplicate_payload_dropped += 1;
            return;
        }
        for (ns, ne) in novel {
            let slice = &data[(ns - start) as usize..(ne - start) as usize];
            self.events.push_back(RdEvent::Delivered { offset: ns, data: slice.to_vec() });
            // Merge into the ooo range set.
            Self::merge_range(&mut self.ooo, ns, ne);
        }
    }

    fn merge_range(ooo: &mut BTreeMap<u64, u64>, mut s: u64, mut e: u64) {
        // Absorb overlapping/adjacent ranges.
        let overlapping: Vec<u64> = ooo
            .range(..=e)
            .filter(|(_, &re)| re >= s)
            .map(|(&rs, _)| rs)
            .collect();
        for rs in overlapping {
            let re = ooo.remove(&rs).unwrap();
            s = s.min(rs);
            e = e.max(re);
        }
        ooo.insert(s, e);
    }

    fn advance_rcv(&mut self) {
        // Pull contiguous ranges into rcv_nxt.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s > self.rcv_nxt {
                break;
            }
            self.ooo.pop_first();
            self.rcv_nxt = self.rcv_nxt.max(e);
        }
        if let Some(foff) = self.peer_fin_off {
            if !self.peer_fin_reached && self.rcv_nxt == foff {
                self.rcv_nxt += 1; // the FIN consumes one unit
                self.peer_fin_reached = true;
                self.events.push_back(RdEvent::PeerFinReached);
            }
        }
    }

    // --- output ---

    /// Next packet to send: data/fin segments, else a pure ack if owed.
    /// Returns the packet skeleton (RD fields filled) and whether CM must
    /// stamp the FIN flag.
    ///
    /// Under ACK pacing, a non-forced pure ack is deferred up to
    /// [`ACK_DELAY`]: the first poll arms the delay, later polls emit it
    /// once `now` reaches the deadline. Acks riding on data/FIN segments
    /// are never deferred, so pacing only thins the bare-ack stream.
    pub fn poll_packet(&mut self, now: Time) -> Option<(Packet, bool)> {
        let (off, payload, is_fin) = match self.outbox.pop_front() {
            Some(x) => x,
            None => {
                if !self.ack_pending {
                    return None;
                }
                if self.pace_acks && !self.ack_forced {
                    match self.delayed_ack_deadline {
                        None => {
                            self.log.borrow_mut().w("rd", "ack_delay");
                            self.delayed_ack_deadline = Some(now + ACK_DELAY);
                            self.stats.acks_paced += 1;
                            return None;
                        }
                        Some(d) if now < d => return None,
                        Some(_) => {}
                    }
                }
                (None, Vec::new(), false)
            }
        };
        self.log.borrow_mut().r("rd", "rcv_ranges");
        let mut pkt = Packet::default();
        pkt.rd.seq = self.wire_snd(off.unwrap_or(self.snd_nxt));
        pkt.rd.has_ack = true;
        pkt.rd.ack = self.wire_rcv_ack();
        // Up to two SACK ranges from the out-of-order set.
        pkt.rd.sack = self
            .ooo
            .iter()
            .take(if self.use_sack { 2 } else { 0 })
            .map(|(&s, &e)| SackRange {
                start: self.rcv_isn.wrapping_add(1).wrapping_add(s as u32),
                end: self.rcv_isn.wrapping_add(1).wrapping_add(e as u32),
            })
            .collect();
        pkt.payload = payload;
        self.ack_pending = false;
        self.ack_forced = false;
        self.delayed_ack_deadline = None;
        if pkt.payload.is_empty() && !is_fin && off.is_none() {
            self.stats.acks_sent += 1;
        }
        Some((pkt, is_fin))
    }

    /// Stamp ack fields on a packet originated elsewhere (CM handshake
    /// acks) so every outgoing packet carries the cumulative ack, exactly
    /// like TCP.
    pub fn fill_tx(&mut self, pkt: &mut Packet) {
        self.log.borrow_mut().r("rd", "rcv_ranges");
        pkt.rd.seq = self.wire_snd(self.snd_nxt);
        pkt.rd.has_ack = true;
        pkt.rd.ack = self.wire_rcv_ack();
        self.ack_pending = false;
        self.ack_forced = false;
        self.delayed_ack_deadline = None;
    }

    /// Request a bare ack packet (used for window updates). Forced acks
    /// bypass ACK pacing — a delayed window update could deadlock a
    /// persist-probing peer.
    pub fn force_ack(&mut self) {
        self.ack_pending = true;
        self.ack_forced = true;
    }

    /// Turn pressure-driven ACK pacing on or off (plumbed down from the
    /// host through the stack).
    pub fn set_ack_pacing(&mut self, on: bool) {
        self.log.borrow_mut().w("rd", "ack_delay");
        self.pace_acks = on;
        if !on {
            // Any held ack goes out at the next poll.
            self.delayed_ack_deadline = None;
        }
    }

    /// Monotone per-connection progress: in-order bytes delivered up to
    /// OSR plus bytes the peer has cumulatively acknowledged. The host's
    /// slow-drain (slowloris) detector compares snapshots of this.
    pub fn progress_bytes(&self) -> u64 {
        self.rcv_nxt + self.snd_una
    }

    /// Queue an idle keepalive probe: an empty segment one unit behind
    /// `snd_nxt`, which the peer must answer with a bare ack (it is not an
    /// acceptable in-sequence segment). Returns `false` when no data has
    /// ever been sent — the probe sequence would be indistinguishable from
    /// a plain ack, so such connections cannot be probed.
    pub fn send_keepalive_probe(&mut self) -> bool {
        if self.snd_nxt == 0 {
            return false;
        }
        self.outbox.push_back((Some(self.snd_nxt - 1), Vec::new(), false));
        self.stats.keepalive_probes += 1;
        true
    }

    /// The current retransmission timeout (exposed so tests can verify
    /// exponential backoff).
    pub fn current_rto(&self) -> Dur {
        self.rto
    }

    /// RTO expirations since the cumulative ack last advanced.
    pub fn consecutive_retries(&self) -> u32 {
        self.consecutive_rtx
    }

    pub fn take_signals(&mut self) -> Vec<CongSignal> {
        self.signals.drain(..).collect()
    }

    pub fn take_events(&mut self) -> Vec<RdEvent> {
        self.events.drain(..).collect()
    }

    pub fn has_output(&self) -> bool {
        !self.outbox.is_empty() || self.ack_pending
    }

    pub fn poll_deadline(&self) -> Option<Time> {
        match (self.rto_deadline, self.delayed_ack_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    pub fn on_tick(&mut self, now: Time) {
        if self.rto_deadline.is_some_and(|d| now >= d) {
            self.log.borrow_mut().w("rd", "rto");
            if self.all_acked() {
                self.rto_deadline = None;
                return;
            }
            if self.consecutive_rtx >= MAX_RETRIES {
                // Retry budget spent with zero cumulative-ack progress:
                // stop the timer and tell the stack to abort.
                self.rto_deadline = None;
                self.events.push_back(RdEvent::RetriesExhausted);
                return;
            }
            self.consecutive_rtx += 1;
            self.stats.timeouts += 1;
            // Ack-clocked recovery after the timeout: partial acks will
            // pull out the remaining holes without waiting a full RTO
            // each.
            self.in_recovery = true;
            self.recover = self.snd_nxt;
            self.retransmit_first_unacked(now);
            self.signals.push_back(CongSignal::TimeoutLoss);
            self.rto = Dur((self.rto.0 * 2).min(MAX_RTO.0));
            self.rto_deadline = Some(now + self.rto);
        }
    }

    /// Receiver progress (used by the stack/tests).
    pub fn rcv_next_offset(&self) -> u64 {
        self.rcv_nxt
    }

    pub fn peer_fin_reached(&self) -> bool {
        self.peer_fin_reached
    }

    /// Deterministic behavioral fingerprint for the RD contract checker
    /// (see [`crate::fingerprint`]): equal keys must imply behaviorally
    /// identical endpoints under the contract's drive alphabet. Counters
    /// in [`RdStats`] are deliberately excluded — they never influence
    /// future behavior.
    pub fn contract_key(&self) -> Vec<u64> {
        let mut acc = fp::fold(
            fp::SEED,
            [
                self.snd_isn as u64,
                self.rcv_isn as u64,
                self.snd_una,
                self.snd_nxt,
                self.flight_bytes as u64,
                self.fin_off.map_or(u64::MAX, |o| o),
                self.fin_sent_at.map_or(u64::MAX, |t| t.0),
                (self.fin_retransmitted as u64) | (self.fin_acked as u64) << 1,
                self.dupacks as u64,
                (self.in_recovery as u64) | (self.recover << 1),
                self.srtt.map_or(u64::MAX, |d| d.0),
                self.rttvar.0,
                self.rto.0,
                self.rto_deadline.map_or(u64::MAX, |t| t.0),
                self.consecutive_rtx as u64,
                self.rcv_nxt,
                self.peer_fin_off.map_or(u64::MAX, |o| o),
                (self.peer_fin_reached as u64)
                    | (self.ack_pending as u64) << 1
                    | (self.ack_forced as u64) << 2
                    | (self.pace_acks as u64) << 3
                    | (self.use_sack as u64) << 4,
                self.delayed_ack_deadline.map_or(u64::MAX, |t| t.0),
            ],
        );
        for (&off, f) in &self.in_flight {
            acc = fp::fold(
                acc,
                [
                    off,
                    f.data.len() as u64,
                    f.sent_at.0,
                    f.first_sent.0,
                    (f.retransmitted as u64) | (f.sacked as u64) << 1,
                ],
            );
        }
        for (&s, &e) in &self.ooo {
            acc = fp::fold(acc, [s, e]);
        }
        for (off, payload, is_fin) in &self.outbox {
            acc = fp::mix(acc, off.map_or(u64::MAX, |o| o));
            acc = fp::fold_bytes(acc, payload);
            acc = fp::mix(acc, *is_fin as u64);
        }
        acc = fp::fold_bytes(acc, format!("{:?}", self.signals).as_bytes());
        acc = fp::fold_bytes(acc, format!("{:?}", self.events).as_bytes());
        vec![acc]
    }
}

// ---------------------------------------------------------------------
// Contract driver (slverify::contracts::RdContract drives a *real*
// sender/receiver endpoint pair through this, exactly as CongCtrl drives
// RateController).
// ---------------------------------------------------------------------

/// The per-endpoint operations the RD assume/guarantee contract
/// exercises. Implemented by the shipped [`ReliableDelivery`] and by the
/// [`BuggyRd`] mutation canary (used as the sender arm).
pub trait RdDriver {
    fn push_segment(&mut self, now: Time, data: Vec<u8>);
    fn can_accept(&self) -> bool;
    fn on_packet(&mut self, now: Time, pkt: &Packet, fin: bool);
    fn poll_packet(&mut self, now: Time) -> Option<(Packet, bool)>;
    fn on_tick(&mut self, now: Time);
    fn poll_deadline(&self) -> Option<Time>;
    fn take_events(&mut self) -> Vec<RdEvent>;
    fn all_acked(&self) -> bool;
    fn rcv_next_offset(&self) -> u64;
    fn seq_validity(&self, wire_seq: u32) -> SeqValidity;
    /// See [`ReliableDelivery::contract_key`].
    fn contract_key(&self) -> Vec<u64>;
    fn box_clone(&self) -> Box<dyn RdDriver>;
}

impl Clone for Box<dyn RdDriver> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

impl RdDriver for ReliableDelivery {
    fn push_segment(&mut self, now: Time, data: Vec<u8>) {
        ReliableDelivery::push_segment(self, now, data)
    }
    fn can_accept(&self) -> bool {
        ReliableDelivery::can_accept(self)
    }
    fn on_packet(&mut self, now: Time, pkt: &Packet, fin: bool) {
        ReliableDelivery::on_packet(self, now, pkt, fin)
    }
    fn poll_packet(&mut self, now: Time) -> Option<(Packet, bool)> {
        ReliableDelivery::poll_packet(self, now)
    }
    fn on_tick(&mut self, now: Time) {
        ReliableDelivery::on_tick(self, now)
    }
    fn poll_deadline(&self) -> Option<Time> {
        ReliableDelivery::poll_deadline(self)
    }
    fn take_events(&mut self) -> Vec<RdEvent> {
        ReliableDelivery::take_events(self)
    }
    fn all_acked(&self) -> bool {
        ReliableDelivery::all_acked(self)
    }
    fn rcv_next_offset(&self) -> u64 {
        ReliableDelivery::rcv_next_offset(self)
    }
    fn seq_validity(&self, wire_seq: u32) -> SeqValidity {
        ReliableDelivery::seq_validity(self, wire_seq)
    }
    fn contract_key(&self) -> Vec<u64> {
        ReliableDelivery::contract_key(self)
    }
    fn box_clone(&self) -> Box<dyn RdDriver> {
        Box::new(self.clone())
    }
}

/// Mutation canary for the RD contract, mirroring [`slcc::BuggyDeflate`]:
/// a plausible refactor slip concludes that one retransmission per segment
/// is enough ("the first retry already covers the loss") and silently
/// drops every RTO retransmission after the first — so a lost retry is
/// never recovered and the byte is never delivered. Never wired into
/// product code; it exists so `RdContract` has a concrete counterexample
/// for its bounded-delivery obligation.
#[derive(Clone)]
pub struct BuggyRd {
    inner: ReliableDelivery,
    rtos: u32,
}

impl BuggyRd {
    pub fn new(snd_isn: u32, rcv_isn: u32, log: SharedLog) -> BuggyRd {
        BuggyRd { inner: ReliableDelivery::new(snd_isn, rcv_isn, log), rtos: 0 }
    }
}

impl RdDriver for BuggyRd {
    fn push_segment(&mut self, now: Time, data: Vec<u8>) {
        self.inner.push_segment(now, data)
    }
    fn can_accept(&self) -> bool {
        self.inner.can_accept()
    }
    fn on_packet(&mut self, now: Time, pkt: &Packet, fin: bool) {
        self.inner.on_packet(now, pkt, fin)
    }
    fn poll_packet(&mut self, now: Time) -> Option<(Packet, bool)> {
        self.inner.poll_packet(now)
    }
    fn on_tick(&mut self, now: Time) {
        let queued = self.inner.outbox.len();
        let timeouts = self.inner.stats.timeouts;
        self.inner.on_tick(now);
        if self.inner.stats.timeouts > timeouts {
            self.rtos += 1;
            if self.rtos >= 2 {
                // THE BUG: swallow the retransmission this RTO queued.
                self.inner.outbox.truncate(queued);
            }
        }
    }
    fn poll_deadline(&self) -> Option<Time> {
        self.inner.poll_deadline()
    }
    fn take_events(&mut self) -> Vec<RdEvent> {
        self.inner.take_events()
    }
    fn all_acked(&self) -> bool {
        self.inner.all_acked()
    }
    fn rcv_next_offset(&self) -> u64 {
        self.inner.rcv_next_offset()
    }
    fn seq_validity(&self, wire_seq: u32) -> SeqValidity {
        self.inner.seq_validity(wire_seq)
    }
    fn contract_key(&self) -> Vec<u64> {
        let mut k = self.inner.contract_key();
        k.push(self.rtos as u64);
        k
    }
    fn box_clone(&self) -> Box<dyn RdDriver> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rd() -> ReliableDelivery {
        ReliableDelivery::new(1000, 2000, slmetrics::shared())
    }

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    /// Build an inbound packet as the peer would (peer's snd_isn = our
    /// rcv_isn = 2000).
    fn peer_data(seq_off: u64, data: &[u8], ack_off: Option<u64>) -> Packet {
        let mut p = Packet::default();
        p.rd.seq = 2000u32.wrapping_add(1).wrapping_add(seq_off as u32);
        if let Some(a) = ack_off {
            p.rd.has_ack = true;
            p.rd.ack = 1000u32.wrapping_add(1).wrapping_add(a as u32);
        }
        p.payload = data.to_vec();
        p
    }

    #[test]
    fn push_assigns_sequential_offsets() {
        let mut r = rd();
        r.push_segment(t(0), vec![1; 100]);
        r.push_segment(t(0), vec![2; 50]);
        let (p1, _) = r.poll_packet(t(0)).unwrap();
        let (p2, _) = r.poll_packet(t(0)).unwrap();
        assert_eq!(p1.rd.seq, 1001);
        assert_eq!(p2.rd.seq, 1101);
        assert_eq!(r.bytes_unacked(), 150);
    }

    #[test]
    fn cumulative_ack_clears_in_flight() {
        let mut r = rd();
        r.push_segment(t(0), vec![0; 100]);
        r.push_segment(t(0), vec![0; 100]);
        r.on_packet(t(50), &peer_data(0, &[], Some(200)), false);
        assert!(r.all_acked());
        let sigs = r.take_signals();
        assert_eq!(sigs.len(), 1);
        match sigs[0] {
            CongSignal::Acked { bytes, rtt } => {
                assert_eq!(bytes, 200);
                assert_eq!(rtt, Some(Dur::from_millis(50)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn out_of_order_delivery_goes_up_immediately() {
        // The paper: "segments may be delivered out of order by the RD
        // sublayer" — reordering is OSR's job.
        let mut r = rd();
        r.on_packet(t(0), &peer_data(100, &[9; 50], None), false);
        let ev = r.take_events();
        assert_eq!(ev, vec![RdEvent::Delivered { offset: 100, data: vec![9; 50] }]);
        // The cumulative ack still says 0.
        let (ack, _) = r.poll_packet(t(0)).unwrap();
        assert_eq!(ack.rd.ack, 2001);
        // And a SACK range advertises the island.
        assert_eq!(ack.rd.sack.len(), 1);
        assert_eq!(ack.rd.sack[0].start, 2001 + 100);
        assert_eq!(ack.rd.sack[0].end, 2001 + 150);
    }

    #[test]
    fn duplicates_are_dropped_exactly_once() {
        let mut r = rd();
        r.on_packet(t(0), &peer_data(0, &[7; 100], None), false);
        assert_eq!(r.take_events().len(), 1);
        r.on_packet(t(1), &peer_data(0, &[7; 100], None), false);
        assert!(r.take_events().is_empty(), "duplicate must not be redelivered");
        assert_eq!(r.stats.duplicate_payload_dropped, 1);
    }

    #[test]
    fn partial_overlap_delivers_only_novel_bytes() {
        let mut r = rd();
        r.on_packet(t(0), &peer_data(0, &[1; 100], None), false);
        r.take_events();
        // Retransmission covering [50, 150): only [100, 150) is new.
        r.on_packet(t(1), &peer_data(50, &[2; 100], None), false);
        let ev = r.take_events();
        assert_eq!(ev, vec![RdEvent::Delivered { offset: 100, data: vec![2; 50] }]);
        assert_eq!(r.rcv_next_offset(), 150);
    }

    #[test]
    fn cumulative_ack_advances_over_merged_ranges() {
        let mut r = rd();
        r.on_packet(t(0), &peer_data(100, &[2; 100], None), false);
        assert_eq!(r.rcv_next_offset(), 0);
        r.on_packet(t(1), &peer_data(0, &[1; 100], None), false);
        assert_eq!(r.rcv_next_offset(), 200);
    }

    #[test]
    fn three_dupacks_trigger_fast_retransmit_and_signal() {
        let mut r = rd();
        r.push_segment(t(0), vec![0; 100]);
        r.push_segment(t(0), vec![0; 100]);
        while r.poll_packet(t(0)).is_some() {}
        for i in 0..3 {
            r.on_packet(t(10 + i), &peer_data(0, &[], Some(0)), false);
        }
        assert_eq!(r.stats.fast_retransmits, 1);
        assert!(r.take_signals().contains(&CongSignal::DupAckLoss));
        // The retransmission is the first unacked segment.
        let (p, _) = r.poll_packet(t(20)).unwrap();
        assert_eq!(p.rd.seq, 1001);
        assert_eq!(p.payload.len(), 100);
    }

    #[test]
    fn sacked_segments_are_skipped_on_retransmit() {
        let mut r = rd();
        r.push_segment(t(0), vec![1; 100]); // offsets 0..100
        r.push_segment(t(0), vec![2; 100]); // offsets 100..200
        while r.poll_packet(t(0)).is_some() {}
        // Peer SACKs the *first* segment but cumulative ack stays 0
        // (contrived, but exercises the skip logic).
        let mut p = peer_data(0, &[], Some(0));
        p.rd.sack = vec![SackRange { start: 1001, end: 1001 + 100 }];
        for _ in 0..3 {
            r.on_packet(t(10), &p.clone(), false);
        }
        let (rtx, _) = r.poll_packet(t(20)).unwrap();
        assert_eq!(rtx.rd.seq, 1101, "retransmit must skip the SACKed segment");
        assert!(r.stats.sacked_skips > 0);
    }

    #[test]
    fn rto_fires_and_backs_off() {
        let mut r = rd();
        r.push_segment(t(0), vec![0; 100]);
        while r.poll_packet(t(0)).is_some() {}
        let d1 = r.poll_deadline().unwrap();
        r.on_tick(d1);
        assert_eq!(r.stats.retransmits, 1);
        assert!(r.take_signals().contains(&CongSignal::TimeoutLoss));
        let d2 = r.poll_deadline().unwrap();
        assert!(d2.since(d1) > Dur::ZERO);
        assert_eq!(d2.since(d1), Dur::from_secs(2), "doubled RTO");
    }

    #[test]
    fn karn_rule_skips_retransmitted_samples() {
        let mut r = rd();
        r.push_segment(t(0), vec![0; 100]);
        while r.poll_packet(t(0)).is_some() {}
        let d = r.poll_deadline().unwrap();
        r.on_tick(d); // retransmitted
        r.on_packet(t(5000), &peer_data(0, &[], Some(100)), false);
        // The ack closes the RTO-recovery episode (FullAck); Karn's rule
        // still forbids an RTT sample from the retransmitted segment.
        match r.take_signals().last() {
            Some(CongSignal::FullAck { rtt, .. }) => assert_eq!(*rtt, None),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn fin_consumes_one_unit_and_is_acked() {
        let mut r = rd();
        r.push_segment(t(0), vec![0; 10]);
        r.send_fin(t(0));
        let (_, f1) = r.poll_packet(t(0)).unwrap();
        assert!(!f1);
        let (fin_pkt, is_fin) = r.poll_packet(t(0)).unwrap();
        assert!(is_fin);
        assert_eq!(fin_pkt.rd.seq, 1011);
        // Ack everything incl. the FIN.
        r.on_packet(t(10), &peer_data(0, &[], Some(11)), false);
        assert!(r.fin_acked());
        assert!(r.all_acked());
        assert!(r.take_events().contains(&RdEvent::LocalFinAcked));
    }

    #[test]
    fn peer_fin_reached_only_in_sequence() {
        let mut r = rd();
        // FIN at offset 100 (after 100 bytes we haven't seen yet).
        let mut p = peer_data(100, &[], None);
        p.rd.seq = 2001 + 100;
        r.on_packet(t(0), &p, true);
        assert!(!r.peer_fin_reached());
        // Now the data arrives; the FIN is reached.
        r.on_packet(t(1), &peer_data(0, &[3; 100], None), false);
        assert!(r.peer_fin_reached());
        assert!(r.take_events().contains(&RdEvent::PeerFinReached));
        // The ack covers the FIN: 100 bytes + 1.
        let (ack, _) = r.poll_packet(t(2)).unwrap();
        assert_eq!(ack.rd.ack, 2001 + 101);
    }

    #[test]
    fn fin_retransmitted_on_rto() {
        let mut r = rd();
        r.send_fin(t(0));
        while r.poll_packet(t(0)).is_some() {}
        let d = r.poll_deadline().unwrap();
        r.on_tick(d);
        let (p, is_fin) = r.poll_packet(d).unwrap();
        assert!(is_fin);
        assert_eq!(p.rd.seq, 1001);
    }

    #[test]
    fn pure_ack_emitted_when_owed() {
        let mut r = rd();
        r.on_packet(t(0), &peer_data(0, &[1; 10], None), false);
        let (ack, is_fin) = r.poll_packet(t(0)).unwrap();
        assert!(!is_fin);
        assert!(ack.payload.is_empty());
        assert_eq!(ack.rd.ack, 2011);
        assert!(r.poll_packet(t(0)).is_none(), "ack owed only once");
    }

    #[test]
    fn unwrap_handles_sequence_wraparound() {
        // near the 32-bit boundary
        // base = isn+1 = u32::MAX - 9; wire 5 unwraps to raw offset 15,
        // which near `2^32 - 20` means the *second* lap: 2^32 + 15.
        let off = ReliableDelivery::unwrap(u32::MAX - 10, 5, (1u64 << 32) - 20);
        assert_eq!(off, (1u64 << 32) + 15);
    }

    #[test]
    fn merge_range_coalesces() {
        let mut m = BTreeMap::new();
        ReliableDelivery::merge_range(&mut m, 10, 20);
        ReliableDelivery::merge_range(&mut m, 30, 40);
        ReliableDelivery::merge_range(&mut m, 15, 35);
        assert_eq!(m.into_iter().collect::<Vec<_>>(), vec![(10, 40)]);
    }

    #[test]
    fn merge_range_adjacent() {
        let mut m = BTreeMap::new();
        ReliableDelivery::merge_range(&mut m, 0, 10);
        ReliableDelivery::merge_range(&mut m, 10, 20);
        assert_eq!(m.into_iter().collect::<Vec<_>>(), vec![(0, 20)]);
    }

    #[test]
    fn rto_backs_off_exponentially_then_gives_up() {
        let mut r = rd();
        r.push_segment(t(0), vec![0; 100]);
        let _ = r.poll_packet(t(0));
        let mut now;
        let mut prev_rto = r.current_rto();
        for i in 1..=MAX_RETRIES {
            now = r.poll_deadline().expect("timer armed while unacked");
            r.on_tick(now);
            assert_eq!(r.consecutive_retries(), i);
            // Doubled, up to the 60 s ceiling.
            assert_eq!(r.current_rto(), Dur((prev_rto.0 * 2).min(60_000_000_000)));
            prev_rto = r.current_rto();
            let (pkt, _) = r.poll_packet(now).expect("retransmission queued");
            assert_eq!(pkt.rd.seq, 1001);
        }
        assert!(!r.take_events().contains(&RdEvent::RetriesExhausted));
        // One more expiry crosses the budget: no retransmission, the
        // timer stops, and the give-up event surfaces.
        now = r.poll_deadline().unwrap();
        r.on_tick(now);
        assert_eq!(r.take_events(), vec![RdEvent::RetriesExhausted]);
        assert!(r.poll_packet(now).is_none());
        assert!(r.poll_deadline().is_none(), "no retry timer after give-up");
        assert_eq!(r.stats.retransmits as u32, MAX_RETRIES);
    }

    #[test]
    fn ack_progress_resets_retry_budget() {
        let mut r = rd();
        r.push_segment(t(0), vec![0; 100]);
        r.push_segment(t(0), vec![1; 100]);
        let _ = r.poll_packet(t(0));
        let _ = r.poll_packet(t(0));
        let d = r.poll_deadline().unwrap();
        r.on_tick(d);
        assert_eq!(r.consecutive_retries(), 1);
        // A cumulative ack covering the first segment is progress.
        r.on_packet(d + Dur::from_millis(1), &peer_data(0, &[], Some(100)), false);
        assert_eq!(r.consecutive_retries(), 0);
    }

    #[test]
    fn ack_pacing_defers_then_flushes_pure_acks() {
        let mut r = rd();
        r.set_ack_pacing(true);
        r.on_packet(t(0), &peer_data(0, &[1; 10], None), false);
        assert!(r.poll_packet(t(0)).is_none(), "first poll arms the delay");
        assert_eq!(r.stats.acks_paced, 1);
        let d = r.poll_deadline().expect("delayed-ack deadline armed");
        assert_eq!(d, t(50));
        assert!(r.poll_packet(t(10)).is_none(), "still held before the deadline");
        let (ack, _) = r.poll_packet(d).expect("flushed at the deadline");
        assert_eq!(ack.rd.ack, 2011);
        assert!(r.poll_deadline().is_none(), "nothing left armed");
    }

    #[test]
    fn forced_acks_bypass_pacing() {
        let mut r = rd();
        r.set_ack_pacing(true);
        r.force_ack();
        assert!(r.poll_packet(t(0)).is_some(), "window updates are never held");
    }

    #[test]
    fn data_segment_carries_a_held_ack() {
        let mut r = rd();
        r.set_ack_pacing(true);
        r.on_packet(t(0), &peer_data(0, &[1; 10], None), false);
        assert!(r.poll_packet(t(0)).is_none());
        r.push_segment(t(1), vec![9; 10]);
        let (p, _) = r.poll_packet(t(1)).unwrap();
        assert_eq!(p.rd.ack, 2011, "ack rides the data segment");
        assert!(r.poll_packet(t(1)).is_none(), "no separate bare ack owed");
    }

    #[test]
    fn pacing_off_releases_a_held_ack() {
        let mut r = rd();
        r.set_ack_pacing(true);
        r.on_packet(t(0), &peer_data(0, &[1; 10], None), false);
        assert!(r.poll_packet(t(0)).is_none());
        r.set_ack_pacing(false);
        assert!(r.poll_packet(t(1)).is_some(), "released as soon as pacing ends");
    }

    #[test]
    fn progress_counts_both_directions() {
        let mut r = rd();
        assert_eq!(r.progress_bytes(), 0);
        r.on_packet(t(0), &peer_data(0, &[1; 10], None), false);
        assert_eq!(r.progress_bytes(), 10, "in-order receive progress");
        r.push_segment(t(1), vec![2; 20]);
        let _ = r.poll_packet(t(1));
        assert_eq!(r.progress_bytes(), 10, "unacked sends are not progress");
        r.on_packet(t(2), &peer_data(10, &[], Some(20)), false);
        assert_eq!(r.progress_bytes(), 30, "acked sends count");
    }

    #[test]
    fn keepalive_probe_is_behind_snd_nxt_and_gets_answered() {
        let mut r = rd();
        assert!(!r.send_keepalive_probe(), "nothing sent yet: unprobeable");
        r.push_segment(t(0), vec![5; 100]);
        let _ = r.poll_packet(t(0));
        r.on_packet(t(10), &peer_data(0, &[], Some(100)), false);
        assert!(r.send_keepalive_probe());
        let (probe, is_fin) = r.poll_packet(t(20)).unwrap();
        assert!(!is_fin);
        assert!(probe.payload.is_empty());
        assert_eq!(probe.rd.seq, 1001 + 99, "one unit behind snd_nxt");
        assert_eq!(r.stats.keepalive_probes, 1);

        // A peer that has received 100 bytes from us answers the probe
        // with a bare ack; an in-sequence pure ack stays unanswered.
        let mut peer = ReliableDelivery::new(2000, 1000, slmetrics::shared());
        let mut data = Packet::default();
        data.rd.seq = 1001;
        data.payload = vec![5; 100];
        peer.on_packet(t(5), &data, false);
        let _ = peer.poll_packet(t(5)); // drain the data ack
        let mut plain_ack = Packet::default();
        plain_ack.rd.seq = 1001 + 100;
        plain_ack.rd.has_ack = true;
        plain_ack.rd.ack = 2001;
        peer.on_packet(t(21), &plain_ack, false);
        assert!(peer.poll_packet(t(21)).is_none(), "in-sequence ack: silent");
        let mut probe_pkt = Packet::default();
        probe_pkt.rd.seq = 1001 + 99;
        probe_pkt.rd.has_ack = true;
        probe_pkt.rd.ack = 2001;
        peer.on_packet(t(22), &probe_pkt, false);
        let (answer, _) = peer.poll_packet(t(22)).expect("probe must be acked");
        assert!(answer.payload.is_empty());
        assert_eq!(answer.rd.ack, 1001 + 100);
    }
}
