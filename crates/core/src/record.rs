//! A **record sublayer** — demonstrating sublayer *insertion* (paper §5:
//! "Of particular interest to us is QUIC which has a clean sub-layering
//! between networking (the transport layer) and security (the record
//! layer)").
//!
//! [`RecordStack`] wraps any sublayered endpoint and inserts a security
//! sublayer *below DM* without modifying a single line of the four TCP
//! sublayers: each native packet is sealed into a record
//! (`magic · nonce · keystream-XOR(packet)`) with a per-direction nonce
//! counter and an integrity tag. Two `RecordStack`s with the same key
//! interoperate; a wrong key (or tampering) yields garbage that fails the
//! tag check and is dropped — the paper's fungibility story extended to
//! *adding* a sublayer, not just replacing one.
//!
//! The cipher is a keyed xorshift keystream with a polynomial tag — a
//! stand-in with the right *structure* (nonce, keystream, AEAD-shaped
//! interface), explicitly **not** cryptographically secure.

use crate::stack::SlTcpStack;
use netsim::{Stack, Time};

const RECORD_MAGIC: u8 = 0xE5;
const TAG_LEN: usize = 8;

/// Keystream generator: splitmix over (key, nonce, counter).
fn keystream_block(key: u64, nonce: u64, counter: u64) -> [u8; 8] {
    let mut x = key ^ nonce.rotate_left(17) ^ counter.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x.to_le_bytes()
}

fn xor_keystream(key: u64, nonce: u64, data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(8).enumerate() {
        let ks = keystream_block(key, nonce, i as u64);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

/// Keyed tag over the ciphertext (polynomial accumulate; not a MAC in the
/// cryptographic sense).
fn tag(key: u64, nonce: u64, data: &[u8]) -> [u8; TAG_LEN] {
    let mut acc = key ^ nonce.wrapping_mul(0xA076_1D64_78BD_642F);
    for &b in data {
        acc = acc.rotate_left(7) ^ b as u64;
        acc = acc.wrapping_mul(0x100_0000_01B3);
    }
    acc.to_be_bytes()
}

/// Seal a plaintext packet into a record.
pub fn seal(key: u64, nonce: u64, packet: &[u8]) -> Vec<u8> {
    let mut body = packet.to_vec();
    xor_keystream(key, nonce, &mut body);
    let t = tag(key, nonce, &body);
    let mut out = Vec::with_capacity(1 + 8 + TAG_LEN + body.len());
    out.push(RECORD_MAGIC);
    out.extend_from_slice(&nonce.to_be_bytes());
    out.extend_from_slice(&t);
    out.extend_from_slice(&body);
    out
}

/// Open a record; `None` when the magic, tag, or framing is wrong.
pub fn open(key: u64, record: &[u8]) -> Option<Vec<u8>> {
    if record.len() < 1 + 8 + TAG_LEN || record[0] != RECORD_MAGIC {
        return None;
    }
    let nonce = u64::from_be_bytes(record[1..9].try_into().unwrap());
    let (t, body) = record[9..].split_at(TAG_LEN);
    if tag(key, nonce, body) != t {
        return None;
    }
    let mut plain = body.to_vec();
    xor_keystream(key, nonce, &mut plain);
    Some(plain)
}

/// The record sublayer wrapped around a sublayered TCP endpoint.
pub struct RecordStack {
    pub inner: SlTcpStack,
    key: u64,
    tx_nonce: u64,
    pub sealed: u64,
    pub opened: u64,
    pub rejected: u64,
}

impl RecordStack {
    pub fn new(inner: SlTcpStack, key: u64) -> RecordStack {
        RecordStack { inner, key, tx_nonce: 0, sealed: 0, opened: 0, rejected: 0 }
    }
}

impl Stack for RecordStack {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        match open(self.key, frame) {
            Some(plain) => {
                self.opened += 1;
                self.inner.on_frame(now, &plain);
            }
            None => self.rejected += 1,
        }
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        let plain = self.inner.poll_transmit(now)?;
        let nonce = self.tx_nonce;
        self.tx_nonce += 1;
        self.sealed += 1;
        Some(seal(self.key, nonce, &plain))
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        self.inner.poll_deadline(now)
    }

    fn on_tick(&mut self, now: Time) {
        self.inner.on_tick(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::SlConfig;
    use netsim::{two_party, Dur, FaultProfile, LinkParams, StackNode};
    use tcp_mono::wire::Endpoint;

    #[test]
    fn seal_open_round_trip() {
        let pkt = b"some native packet bytes".to_vec();
        let rec = seal(42, 7, &pkt);
        assert_eq!(open(42, &rec), Some(pkt.clone()));
        assert_ne!(rec[17..].to_vec(), pkt, "payload must be transformed");
    }

    #[test]
    fn wrong_key_rejected() {
        let rec = seal(42, 7, b"secret");
        assert_eq!(open(43, &rec), None);
    }

    #[test]
    fn tampering_rejected() {
        let mut rec = seal(42, 7, b"secret payload here");
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0x01;
            assert_eq!(open(42, &bad), None, "flip at {i} must fail the tag");
        }
        rec.truncate(10);
        assert_eq!(open(42, &rec), None);
    }

    #[test]
    fn distinct_nonces_give_distinct_ciphertexts() {
        let a = seal(42, 1, b"same plaintext");
        let b = seal(42, 2, b"same plaintext");
        assert_ne!(a[17..], b[17..]);
    }

    #[test]
    fn encrypted_transfer_end_to_end() {
        // Two record-wrapped stacks over a lossy link: the inserted
        // sublayer is invisible to DM/CM/RD/OSR.
        let key = 0xC0DE_CAFE;
        let mut c = RecordStack::new(
            SlTcpStack::new(1, SlConfig::default(), slmetrics::shared()),
            key,
        );
        let mut s = RecordStack::new(
            SlTcpStack::new(2, SlConfig::default(), slmetrics::shared()),
            key,
        );
        s.inner.listen(80);
        let conn = c.inner.connect(Time::ZERO, 5000, Endpoint::new(2, 80));
        let params =
            LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile::lossy(0.1));
        let (mut net, nc, ns) = two_party(77, c, s, params);
        net.poll_all();
        net.run_until(Time::ZERO + Dur::from_secs(3));
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        net.node_mut::<StackNode<RecordStack>>(nc).stack.inner.send(conn, &data);
        net.poll_all();
        let mut got = Vec::new();
        for _ in 0..120 {
            let dl = net.now() + Dur::from_secs(1);
            net.run_until(dl);
            let st = &mut net.node_mut::<StackNode<RecordStack>>(ns).stack.inner;
            if let Some(&sc) = st.established().first() {
                got.extend(st.recv(sc));
            }
            net.poll_all();
            if got.len() >= data.len() {
                break;
            }
        }
        assert_eq!(got, data);
        let st = &net.node::<StackNode<RecordStack>>(nc).stack;
        assert!(st.sealed >= 20 && st.opened >= 20);
    }

    #[test]
    fn mismatched_keys_cannot_connect() {
        let mut c = RecordStack::new(
            SlTcpStack::new(1, SlConfig::default(), slmetrics::shared()),
            111,
        );
        let mut s = RecordStack::new(
            SlTcpStack::new(2, SlConfig::default(), slmetrics::shared()),
            222,
        );
        s.inner.listen(80);
        let conn = c.inner.connect(Time::ZERO, 5000, Endpoint::new(2, 80));
        let (mut net, nc, ns) =
            two_party(78, c, s, LinkParams::delay_only(Dur::from_millis(5)));
        net.poll_all();
        net.run_until(Time::ZERO + Dur::from_secs(5));
        assert_eq!(
            net.node::<StackNode<RecordStack>>(nc).stack.inner.state(conn),
            crate::cm::CmState::SynSent
        );
        assert!(net.node::<StackNode<RecordStack>>(ns).stack.rejected > 0);
    }

    #[test]
    fn plaintext_never_appears_on_the_wire() {
        // The native magic byte 0x5B must not lead any wire frame.
        let key = 9;
        let mut c = RecordStack::new(
            SlTcpStack::new(1, SlConfig::default(), slmetrics::shared()),
            key,
        );
        c.inner.connect(Time::ZERO, 5000, Endpoint::new(2, 80));
        let frame = c.poll_transmit(Time::ZERO).expect("SYN record");
        assert_eq!(frame[0], RECORD_MAGIC);
        assert!(crate::wire::Packet::decode(&frame).is_err());
    }
}
