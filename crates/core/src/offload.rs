//! Hardware-offload partition analysis (§3.1, §5 challenge 6).
//!
//! "Figure 5 offers a principled way to offload parts of TCP processing
//! to hardware. For example, OSR, which appears complex and likely to
//! evolve, is best relegated to software. A simple decomposition places
//! RD, CM, and DM in hardware; with more finagling and a modest
//! duplication of state, only RD can be placed in hardware."
//!
//! We cannot synthesize an FPGA, but the *architectural* quantity an
//! offload design cares about is measurable in software: how many values,
//! and how many bytes, cross the NIC/host boundary for a given cut point.
//! [`analyze`] reads those directly from the [`CrossingStats`] a real
//! workload produced on the sublayered stack (experiment E10).

use crate::stack::CrossingStats;
use std::fmt;

/// Which sublayers live on the NIC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Partition {
    /// Everything on the host (dumb NIC): the boundary is the wire itself.
    HostOnly,
    /// DM on the NIC (port steering, like modern RSS NICs).
    Dm,
    /// DM + CM on the NIC (connection setup offload, as in AccelTCP).
    DmCm,
    /// DM + CM + RD on the NIC — the paper's "simple decomposition":
    /// retransmission machinery in hardware, OSR (complex, evolving) in
    /// software.
    DmCmRd,
}

impl Partition {
    pub fn all() -> [Partition; 4] {
        [Partition::HostOnly, Partition::Dm, Partition::DmCm, Partition::DmCmRd]
    }

    pub fn name(&self) -> &'static str {
        match self {
            Partition::HostOnly => "host-only (dumb NIC)",
            Partition::Dm => "DM on NIC",
            Partition::DmCm => "DM+CM on NIC",
            Partition::DmCmRd => "DM+CM+RD on NIC (paper's cut)",
        }
    }
}

/// What crosses the NIC/host boundary for a given partition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundaryLoad {
    pub partition: Partition,
    /// Discrete crossings (PCIe transactions, conceptually).
    pub crossings: u64,
    /// Payload bytes crossing the boundary.
    pub bytes: u64,
    /// Does loss recovery stay on the NIC (no host wake-ups on loss)?
    pub retransmissions_on_nic: bool,
}

impl fmt::Display for BoundaryLoad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<32} crossings={:<8} bytes={:<10} rtx-on-nic={}",
            self.partition.name(),
            self.crossings,
            self.bytes,
            self.retransmissions_on_nic
        )
    }
}

/// Compute the boundary load for each partition from a workload's
/// crossing statistics.
pub fn analyze(cx: &CrossingStats, partition: Partition) -> BoundaryLoad {
    match partition {
        // Every wire packet crosses to the host.
        Partition::HostOnly => BoundaryLoad {
            partition,
            crossings: cx.packets_tx + cx.packets_rx,
            bytes: cx.wire_bytes_tx + cx.wire_bytes_rx,
            retransmissions_on_nic: false,
        },
        // DM on NIC: still every packet (DM only steers), minus nothing —
        // but the NIC now owns demux state, so the host is spared lookups,
        // not crossings.
        Partition::Dm => BoundaryLoad {
            partition,
            crossings: cx.packets_tx + cx.packets_rx,
            bytes: cx.wire_bytes_tx + cx.wire_bytes_rx,
            retransmissions_on_nic: false,
        },
        // DM+CM on NIC: handshake/teardown packets terminate on the NIC;
        // data and ack packets still cross. We approximate handshake
        // traffic as the difference between wire packets and RD-visible
        // packets — conservatively counted here as all packets (CM
        // consumes only a handful per connection).
        Partition::DmCm => BoundaryLoad {
            partition,
            crossings: cx.packets_tx + cx.packets_rx,
            bytes: cx.wire_bytes_tx + cx.wire_bytes_rx,
            retransmissions_on_nic: false,
        },
        // The paper's cut: only OSR-level values cross — segments down,
        // delivered segments up, summarized signals. Acks, retransmissions
        // and SACK never wake the host.
        Partition::DmCmRd => BoundaryLoad {
            partition,
            crossings: cx.osr_to_rd_segments + cx.rd_to_osr_segments + cx.signals_up,
            bytes: cx.osr_to_rd_bytes + cx.rd_to_osr_bytes,
            retransmissions_on_nic: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CrossingStats {
        CrossingStats {
            osr_to_rd_segments: 100,
            osr_to_rd_bytes: 100_000,
            rd_to_osr_segments: 0,
            rd_to_osr_bytes: 0,
            signals_up: 90,
            packets_tx: 130, // 100 data + retransmissions + handshake
            packets_rx: 110, // acks
            wire_bytes_tx: 135_000,
            wire_bytes_rx: 4_000,
        }
    }

    #[test]
    fn paper_cut_is_narrowest() {
        let cx = sample();
        let loads: Vec<BoundaryLoad> =
            Partition::all().iter().map(|&p| analyze(&cx, p)).collect();
        let paper = &loads[3];
        for other in &loads[..3] {
            assert!(
                paper.crossings < other.crossings,
                "paper cut {} vs {}",
                paper.crossings,
                other.crossings
            );
            assert!(paper.bytes <= other.bytes);
        }
        assert!(paper.retransmissions_on_nic);
        assert!(!loads[0].retransmissions_on_nic);
    }

    #[test]
    fn host_only_counts_everything() {
        let cx = sample();
        let l = analyze(&cx, Partition::HostOnly);
        assert_eq!(l.crossings, 240);
        assert_eq!(l.bytes, 139_000);
    }

    #[test]
    fn display_renders() {
        let s = format!("{}", analyze(&sample(), Partition::DmCmRd));
        assert!(s.contains("DM+CM+RD"));
        assert!(s.contains("rtx-on-nic=true"));
    }
}
