//! End-to-end tests: two sublayered stacks over the simulator.

use crate::cm::{CmScheme, CmState};
use crate::dm::ConnId;
use crate::stack::{KeepaliveConfig, SlConfig, SlTcpStack};
use netsim::{two_party, Dur, FaultProfile, LinkParams, SimNet, StackNode, Time, TransportError};
use tcp_mono::wire::Endpoint;

pub const A: u32 = 0x0A000001;
pub const B: u32 = 0x0A000002;

pub fn pair_with(
    seed: u64,
    params: LinkParams,
    config: SlConfig,
) -> (SimNet, usize, usize, ConnId) {
    let mut client = SlTcpStack::new(A, config.clone(), slmetrics::shared());
    let mut server = SlTcpStack::new(B, config, slmetrics::shared());
    server.listen(80);
    let conn = client.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, ns) = two_party(seed, client, server, params);
    net.poll_all();
    (net, nc, ns, conn)
}

pub fn pair(seed: u64, params: LinkParams) -> (SimNet, usize, usize, ConnId) {
    pair_with(seed, params, SlConfig::default())
}

pub fn stack(net: &mut SimNet, id: usize) -> &mut SlTcpStack {
    &mut net.node_mut::<StackNode<SlTcpStack>>(id).stack
}

pub fn run_for(net: &mut SimNet, d: Dur) {
    let deadline = net.now() + d;
    net.run_until(deadline);
}

/// Drive a one-way transfer until `data` arrives or patience runs out.
pub fn transfer(
    net: &mut SimNet,
    nc: usize,
    ns: usize,
    conn: ConnId,
    data: &[u8],
    rounds: usize,
) -> Vec<u8> {
    stack(net, nc).send(conn, data);
    net.poll_all();
    let mut got = Vec::new();
    for _ in 0..rounds {
        run_for(net, Dur::from_secs(1));
        if let Some(&sconn) = stack(net, ns).established().first() {
            got.extend(stack(net, ns).recv(sconn));
            // Let the receiver emit its window update.
            net.poll_all();
        }
        if got.len() >= data.len() {
            break;
        }
    }
    got
}

#[test]
fn handshake_establishes_both_sides() {
    let (mut net, nc, ns, conn) = pair(1, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(stack(&mut net, nc).state(conn), CmState::Established);
    assert_eq!(stack(&mut net, ns).established().len(), 1);
}

#[test]
fn bulk_transfer_clean_link() {
    let (mut net, nc, ns, conn) = pair(2, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
    let got = transfer(&mut net, nc, ns, conn, &data, 60);
    assert_eq!(got, data);
}

#[test]
fn transfer_over_lossy_link() {
    for seed in [3, 4, 5] {
        let params =
            LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile::lossy(0.1));
        let (mut net, nc, ns, conn) = pair(seed, params);
        run_for(&mut net, Dur::from_secs(3));
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 241) as u8).collect();
        let got = transfer(&mut net, nc, ns, conn, &data, 120);
        assert_eq!(got, data, "seed {seed}");
    }
}

#[test]
fn transfer_under_reorder_duplicate_corrupt() {
    let params = LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile {
        drop: 0.05,
        corrupt: 0.1,
        duplicate: 0.1,
        reorder: 0.15,
        reorder_delay: Dur::from_millis(15),
        ..Default::default()
    });
    let (mut net, nc, ns, conn) = pair(6, params);
    run_for(&mut net, Dur::from_secs(3));
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 239) as u8).collect();
    let got = transfer(&mut net, nc, ns, conn, &data, 120);
    assert_eq!(got, data);
    let corrupted =
        net.link_fault_stats(0, 0).corrupted + net.link_fault_stats(0, 1).corrupted;
    let bad = stack(&mut net, nc).stats.bad_packets + stack(&mut net, ns).stats.bad_packets;
    assert!(corrupted > 0, "fault injector should have corrupted something");
    assert!(bad > 0, "corrupted packets must fail the checksum (corrupted={corrupted})");
}

#[test]
fn bidirectional_transfer() {
    let (mut net, nc, ns, conn) = pair(7, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let up: Vec<u8> = (0..9_000u32).map(|i| (i % 13) as u8).collect();
    let down: Vec<u8> = (0..7_000u32).map(|i| (i % 17) as u8).collect();
    stack(&mut net, nc).send(conn, &up);
    let sconn = stack(&mut net, ns).established()[0];
    stack(&mut net, ns).send(sconn, &down);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(20));
    assert_eq!(stack(&mut net, ns).recv(sconn), up);
    assert_eq!(stack(&mut net, nc).recv(conn), down);
}

#[test]
fn graceful_close_both_directions() {
    let (mut net, nc, ns, conn) = pair(8, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    stack(&mut net, nc).send(conn, b"bye");
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    let sconn = stack(&mut net, ns).established()[0];
    stack(&mut net, nc).close(conn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    assert!(stack(&mut net, ns).peer_closed(sconn), "server saw the FIN");
    assert_eq!(stack(&mut net, ns).recv(sconn), b"bye");
    stack(&mut net, ns).close(sconn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(5));
    // Client (active closer) lingers in TIME_WAIT, then both disappear.
    let cs = stack(&mut net, nc).state(conn);
    assert!(
        matches!(cs, CmState::TimeWait | CmState::Closed),
        "client close state: {cs:?}"
    );
    run_for(&mut net, Dur::from_secs(15));
    assert_eq!(stack(&mut net, nc).conn_count(), 0);
    assert_eq!(stack(&mut net, ns).conn_count(), 0);
}

#[test]
fn close_under_loss_still_completes() {
    let params = LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile::lossy(0.2));
    let (mut net, nc, ns, conn) = pair(9, params);
    run_for(&mut net, Dur::from_secs(5));
    stack(&mut net, nc).send(conn, &vec![5u8; 5000]);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(10));
    stack(&mut net, nc).close(conn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(20));
    let sconn = stack(&mut net, ns).established().first().copied();
    if let Some(sconn) = sconn {
        assert!(stack(&mut net, ns).peer_closed(sconn));
        assert_eq!(stack(&mut net, ns).recv(sconn).len(), 5000);
    } else {
        // Server already fully closed — also fine; data must have been
        // readable before. (recv on an unknown conn returns empty.)
        panic!("server connection should still exist (no close from server side)");
    }
}

#[test]
fn no_listener_drops_are_counted() {
    let mut client = SlTcpStack::new(A, SlConfig::default(), slmetrics::shared());
    let server = SlTcpStack::new(B, SlConfig::default(), slmetrics::shared());
    let conn = client.connect(Time::ZERO, 5000, Endpoint::new(B, 81));
    let (mut net, nc, ns) = two_party(10, client, server, LinkParams::delay_only(Dur::from_millis(5)));
    net.poll_all();
    run_for(&mut net, Dur::from_secs(3));
    assert!(stack(&mut net, ns).stats.no_listener_drops > 0);
    assert!(stack(&mut net, ns).stats.stateless_rsts_sent > 0);
    // The stateless RST refuses the connection promptly ("connection
    // refused") instead of leaving the client to burn SYN retries.
    assert_eq!(stack(&mut net, nc).state(conn), CmState::Closed);
    assert_eq!(stack(&mut net, nc).conn_error(conn), Some(TransportError::Reset));
}

#[test]
fn every_rate_controller_transfers_correctly() {
    for (i, cc) in ["reno", "cubic", "rate-based", "fixed-window"].iter().enumerate() {
        let config = SlConfig { cc, ..Default::default() };
        let params = LinkParams::delay_only(Dur::from_millis(10))
            .with_fault(FaultProfile::lossy(0.05));
        let (mut net, nc, ns, conn) = pair_with(20 + i as u64, params, config);
        run_for(&mut net, Dur::from_secs(3));
        let data: Vec<u8> = (0..15_000u32).map(|i| (i % 199) as u8).collect();
        let got = transfer(&mut net, nc, ns, conn, &data, 120);
        assert_eq!(got, data, "cc={cc}");
    }
}

#[test]
fn bad_cc_name_is_a_typed_error_not_a_panic() {
    let config = SlConfig { cc: "vegas", ..Default::default() };
    let err = SlTcpStack::try_new(A, config, slmetrics::shared())
        .err()
        .expect("unknown controller must surface at construction");
    assert!(err.to_string().contains("vegas"), "{err}");
}

#[test]
fn cc_counters_observe_loss_recovery() {
    // A lossy transfer must leave visible traces in the per-connection
    // CC counters: window samples, loss events, recovery episodes.
    let params =
        LinkParams::delay_only(Dur::from_millis(10)).with_fault(FaultProfile::lossy(0.05));
    let (mut net, nc, ns, conn) = pair(21, params);
    run_for(&mut net, Dur::from_secs(3));
    let data: Vec<u8> = (0..60_000u32).map(|i| (i % 251) as u8).collect();
    let got = transfer(&mut net, nc, ns, conn, &data, 120);
    assert_eq!(got.len(), data.len());
    let cc = stack(&mut net, nc).conn_cc(conn).expect("live connection");
    assert!(cc.samples > 0, "{cc:?}");
    assert!(cc.cwnd_peak >= cc.cwnd_last, "{cc:?}");
    assert!(cc.ssthresh_last > 0, "newreno keeps a threshold: {cc:?}");
    assert!(cc.dupack_losses + cc.rto_resets > 0, "5% loss must show up: {cc:?}");
    if cc.dupack_losses > 0 {
        assert!(cc.fast_recoveries > 0, "dupack loss opens an episode: {cc:?}");
    }
}

#[test]
fn both_isn_generators_work() {
    for (i, isn) in ["clock", "secure"].iter().enumerate() {
        let config = SlConfig { isn, ..Default::default() };
        let (mut net, nc, ns, conn) =
            pair_with(30 + i as u64, LinkParams::delay_only(Dur::from_millis(5)), config);
        run_for(&mut net, Dur::from_secs(1));
        let data = vec![9u8; 5000];
        let got = transfer(&mut net, nc, ns, conn, &data, 30);
        assert_eq!(got, data, "isn={isn}");
        let _ = (nc, conn);
    }
}

#[test]
fn timer_based_cm_transfers_without_handshake() {
    let config = SlConfig {
        cm_scheme: CmScheme::TimerBased { quiet: Dur::from_secs(5) },
        ..Default::default()
    };
    let (mut net, nc, ns, conn) = pair_with(40, LinkParams::delay_only(Dur::from_millis(5)), config);
    run_for(&mut net, Dur::from_secs(1));
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 97) as u8).collect();
    let got = transfer(&mut net, nc, ns, conn, &data, 60);
    assert_eq!(got, data);
    // No SYN ever crossed: packet count should show no pure handshake
    // (indirect check: server never saw a SYN flag -> it established from
    // a data packet; established() returned it, which transfer() used).
    let _ = nc;
}

#[test]
fn timer_based_cm_closes_by_quiet_time() {
    let config = SlConfig {
        cm_scheme: CmScheme::TimerBased { quiet: Dur::from_secs(3) },
        ..Default::default()
    };
    let (mut net, nc, ns, conn) = pair_with(41, LinkParams::delay_only(Dur::from_millis(5)), config);
    run_for(&mut net, Dur::from_secs(1));
    let got = transfer(&mut net, nc, ns, conn, b"brief", 10);
    assert_eq!(got, b"brief");
    stack(&mut net, nc).close(conn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(10));
    assert_eq!(stack(&mut net, nc).conn_count(), 0, "quiet time should reap the conn");
}

#[test]
fn sublayer_state_is_fully_segregated() {
    // The paper's E6 claim: run a real workload and check the access log —
    // every field is touched by exactly one sublayer context.
    let log = slmetrics::shared();
    let mut client = SlTcpStack::new(A, SlConfig::default(), log.clone());
    let mut server = SlTcpStack::new(B, SlConfig::default(), slmetrics::shared());
    server.listen(80);
    let conn = client.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let (mut net, nc, ns) = two_party(
        50,
        client,
        server,
        LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile::lossy(0.05)),
    );
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    let data = vec![3u8; 30_000];
    let got = transfer(&mut net, nc, ns, conn, &data, 60);
    assert_eq!(got.len(), data.len());
    let m = slmetrics::InteractionMatrix::from_log(&log.borrow());
    assert_eq!(
        m.entanglement_score(),
        0,
        "sublayered stack must have zero shared fields; matrix: {:?}",
        m.shared_fields()
    );
    assert_eq!(m.interacting_pairs(), 0);
    // And all four sublayers actually ran.
    let ctxs = log.borrow().contexts().into_iter().map(String::from).collect::<Vec<_>>();
    for ctx in ["dm", "cm", "rd", "osr"] {
        assert!(ctxs.iter().any(|c| c == ctx), "{ctx} missing from {ctxs:?}");
    }
}

#[test]
fn fast_retransmit_and_sack_operate_under_loss() {
    let params = LinkParams::delay_only(Dur::from_millis(10))
        .with_fault(FaultProfile::lossy(0.05));
    let (mut net, nc, ns, conn) = pair(60, params);
    run_for(&mut net, Dur::from_secs(3));
    let data = vec![7u8; 120_000];
    let got = transfer(&mut net, nc, ns, conn, &data, 120);
    assert_eq!(got.len(), data.len());
    let rd = stack(&mut net, nc).rd_stats(conn).unwrap();
    assert!(rd.fast_retransmits > 0, "expected fast retransmits: {rd:?}");
}

#[test]
fn crossing_stats_populated() {
    let (mut net, nc, ns, conn) = pair(70, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let data = vec![1u8; 10_000];
    let got = transfer(&mut net, nc, ns, conn, &data, 30);
    assert_eq!(got.len(), data.len());
    let cx = stack(&mut net, nc).crossings.clone();
    assert_eq!(cx.osr_to_rd_bytes, 10_000);
    assert!(cx.osr_to_rd_segments >= 10);
    assert!(cx.signals_up > 0);
    assert!(cx.wire_bytes_tx > 10_000);
    let sx = stack(&mut net, ns).crossings.clone();
    assert_eq!(sx.rd_to_osr_bytes, 10_000);
}

#[test]
fn ecn_echo_slows_the_sender() {
    let (mut net, nc, ns, conn) = pair(80, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let sconn = stack(&mut net, ns).established()[0];
    // Mark ECN on the receiver: its next headers carry the echo.
    stack(&mut net, ns).mark_ecn(sconn);
    let data = vec![2u8; 40_000];
    let got = transfer(&mut net, nc, ns, conn, &data, 60);
    assert_eq!(got.len(), data.len());
}

#[test]
fn two_connections_demultiplex() {
    let mut client = SlTcpStack::new(A, SlConfig::default(), slmetrics::shared());
    let mut server = SlTcpStack::new(B, SlConfig::default(), slmetrics::shared());
    server.listen(80);
    server.listen(443);
    let c1 = client.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
    let c2 = client.connect(Time::ZERO, 5001, Endpoint::new(B, 443));
    let (mut net, nc, ns) = two_party(90, client, server, LinkParams::delay_only(Dur::from_millis(3)));
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    stack(&mut net, nc).send(c1, b"alpha");
    stack(&mut net, nc).send(c2, b"beta");
    net.poll_all();
    run_for(&mut net, Dur::from_secs(3));
    let sconns = stack(&mut net, ns).established();
    assert_eq!(sconns.len(), 2);
    let mut by_port: Vec<(u16, Vec<u8>)> = sconns
        .iter()
        .map(|&c| {
            let port = stack(&mut net, ns).tuple(c).unwrap().local.port;
            (port, stack(&mut net, ns).recv(c))
        })
        .collect();
    by_port.sort();
    assert_eq!(by_port, vec![(80, b"alpha".to_vec()), (443, b"beta".to_vec())]);
}

#[test]
fn syn_loss_recovered_by_cm_bootstrap_reliability() {
    let params = LinkParams::delay_only(Dur::from_millis(5)).with_fault(FaultProfile::lossy(1.0));
    let (mut net, nc, _ns, conn) = pair(95, params);
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(stack(&mut net, nc).state(conn), CmState::SynSent);
    net.heal_link(0);
    run_for(&mut net, Dur::from_secs(10));
    assert_eq!(stack(&mut net, nc).state(conn), CmState::Established);
}

#[test]
fn flow_control_limits_unread_receiver() {
    let (mut net, nc, ns, conn) = pair(96, LinkParams::delay_only(Dur::from_millis(2)));
    run_for(&mut net, Dur::from_secs(1));
    let data = vec![1u8; 200_000];
    stack(&mut net, nc).send(conn, &data);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(30));
    // Receiver never read: it can hold at most its buffer capacity.
    let sconn = stack(&mut net, ns).established()[0];
    let held = stack(&mut net, ns).recv(sconn);
    assert!(held.len() <= crate::osr::RCV_BUF_CAP);
    assert!(held.len() >= 50_000, "should have filled most of the window: {}", held.len());
    // After reading, the window update lets the rest flow.
    net.poll_all();
    let mut rest = Vec::new();
    for _ in 0..120 {
        run_for(&mut net, Dur::from_secs(1));
        rest.extend(stack(&mut net, ns).recv(sconn));
        net.poll_all();
        if held.len() + rest.len() >= data.len() {
            break;
        }
    }
    assert_eq!(held.len() + rest.len(), data.len());
}

#[test]
fn partition_mid_transfer_surfaces_clean_abort() {
    let (mut net, nc, _ns, conn) = pair(97, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    assert_eq!(stack(&mut net, nc).state(conn), CmState::Established);
    let data: Vec<u8> = (0..200_000u32).map(|i| (i % 199) as u8).collect();
    stack(&mut net, nc).send(conn, &data);
    net.poll_all();
    run_for(&mut net, Dur::from_millis(10));
    // The link dies for good mid-transfer. The sender must exhaust its
    // retry budget (with exponential backoff), then abort — not hang.
    net.set_link_up(0, false);
    run_for(&mut net, Dur::from_secs(300));
    assert_eq!(stack(&mut net, nc).state(conn), CmState::Closed);
    assert_eq!(
        stack(&mut net, nc).conn_error(conn),
        Some(TransportError::RetriesExhausted)
    );
    let rtx = stack(&mut net, nc).rd_stats(conn);
    assert!(rtx.is_none(), "aborted connection is reaped");
    assert!(net.is_idle(), "no timers may survive the abort (hot-loop check)");
    assert!(net.link_dir_stats(0, 0).partition_drops > 0);
}

#[test]
fn keepalive_detects_vanished_peer_on_both_sides() {
    let config = SlConfig {
        keepalive: Some(KeepaliveConfig {
            idle: Dur::from_secs(5),
            interval: Dur::from_secs(1),
            max_probes: 3,
        }),
        ..Default::default()
    };
    let (mut net, nc, ns, conn) =
        pair_with(98, LinkParams::delay_only(Dur::from_millis(5)), config);
    run_for(&mut net, Dur::from_secs(1));
    let got = transfer(&mut net, nc, ns, conn, b"hello", 10);
    assert_eq!(got, b"hello");
    let sconn = stack(&mut net, ns).established()[0];
    // Healthy but idle: probes are answered, the connection survives.
    run_for(&mut net, Dur::from_secs(30));
    assert_eq!(stack(&mut net, nc).state(conn), CmState::Established);
    let probes = stack(&mut net, nc).rd_stats(conn).unwrap().keepalive_probes;
    assert!(probes > 0, "idle connection must have been probed");
    // Partition: probes go unanswered and both sides give up cleanly.
    net.set_link_up(0, false);
    run_for(&mut net, Dur::from_secs(60));
    assert_eq!(stack(&mut net, nc).state(conn), CmState::Closed);
    assert_eq!(stack(&mut net, nc).conn_error(conn), Some(TransportError::PeerVanished));
    assert_eq!(stack(&mut net, ns).state(sconn), CmState::Closed);
    assert_eq!(stack(&mut net, ns).conn_error(sconn), Some(TransportError::PeerVanished));
    assert!(net.is_idle(), "both endpoints fully quiesce after the aborts");
}

#[test]
fn local_abort_resets_peer() {
    let (mut net, nc, ns, conn) = pair(99, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let got = transfer(&mut net, nc, ns, conn, b"payload", 10);
    assert_eq!(got, b"payload");
    let sconn = stack(&mut net, ns).established()[0];
    let now = net.now();
    stack(&mut net, nc).abort(now, conn, TransportError::RetriesExhausted);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    assert_eq!(stack(&mut net, ns).state(sconn), CmState::Closed);
    assert_eq!(stack(&mut net, ns).conn_error(sconn), Some(TransportError::Reset));
}

#[test]
fn zero_window_probe_survives_lost_window_update() {
    let (mut net, nc, ns, conn) = pair(100, LinkParams::delay_only(Dur::from_millis(2)));
    run_for(&mut net, Dur::from_secs(1));
    let data = vec![3u8; 120_000];
    stack(&mut net, nc).send(conn, &data);
    net.poll_all();
    // Receiver does not read: the window slams shut and the sender stalls.
    run_for(&mut net, Dur::from_secs(30));
    let sconn = stack(&mut net, ns).established()[0];
    // Drain the receive buffer while the link is down, so the window
    // update announcing the reopened window is lost.
    net.set_link_up(0, false);
    let mut got = stack(&mut net, ns).recv(sconn);
    net.poll_all();
    run_for(&mut net, Dur::from_secs(2));
    net.set_link_up(0, true);
    // Only the persist machinery can discover the reopened window now.
    for _ in 0..180 {
        run_for(&mut net, Dur::from_secs(1));
        got.extend(stack(&mut net, ns).recv(sconn));
        net.poll_all();
        if got.len() >= data.len() {
            break;
        }
    }
    assert_eq!(got.len(), data.len(), "transfer must not deadlock on the lost update");
    assert!(got.iter().all(|&b| b == 3));
    let probes = stack(&mut net, nc).osr_stats(conn).unwrap().zero_window_probes;
    assert!(probes > 0, "the stall must have been probed");
}


// ---------------------------------------------------------------------------
// Adversarial robustness: RFC 5961 defenses and resource governance.
// ---------------------------------------------------------------------------

use crate::osr::SND_BUF_CAP;
use crate::stack::MAX_HALF_OPEN;
use crate::wire::Packet;
use netsim::Stack as _;

/// Forge a packet the way a blind attacker would: correct addressing,
/// attacker-chosen flags and sequence, freshly sealed checksum.
fn forged(src: Endpoint, dst: Endpoint) -> Packet {
    let mut pkt = Packet { src_addr: src.addr, dst_addr: dst.addr, ..Packet::default() };
    pkt.dm.src_port = src.port;
    pkt.dm.dst_port = dst.port;
    pkt.osr.rcv_wnd = u16::MAX;
    pkt
}

fn established_pair(seed: u64) -> (SimNet, usize, usize, ConnId, ConnId) {
    let (mut net, nc, ns, conn) = pair(seed, LinkParams::delay_only(Dur::from_millis(5)));
    run_for(&mut net, Dur::from_secs(1));
    let sconn = *stack(&mut net, ns).established().first().expect("not established");
    (net, nc, ns, conn, sconn)
}

#[test]
fn inwindow_blind_rst_is_challenged_not_fatal() {
    let (mut net, nc, ns, conn, sconn) = established_pair(301);
    let expected = stack(&mut net, ns).expected_wire_seq(sconn).unwrap();
    let mut rst = forged(Endpoint::new(A, 5000), Endpoint::new(B, 80));
    rst.cm.flags.rst = true;
    rst.rd.seq = expected.wrapping_add(100); // in window, not exact
    let now = net.now();
    let frame = rst.encode();
    stack(&mut net, ns).on_frame(now, &frame);
    assert_eq!(stack(&mut net, ns).established().len(), 1, "blind RST must not kill");
    assert_eq!(stack(&mut net, ns).challenge_acks(), 1);
    run_for(&mut net, Dur::from_secs(1));
    assert_eq!(stack(&mut net, nc).state(conn), CmState::Established);
    assert_eq!(stack(&mut net, ns).established().len(), 1);
}

#[test]
fn exact_sequence_rst_still_resets() {
    let (mut net, _nc, ns, _conn, sconn) = established_pair(302);
    let expected = stack(&mut net, ns).expected_wire_seq(sconn).unwrap();
    let mut rst = forged(Endpoint::new(A, 5000), Endpoint::new(B, 80));
    rst.cm.flags.rst = true;
    rst.rd.seq = expected;
    let now = net.now();
    let frame = rst.encode();
    stack(&mut net, ns).on_frame(now, &frame);
    assert!(stack(&mut net, ns).established().is_empty());
    assert_eq!(stack(&mut net, ns).conn_error(sconn), Some(TransportError::Reset));
}

#[test]
fn outside_window_rst_is_ignored_silently() {
    let (mut net, _nc, ns, _conn, sconn) = established_pair(303);
    let expected = stack(&mut net, ns).expected_wire_seq(sconn).unwrap();
    let mut rst = forged(Endpoint::new(A, 5000), Endpoint::new(B, 80));
    rst.cm.flags.rst = true;
    rst.rd.seq = expected.wrapping_sub(100_000);
    let now = net.now();
    let frame = rst.encode();
    stack(&mut net, ns).on_frame(now, &frame);
    assert_eq!(stack(&mut net, ns).established().len(), 1);
    assert_eq!(stack(&mut net, ns).challenge_acks(), 0, "outside-window RST is noise");
}

#[test]
fn inwindow_syn_is_challenged_not_reset() {
    let (mut net, nc, ns, conn, _sconn) = established_pair(304);
    let mut syn = forged(Endpoint::new(A, 5000), Endpoint::new(B, 80));
    syn.cm.flags.syn = true;
    syn.cm.isn = 0xDEAD;
    let now = net.now();
    let frame = syn.encode();
    stack(&mut net, ns).on_frame(now, &frame);
    assert_eq!(stack(&mut net, ns).established().len(), 1, "spoofed SYN must not kill");
    assert_eq!(stack(&mut net, ns).challenge_acks(), 1);
    run_for(&mut net, Dur::from_secs(1));
    assert_eq!(stack(&mut net, nc).state(conn), CmState::Established);
    assert_eq!(stack(&mut net, ns).established().len(), 1);
}

#[test]
fn syn_flood_is_bounded_and_falls_back_to_cookies() {
    let mut server = SlTcpStack::new(B, SlConfig::default(), slmetrics::shared());
    server.listen(80);
    for i in 0..100u32 {
        let mut syn = forged(Endpoint::new(0xC000_0000 + i, 1000), Endpoint::new(B, 80));
        syn.cm.flags.syn = true;
        syn.cm.isn = 7000 + i;
        server.on_frame(Time::ZERO, &syn.encode());
    }
    assert_eq!(server.half_open_count(), MAX_HALF_OPEN);
    assert_eq!(server.conn_count(), MAX_HALF_OPEN, "flood must not grow state");
    assert_eq!(server.stats.syn_cookies_sent, 100 - MAX_HALF_OPEN as u64);
    assert_eq!(server.stats.half_open_evictions, 0, "fresh half-opens are not evictable");
}

#[test]
fn syn_cookie_completion_establishes_connection() {
    let mut server = SlTcpStack::new(B, SlConfig::default(), slmetrics::shared());
    server.listen(80);
    for i in 0..MAX_HALF_OPEN as u32 {
        let mut syn = forged(Endpoint::new(0xC000_0000 + i, 1000), Endpoint::new(B, 80));
        syn.cm.flags.syn = true;
        syn.cm.isn = 7000 + i;
        server.on_frame(Time::ZERO, &syn.encode());
    }
    let client_ep = Endpoint::new(0xC100_0000, 1234);
    let mut syn = forged(client_ep, Endpoint::new(B, 80));
    syn.cm.flags.syn = true;
    syn.cm.isn = 42_000;
    server.on_frame(Time::ZERO, &syn.encode());
    assert_eq!(server.stats.syn_cookies_sent, 1);
    assert_eq!(server.conn_count(), MAX_HALF_OPEN, "cookie SYN|ACK keeps no state");

    // Fish the stateless SYN|ACK out of the transmit queue.
    let mut cookie = None;
    while let Some(frame) = server.poll_transmit(Time::ZERO) {
        let pkt = Packet::decode(&frame).unwrap();
        if pkt.cm.flags.syn && pkt.cm.flags.cm_ack && pkt.dst_addr == client_ep.addr {
            assert_eq!(pkt.cm.ack_isn, 42_000);
            cookie = Some(pkt.cm.isn);
        }
    }
    let cookie = cookie.expect("stateless SYN|ACK was sent");

    // The completing ACK echoes both ISNs in its CM subheader; a valid
    // cookie rebuilds the connection the server never stored.
    let mut ack = forged(client_ep, Endpoint::new(B, 80));
    ack.cm.isn = 42_000;
    ack.cm.ack_isn = cookie;
    ack.rd.has_ack = true;
    ack.rd.ack = cookie.wrapping_add(1);
    ack.rd.seq = 42_001;
    server.on_frame(Time::ZERO, &ack.encode());
    assert_eq!(server.stats.syn_cookies_validated, 1);
    assert_eq!(server.established().len(), 1);

    // A guessed (wrong) cookie is refused statelessly.
    let mut bad = forged(Endpoint::new(0xC200_0000, 999), Endpoint::new(B, 80));
    bad.cm.isn = 5;
    bad.cm.ack_isn = 12_345;
    bad.rd.has_ack = true;
    server.on_frame(Time::ZERO, &bad.encode());
    assert_eq!(server.stats.syn_cookies_validated, 1);
    assert_eq!(server.established().len(), 1);
    assert!(server.stats.stateless_rsts_sent >= 1);
}

#[test]
fn stale_half_open_is_evicted_for_fresh_syn() {
    let mut server = SlTcpStack::new(B, SlConfig::default(), slmetrics::shared());
    server.listen(80);
    for i in 0..MAX_HALF_OPEN as u32 {
        let mut syn = forged(Endpoint::new(0xC000_0000 + i, 1000), Endpoint::new(B, 80));
        syn.cm.flags.syn = true;
        syn.cm.isn = 7000 + i;
        server.on_frame(Time::ZERO, &syn.encode());
    }
    // Two seconds later the original half-opens are stale: a fresh SYN
    // evicts the oldest instead of burning a cookie.
    let mut syn = forged(Endpoint::new(0xC300_0000, 2000), Endpoint::new(B, 80));
    syn.cm.flags.syn = true;
    syn.cm.isn = 9_999;
    server.on_frame(Time::ZERO + Dur::from_secs(2), &syn.encode());
    assert_eq!(server.stats.half_open_evictions, 1);
    assert_eq!(server.stats.syn_cookies_sent, 0);
    assert_eq!(server.half_open_count(), MAX_HALF_OPEN);
}

#[test]
fn ooo_spray_is_bounded_by_receiver_caps() {
    let (mut net, _nc, ns, _conn, sconn) = established_pair(305);
    let expected = stack(&mut net, ns).expected_wire_seq(sconn).unwrap();
    // Disjoint 100-byte segments sprayed ahead of rcv_nxt but *inside*
    // the RFC 793 validity window, so they reach the reassembly buffer:
    // more non-contiguous ranges than the receiver will hold.
    for i in 0..300u32 {
        let mut pkt = forged(Endpoint::new(A, 5000), Endpoint::new(B, 80));
        pkt.rd.seq = expected.wrapping_add(1 + i * 200);
        pkt.payload = vec![0xAB; 100];
        let now = net.now();
        let frame = pkt.encode();
        stack(&mut net, ns).on_frame(now, &frame);
    }
    // And a second volley far beyond the window, which must be refused
    // at the acceptability check before touching any buffer.
    for i in 0..50u32 {
        let mut pkt = forged(Endpoint::new(A, 5000), Endpoint::new(B, 80));
        pkt.rd.seq = expected.wrapping_add(1_000_000 + i * 2000);
        pkt.payload = vec![0xCD; 900];
        let now = net.now();
        let frame = pkt.encode();
        stack(&mut net, ns).on_frame(now, &frame);
    }
    let srv = stack(&mut net, ns);
    let rd = srv.rd_stats(sconn).unwrap();
    assert!(rd.ooo_range_drops > 0, "in-window spray must hit the cap");
    assert_eq!(rd.invalid_seq_drops, 50, "far spray refused at the window");
    assert!(srv.buffered_bytes() <= 96 * 1024, "held bytes stay bounded");
    assert_eq!(srv.established().len(), 1, "the flow itself survives");
}

#[test]
fn send_buffer_backpressure_caps_acceptance() {
    let (mut net, nc, _ns, conn, _sconn) = established_pair(306);
    let big = vec![7u8; 2 * SND_BUF_CAP];
    let accepted = stack(&mut net, nc).send(conn, &big);
    assert_eq!(accepted, SND_BUF_CAP, "write is capped, shortfall reported");
    let more = stack(&mut net, nc).send(conn, &big);
    assert_eq!(more, 0, "full buffer accepts nothing");
}

#[test]
fn conn_table_capacity_is_typed_not_fatal() {
    let config = SlConfig { max_conns: 2, ..Default::default() };
    let mut s = SlTcpStack::new(A, config, slmetrics::shared());
    let r = Endpoint::new(B, 80);
    assert!(s.try_connect(Time::ZERO, 5001, r).is_ok());
    assert!(s.try_connect(Time::ZERO, 5002, r).is_ok());
    assert_eq!(s.try_connect(Time::ZERO, 5003, r), Err(TransportError::ConnTableFull));
    // An already-bound tuple is the same typed refusal, not a panic.
    let config = SlConfig { max_conns: 8, ..Default::default() };
    let mut s = SlTcpStack::new(A, config, slmetrics::shared());
    assert!(s.try_connect(Time::ZERO, 5001, r).is_ok());
    assert_eq!(s.try_connect(Time::ZERO, 5001, r), Err(TransportError::ConnTableFull));
}

#[test]
fn ephemeral_port_exhaustion_is_typed() {
    let config = SlConfig { max_conns: usize::MAX, ..Default::default() };
    let mut s = SlTcpStack::new(A, config, slmetrics::shared());
    let r = Endpoint::new(B, 80);
    for _ in 0..16384 {
        s.try_connect_ephemeral(Time::ZERO, r).unwrap();
    }
    assert_eq!(
        s.try_connect_ephemeral(Time::ZERO, r),
        Err(TransportError::PortsExhausted)
    );
    // A different remote endpoint still has its whole port range.
    assert!(s.try_connect_ephemeral(Time::ZERO, Endpoint::new(B, 81)).is_ok());
}

#[test]
fn full_table_refuses_inbound_syn_with_rst() {
    use netsim::Stack;
    let config = SlConfig { max_conns: 1, ..Default::default() };
    let mut server = SlTcpStack::new(B, config, slmetrics::shared());
    server.listen(80);
    let mk_syn = |addr: u32| {
        let mut c = SlTcpStack::new(addr, SlConfig::default(), slmetrics::shared());
        c.connect(Time::ZERO, 5000, Endpoint::new(B, 80));
        c.poll_transmit(Time::ZERO).expect("SYN frame")
    };
    server.on_frame(Time::ZERO, &mk_syn(A));
    assert_eq!(server.conn_count(), 1);
    let rsts_before = server.stats.stateless_rsts_sent;
    server.on_frame(Time::ZERO, &mk_syn(A + 1));
    assert_eq!(server.conn_count(), 1, "second flow refused");
    assert_eq!(server.stats.conn_table_full_drops, 1);
    assert_eq!(server.stats.stateless_rsts_sent, rsts_before + 1, "refusal is a RST, not silence");
}
