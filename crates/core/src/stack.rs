//! The sublayered TCP stack: DM < CM < RD < OSR, composed.
//!
//! This module is deliberately thin: it *wires* the four sublayers
//! together along the narrow interfaces of test **T2** and contains no
//! protocol logic of its own. Every inter-sublayer crossing is counted in
//! [`CrossingStats`] — the quantity the hardware-offload experiment (E10)
//! studies, since a NIC/host partition pays for exactly these crossings.
//!
//! Contrast with `tcp-mono`: there one function mutates one PCB; here each
//! sublayer's state is a private Rust struct, so test **T3** (separate
//! state) is enforced by the compiler, and the entanglement instrumentation
//! (experiment E6) shows zero cross-sublayer field sharing.

use crate::cc;
use crate::cm::{CmEvent, CmPass, CmScheme, CmState, ConnMgmt};
use crate::dm::{ConnId, Demux, DmVerdict};
use crate::isn::{self, IsnGenerator};
use crate::osr::Osr;
use crate::rd::{RdEvent, ReliableDelivery};
use crate::signals::SeqValidity;
use crate::wire::Packet;
use netsim::{Dur, Stack, Time, TransportError};
use slmetrics::{Pressure, SharedLog};
use std::collections::{HashMap, VecDeque};
use tcp_mono::wire::{Endpoint, FourTuple};

/// Idle keepalive policy: after `idle` without inbound packets, probe every
/// `interval`; after `max_probes` unanswered probes the connection is
/// aborted with [`TransportError::PeerVanished`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeepaliveConfig {
    pub idle: Dur,
    pub interval: Dur,
    pub max_probes: u32,
}

impl Default for KeepaliveConfig {
    fn default() -> Self {
        KeepaliveConfig {
            idle: Dur::from_secs(10),
            interval: Dur::from_secs(2),
            max_probes: 5,
        }
    }
}

/// Stack configuration: which mechanism fills each replaceable slot.
#[derive(Clone, Debug)]
pub struct SlConfig {
    pub cm_scheme: CmScheme,
    /// Rate controller name (see [`crate::cc::make`]).
    pub cc: &'static str,
    /// ISN generator name (see [`crate::isn::make`]).
    pub isn: &'static str,
    /// Advertise SACK ranges from RD's out-of-order set (ablation knob for
    /// the design choice DESIGN.md calls out; SACK is RD-private either
    /// way).
    pub use_sack: bool,
    /// Idle keepalive probing; `None` (the default) disables it.
    pub keepalive: Option<KeepaliveConfig>,
    /// Connection-table capacity: beyond it, passive opens are refused
    /// with a stateless RST and active opens fail with
    /// [`TransportError::ConnTableFull`].
    pub max_conns: usize,
}

impl Default for SlConfig {
    fn default() -> Self {
        SlConfig {
            cm_scheme: CmScheme::ThreeWay,
            cc: "newreno",
            isn: "clock",
            use_sack: true,
            keepalive: None,
            max_conns: 16384,
        }
    }
}

/// Counts of values crossing each sublayer boundary (experiment E10).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrossingStats {
    /// Segments OSR handed down to RD (and their bytes).
    pub osr_to_rd_segments: u64,
    pub osr_to_rd_bytes: u64,
    /// Delivered events RD handed up to OSR.
    pub rd_to_osr_segments: u64,
    pub rd_to_osr_bytes: u64,
    /// Summarized congestion signals RD -> OSR.
    pub signals_up: u64,
    /// Packets crossing RD/CM (all packets pass both).
    pub packets_tx: u64,
    pub packets_rx: u64,
    /// Wire bytes through DM.
    pub wire_bytes_tx: u64,
    pub wire_bytes_rx: u64,
}

struct Connection {
    cm: ConnMgmt,
    rd: Option<ReliableDelivery>,
    osr: Osr,
    want_close: bool,
    fin_routed: bool,
    /// Reported state before removal, for post-mortem queries.
    dead: bool,
    /// Last inbound packet (keepalive bookkeeping).
    last_rx: Time,
    /// Keepalive probes sent since `last_rx`.
    ka_probes: u32,
}

impl Connection {
    fn new(cm: ConnMgmt, osr: Osr, now: Time) -> Connection {
        Connection {
            cm,
            rd: None,
            osr,
            want_close: false,
            fin_routed: false,
            dead: false,
            last_rx: now,
            ka_probes: 0,
        }
    }
}

/// Aggregate stack statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SlStats {
    pub packets_sent: u64,
    pub packets_received: u64,
    pub bad_packets: u64,
    pub no_listener_drops: u64,
    /// RFC 5961 challenge ACKs accumulated from *reaped* connections;
    /// [`SlTcpStack::challenge_acks`] adds the live ones.
    pub challenge_acks: u64,
    /// Stateless SYN|ACKs sent because the half-open queue was full.
    pub syn_cookies_sent: u64,
    /// Connections rebuilt from a returning valid cookie.
    pub syn_cookies_validated: u64,
    /// Stale half-open connections evicted to admit a fresh SYN.
    pub half_open_evictions: u64,
    /// Stateless RSTs sent for packets addressed to no connection.
    pub stateless_rsts_sent: u64,
    /// Inbound flows refused because the connection table was full.
    pub conn_table_full_drops: u64,
    /// Inbound flows refused because DM's accept gate was closed (host
    /// memory pressure or drain).
    pub pressure_refusals: u64,
}

/// Bound on simultaneously half-open (`SynRcvd`) passive connections;
/// beyond it a flood is absorbed by eviction or SYN cookies, never by
/// unbounded state.
pub const MAX_HALF_OPEN: usize = 16;
/// A half-open connection idle this long (one SYN-RTO) is stale enough to
/// evict in favor of a fresh SYN.
const HALF_OPEN_EVICT_AGE: Dur = Dur(1_000_000_000);

/// A sublayered TCP endpoint (host).
pub struct SlTcpStack {
    dm: Demux,
    conns: HashMap<ConnId, Connection>,
    isn_gen: Box<dyn IsnGenerator>,
    config: SlConfig,
    /// The configured rate controller, validated once at construction and
    /// cloned into each new connection's OSR — so a bad controller name is
    /// a typed error before any packet moves, never a panic mid-connect.
    cc_template: Box<dyn cc::RateController>,
    /// Terminal failures, surviving connection removal so the application
    /// can learn *why* a connection died (graceful degradation: an abort
    /// is always reported, never a silent hang).
    errors: HashMap<ConnId, TransportError>,
    outbox: VecDeque<Vec<u8>>,
    /// Host memory pressure, fanned out to each sublayer's slice of the
    /// backpressure contract (OSR window clamp, RD ack pacing, DM accept
    /// gate) — one explicit signal down the sublayer column, no shared
    /// state.
    pressure: Pressure,
    /// Host-requested accept gate (drain/quiesce), OR-ed with the
    /// pressure-derived gate before reaching DM.
    gate: bool,
    pub stats: SlStats,
    pub crossings: CrossingStats,
    log: SharedLog,
}

impl SlTcpStack {
    /// Construct with a known-good static config; panics if the config
    /// names an unknown controller. Input-driven configs should use
    /// [`SlTcpStack::try_new`].
    pub fn new(addr: u32, config: SlConfig, log: SharedLog) -> SlTcpStack {
        Self::try_new(addr, config, log).expect("invalid stack config")
    }

    /// Construct, validating the configuration: an unknown congestion
    /// controller name surfaces here as a typed error, at stack
    /// construction, rather than as a panic on the first connect.
    pub fn try_new(addr: u32, config: SlConfig, log: SharedLog) -> Result<SlTcpStack, cc::CcError> {
        let cc_template = cc::make(config.cc)?;
        Ok(SlTcpStack {
            dm: Demux::new(addr, log.clone()),
            conns: HashMap::new(),
            isn_gen: isn::make(config.isn),
            config,
            cc_template,
            errors: HashMap::new(),
            outbox: VecDeque::new(),
            pressure: Pressure::Nominal,
            gate: false,
            stats: SlStats::default(),
            crossings: CrossingStats::default(),
            log,
        })
    }

    pub fn addr(&self) -> u32 {
        self.dm.local_addr()
    }

    pub fn config(&self) -> &SlConfig {
        &self.config
    }

    /// Accept connections on `port`.
    pub fn listen(&mut self, port: u16) {
        self.dm.listen(port);
    }

    /// Active open; returns the connection handle. Panics if the tuple is
    /// taken or the table is full — use [`SlTcpStack::try_connect`] when
    /// refusal must be a value, not a crash.
    pub fn connect(&mut self, now: Time, local_port: u16, remote: Endpoint) -> ConnId {
        self.try_connect(now, local_port, remote).expect("tuple free")
    }

    /// Active open surfacing capacity as a typed error instead of a panic:
    /// a full connection table or an already-bound tuple both mean the
    /// table cannot admit this connection.
    pub fn try_connect(
        &mut self,
        now: Time,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<ConnId, TransportError> {
        if self.conns.len() >= self.config.max_conns {
            return Err(TransportError::ConnTableFull);
        }
        let tuple = FourTuple {
            local: Endpoint::new(self.dm.local_addr(), local_port),
            remote,
        };
        let Ok(token) = self.dm.bind(tuple) else {
            return Err(TransportError::ConnTableFull);
        };
        let id = token.id();
        let local_isn = self.isn_gen.isn(now, &tuple);
        let cm =
            ConnMgmt::open_active(token, self.config.cm_scheme, local_isn, now, self.log.clone());
        let mut osr = Osr::new(self.cc_template.clone(), self.log.clone());
        osr.set_pressure(self.pressure);
        let mut conn = Connection::new(cm, osr, now);
        // Timer-based CM is established immediately; wire RD up now.
        if matches!(self.config.cm_scheme, CmScheme::TimerBased { .. }) {
            let mut rd = ReliableDelivery::new(local_isn, 0, self.log.clone());
            rd.set_use_sack(self.config.use_sack);
            rd.set_ack_pacing(self.pressure.paces_acks());
            conn.rd = Some(rd);
        }
        self.conns.insert(id, conn);
        self.pump(now, id);
        Ok(id)
    }

    /// Active open with an ephemeral local port.
    pub fn connect_ephemeral(&mut self, now: Time, remote: Endpoint) -> ConnId {
        self.try_connect_ephemeral(now, remote).expect("ephemeral port free")
    }

    /// Active open with an ephemeral local port, surfacing port exhaustion
    /// and table capacity as typed errors.
    pub fn try_connect_ephemeral(
        &mut self,
        now: Time,
        remote: Endpoint,
    ) -> Result<ConnId, TransportError> {
        if self.conns.len() >= self.config.max_conns {
            return Err(TransportError::ConnTableFull);
        }
        let Some(port) = self.dm.ephemeral_port(remote) else {
            return Err(TransportError::PortsExhausted);
        };
        self.try_connect(now, port, remote)
    }

    /// Queue application bytes.
    pub fn send(&mut self, id: ConnId, data: &[u8]) -> usize {
        let Some(conn) = self.conns.get_mut(&id) else { return 0 };
        if conn.want_close || conn.dead {
            return 0;
        }
        conn.osr.write(data)
    }

    /// Drain received application bytes.
    pub fn recv(&mut self, id: ConnId) -> Vec<u8> {
        match self.conns.get_mut(&id) {
            Some(conn) => {
                let out = conn.osr.read();
                // Once the peer's FIN is in no more data can arrive, so
                // the reopened window is not worth advertising (same
                // rule as tcp-mono's recv): the gratuitous ack would
                // poke a peer whose TCB may already be deleted.
                if conn.cm.peer_fin_seen() {
                    conn.osr.suppress_window_update();
                }
                out
            }
            None => Vec::new(),
        }
    }

    /// Graceful close (FIN after the stream drains).
    pub fn close(&mut self, id: ConnId) {
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.want_close = true;
            conn.osr.close();
        }
    }

    pub fn state(&self, id: ConnId) -> CmState {
        self.conns.get(&id).map_or(CmState::Closed, |c| c.cm.state())
    }

    /// Has the application asked to close this connection? CM defers the
    /// state transition until the send stream drains, so this is the
    /// surface-level "no longer open for the app" signal.
    pub fn close_pending(&self, id: ConnId) -> bool {
        self.conns.get(&id).is_some_and(|c| c.want_close)
    }

    /// Why a connection died abnormally, if it did. Survives the
    /// connection's removal: after an abort, `state` reports `Closed` and
    /// this reports the reason.
    pub fn conn_error(&self, id: ConnId) -> Option<TransportError> {
        self.errors.get(&id).copied()
    }

    /// Abort a connection locally (application-initiated RST).
    pub fn abort(&mut self, now: Time, id: ConnId, reason: TransportError) {
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.cm.abort(reason);
            self.pump(now, id);
        }
    }

    /// Established connections (listener side discovers peers here).
    pub fn established(&self) -> Vec<ConnId> {
        let mut v: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, c)| c.cm.state() == CmState::Established)
            .map(|(&id, _)| id)
            .collect();
        v.sort();
        v
    }

    pub fn tuple(&self, id: ConnId) -> Option<FourTuple> {
        self.dm.tuple(id)
    }

    /// O(1) hashed 4-tuple lookup into the connection table (the host
    /// layer's demux path).
    pub fn conn_for_tuple(&self, tuple: &FourTuple) -> Option<ConnId> {
        self.dm.lookup(tuple)
    }

    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Adjust the connection-table capacity at runtime (host layer knob).
    pub fn set_max_conns(&mut self, max: usize) {
        self.config.max_conns = max;
    }

    /// Propagate host memory pressure down the sublayer column: OSR clamps
    /// the advertised window, RD paces pure acks, DM gates new flows at
    /// the `Critical` tier. Each sublayer receives only its own slice of
    /// the contract — no sublayer reads another's state.
    pub fn set_pressure(&mut self, p: Pressure) {
        if p == self.pressure {
            return;
        }
        self.pressure = p;
        let pace = p.paces_acks();
        for c in self.conns.values_mut() {
            c.osr.set_pressure(p);
            if let Some(rd) = c.rd.as_mut() {
                rd.set_ack_pacing(pace);
            }
        }
        self.dm.set_gate(self.gate || p.refuses_new_flows());
    }

    pub fn pressure(&self) -> Pressure {
        self.pressure
    }

    /// Explicitly gate new-flow admission (host drain/quiesce), independent
    /// of the pressure tier.
    pub fn gate_new_flows(&mut self, refuse: bool) {
        self.gate = refuse;
        self.dm.set_gate(refuse || self.pressure.refuses_new_flows());
    }

    /// One connection's share of [`SlTcpStack::buffered_bytes`].
    pub fn conn_buffered(&self, id: ConnId) -> usize {
        self.conns.get(&id).map_or(0, |c| {
            c.osr.buffered_bytes() + c.rd.as_ref().map_or(0, |r| r.in_flight_bytes())
        })
    }

    /// Bytes currently pinned in the retransmit queue (bounded by
    /// [`crate::rd::RTX_BYTES_CAP`] no matter how long the path stays
    /// partitioned).
    pub fn conn_rtx_bytes(&self, id: ConnId) -> usize {
        self.conns
            .get(&id)
            .and_then(|c| c.rd.as_ref())
            .map_or(0, |r| r.in_flight_bytes())
    }

    /// How long the oldest unacked segment has waited without cumulative
    /// ack progress — the partition-age signal a host budget can act on.
    pub fn conn_oldest_unacked(&self, id: ConnId, now: Time) -> Option<Dur> {
        self.conns
            .get(&id)
            .and_then(|c| c.rd.as_ref())
            .and_then(|r| r.oldest_unacked_age(now))
    }

    /// Monotone progress counter for slow-drain detection (bytes delivered
    /// in order + bytes the peer acked); `0` before RD exists.
    pub fn conn_progress(&self, id: ConnId) -> u64 {
        self.conns
            .get(&id)
            .and_then(|c| c.rd.as_ref())
            .map_or(0, |r| r.progress_bytes())
    }

    /// In-order received bytes available to `recv` without draining them.
    pub fn readable_len(&self, id: ConnId) -> usize {
        self.conns.get(&id).map_or(0, |c| c.osr.readable_len())
    }

    /// How many bytes `send` would accept right now (0 once the stream is
    /// closing or the connection is gone).
    pub fn send_capacity(&self, id: ConnId) -> usize {
        match self.conns.get(&id) {
            Some(c) if !c.want_close && !c.dead => c.osr.write_capacity(),
            _ => 0,
        }
    }

    /// Pop one already-assembled frame without scanning any connection —
    /// the host layer's transmit path ([`SlTcpStack::pump_conn`] is what
    /// fills the outbox).
    pub fn take_frame(&mut self) -> Option<Vec<u8>> {
        self.outbox.pop_front()
    }

    /// Run one connection's machinery (events, close coordination,
    /// segmentation, packet assembly) — the per-connection half of
    /// `poll_transmit`, for hosts that know which connection changed.
    pub fn pump_conn(&mut self, now: Time, id: ConnId) {
        self.pump(now, id);
    }

    /// Next timer deadline for *one* connection, so a host can keep one
    /// wheel entry per connection instead of scanning them all.
    pub fn conn_deadline(&self, now: Time, id: ConnId) -> Option<Time> {
        let c = self.conns.get(&id)?;
        [
            c.cm.poll_deadline(),
            c.rd.as_ref().and_then(|r| r.poll_deadline()),
            c.osr.poll_deadline(now),
            self.keepalive_deadline(c),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Advance one connection's timers to `now` (the per-connection half
    /// of `on_tick`); spurious calls are harmless.
    pub fn tick_conn(&mut self, now: Time, id: ConnId) {
        if let Some(conn) = self.conns.get_mut(&id) {
            conn.cm.on_tick(now);
            if let Some(rd) = conn.rd.as_mut() {
                rd.on_tick(now);
            }
            conn.osr.on_tick(now);
            if let Some(ka) = self.config.keepalive {
                Self::drive_keepalive(conn, ka, now);
            }
        }
        self.pump(now, id);
    }

    /// Peer-closed + everything delivered? (EOF for the application.)
    pub fn peer_closed(&self, id: ConnId) -> bool {
        self.conns.get(&id).is_some_and(|c| c.cm.peer_fin_seen())
    }

    /// The RD sublayer's counters (for tests/experiments).
    pub fn rd_stats(&self, id: ConnId) -> Option<crate::rd::RdStats> {
        self.conns.get(&id).and_then(|c| c.rd.as_ref()).map(|r| r.stats.clone())
    }

    pub fn osr_stats(&self, id: ConnId) -> Option<crate::osr::OsrStats> {
        self.conns.get(&id).map(|c| c.osr.stats.clone())
    }

    /// Per-connection congestion-control observability: window samples
    /// and loss/recovery event counts ([`slmetrics::CcCounters`], the
    /// same shape `tcp-mono` fills — E19 reads both like for like).
    pub fn conn_cc(&self, id: ConnId) -> Option<slmetrics::CcCounters> {
        self.conns.get(&id).map(|c| c.osr.cc)
    }

    /// Simulate an ECN mark on this connection's next outgoing header.
    pub fn mark_ecn(&mut self, id: ConnId) {
        if let Some(c) = self.conns.get_mut(&id) {
            c.osr.mark_ecn();
        }
    }

    /// Diagnostic: the exact wire sequence this connection's RD expects
    /// next — what an attacker must know to land an exact-sequence RST
    /// (the attack campaign's oracle mode reads this; real attackers
    /// guess).
    pub fn expected_wire_seq(&self, id: ConnId) -> Option<u32> {
        self.conns.get(&id)?.rd.as_ref().map(|r| r.wire_rcv_ack())
    }

    /// Total RFC 5961 challenge ACKs issued (live connections + reaped).
    pub fn challenge_acks(&self) -> u64 {
        self.stats.challenge_acks
            + self.conns.values().map(|c| c.cm.challenge_acks()).sum::<u64>()
    }

    /// Live half-open (passively opened, not yet established) connections.
    pub fn half_open_count(&self) -> usize {
        self.conns.values().filter(|c| c.cm.state() == CmState::SynRcvd).count()
    }

    /// Total bytes parked in per-connection buffers (send queues,
    /// retransmission flights, reassembly, unread app data) — the
    /// memory-bound invariant the attack campaign checks.
    pub fn buffered_bytes(&self) -> usize {
        self.conns
            .values()
            .map(|c| {
                c.osr.buffered_bytes() + c.rd.as_ref().map_or(0, |r| r.in_flight_bytes())
            })
            .sum()
    }

    /// Oldest half-open connection idle for at least one SYN-RTO, if any.
    fn stale_half_open(&self, now: Time) -> Option<ConnId> {
        self.conns
            .iter()
            .filter(|(_, c)| {
                c.cm.state() == CmState::SynRcvd && now.since(c.last_rx) >= HALF_OPEN_EVICT_AGE
            })
            .min_by_key(|(id, c)| (c.last_rx, **id))
            .map(|(id, _)| *id)
    }

    /// Keyed hash binding a half-open flow's 4-tuple and client ISN to a
    /// server ISN we can later recognize without keeping any state.
    fn syn_cookie(&self, tuple: &FourTuple, peer_isn: u32) -> u32 {
        let mut h: u32 = 0x9E37_79B9 ^ self.dm.local_addr();
        for v in [
            tuple.local.addr,
            tuple.local.port as u32,
            tuple.remote.addr,
            tuple.remote.port as u32,
            peer_isn,
        ] {
            h = h.wrapping_add(v).wrapping_mul(2_654_435_761).rotate_left(13);
        }
        h
    }

    /// Stateless SYN|ACK whose ISN *is* the cookie — no connection state
    /// exists until the peer's ACK proves it saw this packet. The native
    /// header makes this clean: the completing ACK echoes both ISNs in its
    /// CM subheader, so validation needs nothing remembered.
    fn send_cookie_synack(&mut self, tuple: &FourTuple, peer_isn: u32) {
        let mut pkt = Packet {
            src_addr: tuple.local.addr,
            dst_addr: tuple.remote.addr,
            ..Packet::default()
        };
        pkt.dm.src_port = tuple.local.port;
        pkt.dm.dst_port = tuple.remote.port;
        pkt.cm.flags.syn = true;
        pkt.cm.flags.cm_ack = true;
        pkt.cm.isn = self.syn_cookie(tuple, peer_isn);
        pkt.cm.ack_isn = peer_isn;
        pkt.osr.rcv_wnd = u16::MAX;
        self.stats.packets_sent += 1;
        self.stats.syn_cookies_sent += 1;
        self.outbox.push_back(pkt.encode());
    }

    /// Stateless RST for a non-RST packet addressed to no connection.
    /// Echoing the packet's own ack as our seq makes the reply *exact*
    /// under the peer's RFC 5961 check — this is what lets the
    /// challenge-ACK dance converge when one side has lost all state.
    fn send_stateless_rst(&mut self, pkt: &Packet) {
        if pkt.cm.flags.rst {
            return; // never answer a RST with a RST
        }
        let mut rst = Packet {
            src_addr: pkt.dst_addr,
            dst_addr: pkt.src_addr,
            ..Packet::default()
        };
        rst.dm.src_port = pkt.dm.dst_port;
        rst.dm.dst_port = pkt.dm.src_port;
        rst.cm.flags.rst = true;
        rst.cm.isn = pkt.cm.ack_isn; // the ISN the peer attributes to us
        rst.cm.ack_isn = pkt.cm.isn; // echo theirs: proves we saw their SYN
        rst.rd.seq = pkt.rd.ack;
        self.stats.packets_sent += 1;
        self.stats.stateless_rsts_sent += 1;
        self.outbox.push_back(rst.encode());
    }

    /// Run one connection's machinery: events, close coordination,
    /// segmentation, and packet assembly.
    fn pump(&mut self, now: Time, id: ConnId) {
        let Some(conn) = self.conns.get_mut(&id) else { return };

        // CM events upward.
        for ev in conn.cm.take_events() {
            match ev {
                CmEvent::Established { local_isn, peer_isn } => {
                    match conn.rd.as_mut() {
                        None => {
                            let mut rd =
                                ReliableDelivery::new(local_isn, peer_isn, self.log.clone());
                            rd.set_use_sack(self.config.use_sack);
                            rd.set_ack_pacing(self.pressure.paces_acks());
                            conn.rd = Some(rd);
                        }
                        Some(rd) if matches!(self.config.cm_scheme, CmScheme::TimerBased { .. }) => {
                            // Timer-based: RD existed before the peer ISN
                            // was known; late-bind it. Sender state
                            // (possibly with data already in flight) is
                            // preserved.
                            rd.set_rcv_isn(peer_isn);
                        }
                        Some(_) => {}
                    }
                }
                CmEvent::Reset => {
                    if let Some(reason) = conn.cm.reset_reason() {
                        self.errors.entry(id).or_insert(reason);
                    }
                    conn.dead = true;
                }
                CmEvent::Closed => {
                    conn.dead = true;
                }
            }
        }

        // RD events upward (to OSR and CM).
        if let Some(rd) = conn.rd.as_mut() {
            for ev in rd.take_events() {
                match ev {
                    RdEvent::Delivered { offset, data } => {
                        self.crossings.rd_to_osr_segments += 1;
                        self.crossings.rd_to_osr_bytes += data.len() as u64;
                        conn.osr.on_delivered(offset, data);
                    }
                    RdEvent::LocalFinAcked => conn.cm.on_local_fin_acked(now),
                    RdEvent::PeerFinReached => conn.cm.on_peer_fin(now),
                    RdEvent::RetriesExhausted => {
                        // Data retries spent: abort (RST to the peer if the
                        // path still works) instead of retrying forever.
                        conn.cm.abort(TransportError::RetriesExhausted);
                    }
                }
            }
            // Summarized signals to OSR's rate controller.
            let signals = rd.take_signals();
            if !signals.is_empty() {
                self.crossings.signals_up += signals.len() as u64;
                conn.osr.on_signals(now, &signals);
            }
        }

        // An RD event above may have just aborted CM (RetriesExhausted
        // routes through `cm.abort`), queueing a Reset *after* the CM
        // drain. Drain again now: the abort cleared every timer, so a
        // deferred Reset might otherwise never be processed and the typed
        // error would stay invisible to the application.
        for ev in conn.cm.take_events() {
            match ev {
                CmEvent::Reset => {
                    if let Some(reason) = conn.cm.reset_reason() {
                        self.errors.entry(id).or_insert(reason);
                    }
                    conn.dead = true;
                }
                CmEvent::Closed => conn.dead = true,
                CmEvent::Established { .. } => {}
            }
        }

        // Close coordination: once the app stream is fully handed to RD,
        // CM may route its FIN through RD.
        if conn.want_close && !conn.fin_routed && conn.osr.drained() {
            if let Some(rd) = conn.rd.as_mut() {
                if conn.cm.state() == CmState::Established && conn.cm.close_requested() {
                    rd.send_fin(now);
                    conn.fin_routed = true;
                }
            } else if conn.cm.state() != CmState::Established {
                // Never established: close immediately.
                conn.cm.close_requested();
            }
        }
        // Timer-based close needs no FIN.
        if conn.want_close
            && !conn.fin_routed
            && matches!(self.config.cm_scheme, CmScheme::TimerBased { .. })
            && conn.osr.drained()
        {
            conn.cm.close_requested();
            conn.fin_routed = true;
        }

        // Window updates: the application read; let the peer know the
        // window reopened (OSR owns the decision, RD owns the ack packet).
        if conn.osr.take_window_update() {
            if let Some(rd) = conn.rd.as_mut() {
                rd.force_ack();
            }
        }

        // Segmentation: OSR decides readiness, RD assigns sequences. A
        // zero-window probe released by OSR's persist timer takes the same
        // path, so it is sequenced and retransmitted like any segment.
        if let Some(rd) = conn.rd.as_mut() {
            if conn.cm.state() == CmState::Established || conn.cm.state() == CmState::Closing {
                while rd.can_accept() {
                    let Some(seg) = conn.osr.poll_segment(now) else { break };
                    self.crossings.osr_to_rd_segments += 1;
                    self.crossings.osr_to_rd_bytes += seg.len() as u64;
                    rd.push_segment(now, seg);
                }
                if rd.can_accept() {
                    if let Some(probe) = conn.osr.poll_probe() {
                        self.crossings.osr_to_rd_segments += 1;
                        self.crossings.osr_to_rd_bytes += probe.len() as u64;
                        rd.push_segment(now, probe);
                    }
                }
            }
        }

        // Packet assembly: CM-originated packets first (handshake), then
        // RD's data/ack packets. Each sublayer stamps only its own bits.
        loop {
            let assembled = if let Some(mut pkt) = conn.cm.poll_packet() {
                if let Some(rd) = conn.rd.as_mut() {
                    rd.fill_tx(&mut pkt);
                }
                conn.osr.fill_tx(&mut pkt);
                conn.cm.fill_tx(&mut pkt);
                Some(pkt)
            } else if let Some(rd) = conn.rd.as_mut() {
                match rd.poll_packet(now) {
                    Some((mut pkt, is_fin)) => {
                        if is_fin {
                            conn.cm.stamp_fin(&mut pkt);
                        }
                        conn.osr.fill_tx(&mut pkt);
                        conn.cm.fill_tx(&mut pkt);
                        Some(pkt)
                    }
                    None => None,
                }
            } else {
                None
            };
            let Some(mut pkt) = assembled else { break };
            self.dm.fill_tx(id, &mut pkt);
            let bytes = pkt.encode();
            self.crossings.packets_tx += 1;
            self.crossings.wire_bytes_tx += bytes.len() as u64;
            self.stats.packets_sent += 1;
            self.outbox.push_back(bytes);
        }

        // Reap dead connections (folding their counters into the stack's).
        if conn.dead {
            self.dm.unbind(id);
            if let Some(c) = self.conns.remove(&id) {
                self.stats.challenge_acks += c.cm.challenge_acks();
            }
        }
    }

    fn handle_packet(&mut self, now: Time, id: ConnId, pkt: &Packet) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        conn.last_rx = now;
        conn.ka_probes = 0;
        // The handshake-completing ack is recognized by the stack (not CM)
        // so CM never reads RD's bits: ack == local_isn + 1.
        let handshake_ack =
            pkt.rd.has_ack && pkt.rd.ack == conn.cm.local_isn().wrapping_add(1);
        // RFC 5961: the stack derives the RST's sequence validity from RD
        // (same pattern as `handshake_ack`); before RD exists — handshake
        // states — a RST is taken at face value, as the RFC prescribes.
        let rst_seq = match conn.rd.as_ref() {
            Some(rd) if pkt.cm.flags.rst => rd.seq_validity(pkt.rd.seq),
            _ => SeqValidity::Exact,
        };
        match conn.cm.on_packet(&pkt.cm, handshake_ack, rst_seq, now) {
            CmPass::Drop => {}
            CmPass::Consumed => {
                // Window updates ride even on handshake packets.
                conn.osr.on_header(now, pkt);
            }
            CmPass::PassUp => {
                conn.osr.on_header(now, pkt);
                // Events may have just established RD.
                self.pump(now, id);
                let Some(conn) = self.conns.get_mut(&id) else { return };
                if let Some(rd) = conn.rd.as_mut() {
                    rd.on_packet(now, pkt, pkt.cm.flags.fin);
                }
            }
        }
        self.pump(now, id);
    }
}

impl Stack for SlTcpStack {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        let Ok(pkt) = Packet::decode(frame) else {
            self.stats.bad_packets += 1;
            return;
        };
        self.stats.packets_received += 1;
        self.crossings.packets_rx += 1;
        self.crossings.wire_bytes_rx += frame.len() as u64;
        match self.dm.classify(&pkt) {
            DmVerdict::Known(id) => self.handle_packet(now, id, &pkt),
            DmVerdict::NewFlow(tuple) => {
                // Admission control first: a full connection table refuses
                // every new flow — cookie rebuilds included — with a typed
                // drop counter and a stateless RST, never a panic or a
                // silent discard.
                if self.conns.len() >= self.config.max_conns {
                    self.stats.conn_table_full_drops += 1;
                    self.send_stateless_rst(&pkt);
                    return;
                }
                let three_way = matches!(self.config.cm_scheme, CmScheme::ThreeWay);
                // A returning ACK that proves a SYN cookie rebuilds the
                // connection the stateless SYN|ACK never stored.
                if three_way
                    && !pkt.cm.flags.syn
                    && !pkt.cm.flags.rst
                    && pkt.rd.has_ack
                    && pkt.cm.ack_isn == self.syn_cookie(&tuple, pkt.cm.isn)
                {
                    let Ok(token) = self.dm.bind(tuple) else { return };
                    let id = token.id();
                    let cm = ConnMgmt::open_cookie(
                        token,
                        pkt.cm.ack_isn,
                        pkt.cm.isn,
                        now,
                        self.log.clone(),
                    );
                    let mut osr = Osr::new(self.cc_template.clone(), self.log.clone());
                    osr.set_pressure(self.pressure);
                    self.conns.insert(id, Connection::new(cm, osr, now));
                    self.stats.syn_cookies_validated += 1;
                    self.pump(now, id); // establishment event creates RD
                    if let Some(conn) = self.conns.get_mut(&id) {
                        conn.osr.on_header(now, &pkt);
                        if let Some(rd) = conn.rd.as_mut() {
                            rd.on_packet(now, &pkt, pkt.cm.flags.fin);
                        }
                    }
                    self.pump(now, id);
                    return;
                }
                // Half-open governance: a SYN beyond the bound either
                // evicts a stale half-open entry or is answered
                // statelessly with a cookie — a flood degrades service,
                // never memory.
                if three_way
                    && pkt.cm.flags.syn
                    && !pkt.cm.flags.cm_ack
                    && self.half_open_count() >= MAX_HALF_OPEN
                {
                    if let Some(victim) = self.stale_half_open(now) {
                        self.stats.half_open_evictions += 1;
                        self.dm.unbind(victim);
                        self.conns.remove(&victim);
                    } else {
                        self.send_cookie_synack(&tuple, pkt.cm.isn);
                        return;
                    }
                }
                let local_isn = self.isn_gen.isn(now, &tuple);
                // Admission first: the token CM's constructor demands is
                // minted by DM's bind. A header that cannot open releases
                // the admission again.
                let Ok(token) = self.dm.bind(tuple) else { return };
                let id = token.id();
                let Some(cm) = ConnMgmt::open_passive(
                    token,
                    self.config.cm_scheme,
                    local_isn,
                    &pkt.cm,
                    now,
                    self.log.clone(),
                ) else {
                    self.dm.unbind(id);
                    self.stats.no_listener_drops += 1;
                    self.send_stateless_rst(&pkt);
                    return;
                };
                let mut osr = Osr::new(self.cc_template.clone(), self.log.clone());
                osr.set_pressure(self.pressure);
                self.conns.insert(id, Connection::new(cm, osr, now));
                // Let establishment events run, then feed this packet's
                // upper parts (timer-based CM carries data on first
                // packet).
                self.pump(now, id);
                if let Some(conn) = self.conns.get_mut(&id) {
                    conn.osr.on_header(now, &pkt);
                    if let Some(rd) = conn.rd.as_mut() {
                        rd.on_packet(now, &pkt, pkt.cm.flags.fin);
                    }
                }
                self.pump(now, id);
            }
            DmVerdict::Gated(_) => {
                // DM's slice of the backpressure contract: under Critical
                // pressure or drain, new flows are refused statelessly —
                // no connection state is created, so a flood cannot grow
                // memory while the host digs itself out.
                self.stats.pressure_refusals += 1;
                self.send_stateless_rst(&pkt);
            }
            DmVerdict::NoListener => {
                self.stats.no_listener_drops += 1;
                self.send_stateless_rst(&pkt);
            }
            DmVerdict::NotForUs => {}
        }
    }

    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        if self.outbox.is_empty() {
            // Sorted so every same-seed run pumps connections in the same
            // order (HashMap iteration order is not deterministic).
            let mut ids: Vec<ConnId> = self.conns.keys().copied().collect();
            ids.sort();
            for id in ids {
                self.pump(now, id);
            }
        }
        self.outbox.pop_front()
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        self.conns.keys().filter_map(|&id| self.conn_deadline(now, id)).min()
    }

    fn on_tick(&mut self, now: Time) {
        let mut ids: Vec<ConnId> = self.conns.keys().copied().collect();
        ids.sort();
        for id in ids {
            self.tick_conn(now, id);
        }
    }
}

impl SlTcpStack {
    /// When the next keepalive action (probe or give-up) is due for `c`.
    fn keepalive_deadline(&self, c: &Connection) -> Option<Time> {
        let ka = self.config.keepalive?;
        if c.cm.state() != CmState::Established {
            return None;
        }
        c.rd.as_ref()?;
        Some(c.last_rx + ka.idle + ka.interval.saturating_mul(c.ka_probes as u64))
    }

    fn drive_keepalive(conn: &mut Connection, ka: KeepaliveConfig, now: Time) {
        if conn.cm.state() != CmState::Established {
            return;
        }
        let Some(rd) = conn.rd.as_mut() else { return };
        let due = conn.last_rx + ka.idle + ka.interval.saturating_mul(conn.ka_probes as u64);
        if now < due {
            return;
        }
        // Probes keep firing even with data in flight — they are cheap
        // liveness chatter that refreshes the peer's own idle timer — but
        // only an *idle* connection may abort on probe exhaustion. With
        // data in flight RD's retry budget owns liveness; aborting on the
        // (much smaller) probe budget would kill a merely-slow path (a
        // reroute onto a longer RTT, or a partition shorter than the RTO
        // budget) with a spurious PeerVanished.
        if conn.ka_probes >= ka.max_probes && rd.bytes_unacked() == 0 {
            // Unanswered probe budget spent on an idle connection: gone.
            conn.cm.abort(TransportError::PeerVanished);
        } else {
            // A connection that never sent data cannot be probed (there is
            // no sequence behind snd_nxt to re-ack); its silent intervals
            // still count, so sustained peer silence past the keepalive
            // horizon aborts either way.
            let _ = rd.send_keepalive_probe();
            conn.ka_probes += 1;
        }
    }
}
