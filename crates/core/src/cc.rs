//! Pluggable rate control — the congestion-control half of OSR.
//!
//! "If each sublayer adheres to its API, one could in principle seamlessly
//! replace congestion control (by say a rate-based protocol)" (§3, test
//! T3). The controllers themselves now live in the leaf crate [`slcc`]
//! so that `tcp-mono` selects from the **same** shipped set (the swap
//! claim, cashed in for the monolith too); this module re-exports the
//! whole surface for API compatibility. Experiment E8 swaps controllers
//! without touching any other sublayer, and `slverify::CongCtrl` checks
//! every shipped controller against the contract stated in `slcc`.

pub use slcc::{
    make, BuggyDeflate, CcError, Cubic, FixedWindow, NewReno, RateBased, RateController,
    ALLOWANCE_FLOOR, MSS, SHIPPED,
};

/// The prior name for the shipped loss-halving controller. The shipped
/// behavior is NewReno fast recovery (RFC 6582); `make("reno")` still
/// works as an alias.
pub type Reno = NewReno;
