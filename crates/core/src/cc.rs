//! Pluggable rate control — the congestion-control half of OSR.
//!
//! "If each sublayer adheres to its API, one could in principle seamlessly
//! replace congestion control (by say a rate-based protocol)" (§3, test
//! T3). [`RateController`] is that API: it consumes the summarized
//! congestion signals from RD and answers one question — how many bytes
//! may be outstanding right now. Four interchangeable controllers are
//! provided; experiment E8 swaps them without touching any other sublayer.

use crate::signals::CongSignal;
use netsim::Time;

/// The congestion-control interface inside OSR.
pub trait RateController {
    fn name(&self) -> &'static str;

    /// Feed one summarized signal from RD.
    fn on_signal(&mut self, now: Time, sig: CongSignal);

    /// Current allowance: how many bytes may be in flight.
    /// Window-based controllers return their cwnd; rate-based controllers
    /// convert their rate into an allowance via pacing tokens.
    fn allowance(&self, now: Time) -> u64;

    /// For paced controllers: when the allowance next grows. `None` for
    /// pure window controllers.
    fn poll_deadline(&self, _now: Time) -> Option<Time> {
        None
    }
}

const MSS: u64 = 1000;

/// Classic Reno: slow start, congestion avoidance, halve on loss.
pub struct Reno {
    cwnd: u64,
    ssthresh: u64,
}

impl Default for Reno {
    fn default() -> Self {
        Reno { cwnd: 2 * MSS, ssthresh: 64 * 1024 }
    }
}

impl Reno {
    pub fn new() -> Self {
        Self::default()
    }
}

impl RateController for Reno {
    fn name(&self) -> &'static str {
        "reno"
    }

    fn on_signal(&mut self, _now: Time, sig: CongSignal) {
        match sig {
            CongSignal::Acked { bytes, .. } => {
                if self.cwnd < self.ssthresh {
                    self.cwnd += (bytes as u64).min(MSS);
                } else {
                    self.cwnd += (MSS * MSS / self.cwnd).max(1);
                }
            }
            CongSignal::DupAckLoss | CongSignal::EcnEcho => {
                self.ssthresh = (self.cwnd / 2).max(2 * MSS);
                self.cwnd = self.ssthresh;
            }
            CongSignal::TimeoutLoss => {
                self.ssthresh = (self.cwnd / 2).max(2 * MSS);
                self.cwnd = MSS;
            }
        }
    }

    fn allowance(&self, _now: Time) -> u64 {
        self.cwnd
    }
}

/// CUBIC (simplified, no fast-convergence heuristics): the window grows as
/// a cubic function of time since the last loss, anchored at the window
/// just before the loss.
pub struct Cubic {
    cwnd: f64,
    w_max: f64,
    epoch_start: Option<Time>,
    ssthresh: f64,
    k: f64,
}

impl Default for Cubic {
    fn default() -> Self {
        Cubic {
            cwnd: 2.0 * MSS as f64,
            w_max: 0.0,
            epoch_start: None,
            ssthresh: 64.0 * 1024.0,
            k: 0.0,
        }
    }
}

impl Cubic {
    pub fn new() -> Self {
        Self::default()
    }

    const C: f64 = 0.4; // in MSS units per s^3
    const BETA: f64 = 0.7;
}

impl RateController for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_signal(&mut self, now: Time, sig: CongSignal) {
        match sig {
            CongSignal::Acked { bytes, .. } => {
                if self.cwnd < self.ssthresh {
                    self.cwnd += (bytes as f64).min(MSS as f64);
                    return;
                }
                let epoch = *self.epoch_start.get_or_insert(now);
                let t = now.since(epoch).secs_f64();
                // W(t) = C (t - K)^3 + w_max, in MSS units.
                let target =
                    (Self::C * (t - self.k).powi(3) + self.w_max / MSS as f64) * MSS as f64;
                if target > self.cwnd {
                    self.cwnd = target.min(self.cwnd * 1.5);
                } else {
                    // TCP-friendly floor: at least Reno-style linear growth.
                    self.cwnd += MSS as f64 * MSS as f64 / self.cwnd;
                }
            }
            CongSignal::DupAckLoss | CongSignal::EcnEcho => {
                self.w_max = self.cwnd;
                self.cwnd = (self.cwnd * Self::BETA).max(2.0 * MSS as f64);
                self.ssthresh = self.cwnd;
                self.epoch_start = None;
                self.k = ((self.w_max * (1.0 - Self::BETA)) / (Self::C * MSS as f64)).cbrt();
            }
            CongSignal::TimeoutLoss => {
                self.w_max = self.cwnd;
                self.ssthresh = (self.cwnd / 2.0).max(2.0 * MSS as f64);
                self.cwnd = MSS as f64;
                self.epoch_start = None;
                self.k = ((self.w_max * (1.0 - Self::BETA)) / (Self::C * MSS as f64)).cbrt();
            }
        }
    }

    fn allowance(&self, _now: Time) -> u64 {
        self.cwnd as u64
    }
}

/// A rate-based controller: maintains an explicit sending *rate* with
/// AIMD, and converts it to an in-flight allowance as `rate × RTT`
/// (estimated from the Acked signals) plus a small burst allowance — the
/// standard construction for rate-based transports. Demonstrates the
/// paper's "replace congestion control by say a rate-based protocol".
pub struct RateBased {
    rate_bps: f64,
    srtt_s: f64,
    min_rate: f64,
    max_rate: f64,
}

impl RateBased {
    pub fn new(initial_bps: f64) -> RateBased {
        RateBased {
            rate_bps: initial_bps,
            srtt_s: 0.1, // prior until the first sample
            min_rate: 64_000.0,
            max_rate: 1e10,
        }
    }

    /// The current rate in bits/second (visible for experiments).
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }
}

impl RateController for RateBased {
    fn name(&self) -> &'static str {
        "rate-based"
    }

    fn on_signal(&mut self, _now: Time, sig: CongSignal) {
        match sig {
            CongSignal::Acked { bytes, rtt } => {
                if let Some(r) = rtt {
                    let s = r.secs_f64().max(1e-6);
                    self.srtt_s = 0.875 * self.srtt_s + 0.125 * s;
                }
                // Additive increase proportional to progress.
                self.rate_bps = (self.rate_bps + bytes as f64 * 8.0 * 0.05).min(self.max_rate);
            }
            CongSignal::DupAckLoss | CongSignal::EcnEcho => {
                self.rate_bps = (self.rate_bps * 0.7).max(self.min_rate);
            }
            CongSignal::TimeoutLoss => {
                self.rate_bps = (self.rate_bps * 0.5).max(self.min_rate);
            }
        }
    }

    fn allowance(&self, _now: Time) -> u64 {
        // rate x RTT worth of bytes, plus one MSS of burst.
        (self.rate_bps / 8.0 * self.srtt_s) as u64 + MSS
    }
}

/// A fixed window: the null controller (useful as an ablation baseline).
pub struct FixedWindow(pub u64);

impl RateController for FixedWindow {
    fn name(&self) -> &'static str {
        "fixed-window"
    }
    fn on_signal(&mut self, _: Time, _: CongSignal) {}
    fn allowance(&self, _: Time) -> u64 {
        self.0
    }
}

/// Factory used by stack configuration and the experiments.
pub fn make(name: &str) -> Box<dyn RateController> {
    match name {
        "reno" => Box::new(Reno::new()),
        "cubic" => Box::new(Cubic::new()),
        "rate-based" => Box::new(RateBased::new(1_000_000.0)),
        "fixed-window" => Box::new(FixedWindow(16 * 1000)),
        other => panic!("unknown rate controller {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Dur;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn reno_slow_start_doubles_per_window() {
        let mut r = Reno::new();
        let w0 = r.allowance(t(0));
        r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        assert_eq!(r.allowance(t(1)), w0 + 2000);
    }

    #[test]
    fn reno_halves_on_dupack_collapses_on_timeout() {
        let mut r = Reno::new();
        for _ in 0..30 {
            r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        let big = r.allowance(t(1));
        r.on_signal(t(2), CongSignal::DupAckLoss);
        let halved = r.allowance(t(2));
        assert!(halved <= big / 2 + 1000 && halved < big);
        r.on_signal(t(3), CongSignal::TimeoutLoss);
        assert_eq!(r.allowance(t(3)), 1000);
    }

    #[test]
    fn reno_congestion_avoidance_is_linearish() {
        let mut r = Reno::new();
        r.on_signal(t(1), CongSignal::DupAckLoss); // enter CA at ssthresh
        let w0 = r.allowance(t(1));
        for _ in 0..10 {
            r.on_signal(t(2), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        let w1 = r.allowance(t(2));
        assert!(w1 > w0 && w1 < w0 + 10 * 1000, "CA grows sub-linearly: {w0} -> {w1}");
    }

    #[test]
    fn cubic_recovers_toward_wmax() {
        let mut c = Cubic::new();
        for _ in 0..60 {
            c.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        let before = c.allowance(t(1));
        c.on_signal(t(2), CongSignal::DupAckLoss);
        let after_loss = c.allowance(t(2));
        assert!(after_loss < before);
        // Feed acks over simulated seconds; cubic should climb back.
        for ms in 0..2000 {
            c.on_signal(t(3 + ms), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        assert!(c.allowance(t(2100)) > after_loss);
    }

    #[test]
    fn rate_based_window_is_rate_times_rtt() {
        let mut r = RateBased::new(8_000_000.0); // 1 MB/s
        // Feed an RTT sample of 100ms repeatedly: window ~ 100KB.
        for _ in 0..200 {
            r.on_signal(t(1), CongSignal::Acked { bytes: 0, rtt: Some(Dur::from_millis(100)) });
        }
        let w = r.allowance(t(1));
        assert!((90_000..=140_000).contains(&w), "window {w}");
    }

    #[test]
    fn rate_based_aimd_on_rate() {
        let mut r = RateBased::new(8_000_000.0);
        r.on_signal(t(1), CongSignal::TimeoutLoss);
        let slowed = r.rate_bps();
        assert!((slowed - 4_000_000.0).abs() < 1.0);
        for _ in 0..100 {
            r.on_signal(t(2), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        assert!(r.rate_bps() > slowed);
    }

    #[test]
    fn rate_based_shrinks_allowance_on_loss() {
        let mut r = RateBased::new(8_000_000.0);
        let before = r.allowance(t(0));
        r.on_signal(t(1), CongSignal::DupAckLoss);
        assert!(r.allowance(t(1)) < before);
    }

    #[test]
    fn fixed_window_never_moves() {
        let mut f = FixedWindow(5000);
        f.on_signal(t(1), CongSignal::TimeoutLoss);
        assert_eq!(f.allowance(t(9)), 5000);
    }

    #[test]
    fn factory_knows_all_names() {
        for n in ["reno", "cubic", "rate-based", "fixed-window"] {
            assert_eq!(make(n).name(), n);
        }
    }

    #[test]
    fn ecn_treated_as_mild_loss() {
        let mut r = Reno::new();
        for _ in 0..30 {
            r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        let before = r.allowance(t(1));
        r.on_signal(t(2), CongSignal::EcnEcho);
        assert!(r.allowance(t(2)) < before);
    }
}
