//! The **connection management (CM)** sublayer (§3).
//!
//! CM's service to RD is to "establish a pair of Initial Sequence Numbers"
//! via the SYN handshake, using its own *bootstrap* reliability
//! (retransmission and timeout of SYNs, no windows) — the paper notes this
//! duplication "is implicit in TCP which uses a bootstrap reliability
//! mechanism to set up more sophisticated mechanisms in RD". CM owns the
//! SYN/FIN/RST flag bits and the ISN fields of the native header, and the
//! close/TIME_WAIT lifecycle. The FIN's in-order delivery and
//! acknowledgment ride on RD (exactly as in TCP); CM owns the close
//! *decision* and the flag bit, RD owns the retransmission — the coupling
//! the paper acknowledges, here made explicit as a two-call interface
//! (`close_requested` / `on_local_fin_acked`).
//!
//! Two schemes demonstrate replaceability (experiment E8):
//! * [`CmScheme::ThreeWay`] — classic SYN / SYN-ACK / ACK;
//! * [`CmScheme::TimerBased`] — Watson's timer-based scheme (paper [31]):
//!   no handshake at all; ISNs ride in the CM header of every packet and
//!   connections die by quiet-time, not FIN.

use crate::dm::{Admitted, ConnId};
use crate::fingerprint as fp;
use crate::signals::SeqValidity;
use crate::wire::{CmHeader, Packet};
use netsim::{Dur, Time, TransportError};
use slmetrics::SharedLog;
use std::collections::VecDeque;

/// Which connection-management mechanism runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmScheme {
    ThreeWay,
    /// Watson delta-t: establishment is implicit, teardown by quiet time.
    TimerBased { quiet: Dur },
}

/// CM lifecycle state (reported in TCP-like vocabulary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmState {
    Idle,
    SynSent,
    SynRcvd,
    Established,
    /// We closed; FIN in RD's hands; waiting for it to be acked and/or the
    /// peer's FIN.
    Closing,
    TimeWait,
    Closed,
}

/// Events CM reports upward to the stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CmEvent {
    /// ISN pair established; RD may initialize.
    Established { local_isn: u32, peer_isn: u32 },
    /// The connection was reset or gave up.
    Reset,
    /// Fully closed; the stack may unbind.
    Closed,
}

/// What to do with a packet after CM has seen its header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmPass {
    /// CM consumed it (handshake traffic).
    Consumed,
    /// Hand the RD/OSR parts upward.
    PassUp,
    /// Connection is dead; drop.
    Drop,
}

const SYN_RTO: Dur = Dur(1_000_000_000);
const MAX_SYN_RETRIES: u32 = 6;
const TIME_WAIT: Dur = Dur(10_000_000_000);

/// Per-connection CM machine.
///
/// Construction demands an [`Admitted`] token, which only
/// [`crate::dm::Demux::bind`] can mint — the DM⇒CM half of the sublayer
/// contract chain, enforced by the type system: CM cannot sequence a flow
/// DM never admitted.
#[derive(Clone)]
pub struct ConnMgmt {
    /// The DM admission this machine manages (from the consumed token).
    conn: ConnId,
    scheme: CmScheme,
    state: CmState,
    local_isn: u32,
    peer_isn: Option<u32>,
    /// We initiated (or accepted) a close.
    close_requested: bool,
    local_fin_acked: bool,
    peer_fin_seen: bool,
    /// Peer's FIN arrived before the local close: we are the passive
    /// closer and finish in CLOSED, not TIME_WAIT.
    passive_close: bool,
    /// Handshake retransmission.
    rtx_deadline: Option<Time>,
    rtx_count: u32,
    time_wait_deadline: Option<Time>,
    /// Timer-based scheme: last packet activity.
    last_activity: Time,
    /// Why the connection died, when it died abnormally.
    reset_reason: Option<TransportError>,
    /// RFC 5961 challenge ACKs issued (in-window RST/SYN refused).
    challenge_acks: u64,
    events: VecDeque<CmEvent>,
    outbox: VecDeque<Packet>,
    log: SharedLog,
}

impl ConnMgmt {
    fn new(token: Admitted, scheme: CmScheme, local_isn: u32, log: SharedLog) -> ConnMgmt {
        ConnMgmt {
            conn: token.id(),
            scheme,
            state: CmState::Idle,
            local_isn,
            peer_isn: None,
            close_requested: false,
            local_fin_acked: false,
            peer_fin_seen: false,
            passive_close: false,
            rtx_deadline: None,
            rtx_count: 0,
            time_wait_deadline: None,
            last_activity: Time::ZERO,
            reset_reason: None,
            challenge_acks: 0,
            events: VecDeque::new(),
            outbox: VecDeque::new(),
            log,
        }
    }

    /// Active open (connect side). Consumes the [`Admitted`] token DM
    /// minted for this flow's 4-tuple (one admission, one connection).
    pub fn open_active(
        token: Admitted,
        scheme: CmScheme,
        local_isn: u32,
        now: Time,
        log: SharedLog,
    ) -> ConnMgmt {
        let mut cm = ConnMgmt::new(token, scheme, local_isn, log);
        cm.log.borrow_mut().w("cm", "state");
        cm.log.borrow_mut().w("cm", "local_isn");
        match scheme {
            CmScheme::ThreeWay => {
                cm.state = CmState::SynSent;
                cm.queue_syn(false);
                cm.rtx_deadline = Some(now + SYN_RTO);
            }
            CmScheme::TimerBased { .. } => {
                // No handshake: consider established; the peer ISN is
                // learned from the first inbound packet's CM header.
                cm.state = CmState::Established;
                cm.last_activity = now;
            }
        }
        cm
    }

    /// Passive open (listener side), given the arriving packet's CM header.
    /// Consumes the [`Admitted`] token; on `None` the caller still holds
    /// the admission in DM's table and must release it with
    /// [`crate::dm::Demux::unbind`].
    pub fn open_passive(
        token: Admitted,
        scheme: CmScheme,
        local_isn: u32,
        peer: &CmHeader,
        now: Time,
        log: SharedLog,
    ) -> Option<ConnMgmt> {
        let mut cm = ConnMgmt::new(token, scheme, local_isn, log);
        cm.log.borrow_mut().w("cm", "state");
        cm.log.borrow_mut().w("cm", "peer_isn");
        match scheme {
            CmScheme::ThreeWay => {
                if !peer.flags.syn || peer.flags.cm_ack {
                    return None; // only a bare SYN may open
                }
                cm.peer_isn = Some(peer.isn);
                cm.state = CmState::SynRcvd;
                cm.queue_syn(true);
                cm.rtx_deadline = Some(now + SYN_RTO);
                Some(cm)
            }
            CmScheme::TimerBased { .. } => {
                if peer.flags.syn || peer.flags.rst {
                    return None;
                }
                cm.peer_isn = Some(peer.isn);
                cm.state = CmState::Established;
                cm.last_activity = now;
                cm.events.push_back(CmEvent::Established {
                    local_isn: cm.local_isn,
                    peer_isn: peer.isn,
                });
                Some(cm)
            }
        }
    }

    /// Rebuild CM for a flow whose handshake completed *statelessly*: the
    /// returning ACK proved knowledge of a valid SYN cookie, so the ISN
    /// pair is already established — go straight to `Established`
    /// (ThreeWay only; the timer-based scheme keeps no half-open state to
    /// flood in the first place).
    pub fn open_cookie(
        token: Admitted,
        local_isn: u32,
        peer_isn: u32,
        now: Time,
        log: SharedLog,
    ) -> ConnMgmt {
        let mut cm = ConnMgmt::new(token, CmScheme::ThreeWay, local_isn, log);
        cm.log.borrow_mut().w("cm", "state");
        cm.log.borrow_mut().w("cm", "peer_isn");
        cm.peer_isn = Some(peer_isn);
        cm.last_activity = now;
        cm.establish();
        cm
    }

    pub fn state(&self) -> CmState {
        self.state
    }

    /// The DM admission this machine was built from.
    pub fn conn_id(&self) -> ConnId {
        self.conn
    }

    pub fn local_isn(&self) -> u32 {
        self.local_isn
    }

    pub fn peer_isn(&self) -> Option<u32> {
        self.peer_isn
    }

    pub fn take_events(&mut self) -> Vec<CmEvent> {
        self.events.drain(..).collect()
    }

    /// Why the connection died, when it died abnormally.
    pub fn reset_reason(&self) -> Option<TransportError> {
        self.reset_reason
    }

    /// RFC 5961 challenge ACKs this connection has issued.
    pub fn challenge_acks(&self) -> u64 {
        self.challenge_acks
    }

    /// Issue an RFC 5961 challenge ACK: an empty packet whose exact
    /// seq/ack RD stamps at fill time. A blind attacker learns nothing;
    /// a legitimate peer that truly lost state answers it with an
    /// exact-sequence RST, which *is* obeyed.
    fn challenge(&mut self) {
        self.challenge_acks += 1;
        self.outbox.push_back(Packet::default());
    }

    /// Abort the connection: queue an RST to the peer, record `reason`,
    /// and move straight to `Closed`. Idempotent once closed.
    pub fn abort(&mut self, reason: TransportError) {
        if matches!(self.state, CmState::Closed) {
            return;
        }
        self.log.borrow_mut().w("cm", "state");
        self.state = CmState::Closed;
        self.reset_reason.get_or_insert(reason);
        self.rtx_deadline = None;
        self.time_wait_deadline = None;
        let mut pkt = Packet::default();
        pkt.cm.flags.rst = true;
        pkt.cm.isn = self.local_isn;
        self.outbox.push_back(pkt);
        self.events.push_back(CmEvent::Reset);
    }

    fn queue_syn(&mut self, with_ack: bool) {
        self.log.borrow_mut().r("cm", "local_isn");
        let mut pkt = Packet::default();
        pkt.cm.flags.syn = true;
        pkt.cm.flags.cm_ack = with_ack;
        pkt.cm.isn = self.local_isn;
        if with_ack {
            pkt.cm.ack_isn = self.peer_isn.expect("SYN-ACK needs the peer ISN");
        }
        self.outbox.push_back(pkt);
    }

    fn establish(&mut self) {
        self.log.borrow_mut().w("cm", "state");
        self.state = CmState::Established;
        self.rtx_deadline = None;
        self.rtx_count = 0;
        self.events.push_back(CmEvent::Established {
            local_isn: self.local_isn,
            peer_isn: self.peer_isn.expect("established implies peer ISN"),
        });
    }

    /// Process the CM header of an inbound packet.
    /// `handshake_ack` is true when the packet acknowledges our ISN
    /// (derived by the stack from RD's cumulative ack so CM itself never
    /// reads RD bits: ack == local_isn + 1). `rst_seq` is RD's
    /// classification of the packet's sequence number (RFC 5961),
    /// likewise derived by the stack; before RD exists (handshake
    /// states) the stack passes [`SeqValidity::Exact`] so a RST answering
    /// our SYN is still obeyed.
    pub fn on_packet(
        &mut self,
        hdr: &CmHeader,
        handshake_ack: bool,
        rst_seq: SeqValidity,
        now: Time,
    ) -> CmPass {
        self.log.borrow_mut().r("cm", "state");
        self.last_activity = now;
        if hdr.flags.rst {
            // Before the connection synchronizes there is no RD to judge
            // sequence numbers, so CM validates a RST with its *own* bits
            // (the RFC 793 rule that a RST answering a SYN must
            // acknowledge it): believe it only if it echoes our ISN. A
            // blind forger would have to guess the 32-bit ISN.
            if matches!(self.state, CmState::SynSent | CmState::SynRcvd) {
                if hdr.ack_isn == self.local_isn {
                    self.log.borrow_mut().w("cm", "state");
                    self.state = CmState::Closed;
                    self.reset_reason.get_or_insert(TransportError::Reset);
                    self.events.push_back(CmEvent::Reset);
                }
                return CmPass::Drop;
            }
            // RFC 5961 §3: obey only an *exact*-sequence RST; challenge an
            // in-window one (a blind attacker's best guess); ignore the
            // rest. CM decides the policy, RD did the arithmetic.
            match rst_seq {
                SeqValidity::Exact => {
                    self.log.borrow_mut().w("cm", "state");
                    // RFC 793 p.70: once both directions have shut down
                    // (TIME-WAIT, or our Closing with the peer's FIN
                    // already seen — the CLOSING/LAST-ACK analogs) a RST
                    // just deletes the TCB; only synchronized states
                    // with the user still attached signal "reset".
                    let silent = self.state == CmState::TimeWait
                        || (self.state == CmState::Closing && self.peer_fin_seen);
                    self.state = CmState::Closed;
                    if !silent {
                        self.reset_reason.get_or_insert(TransportError::Reset);
                    }
                    self.events.push_back(CmEvent::Reset);
                }
                SeqValidity::InWindow => self.challenge(),
                SeqValidity::Outside => {}
            }
            return CmPass::Drop;
        }
        match self.scheme {
            CmScheme::TimerBased { .. } => {
                if self.peer_isn.is_none() && !hdr.flags.syn {
                    self.log.borrow_mut().w("cm", "peer_isn");
                    self.peer_isn = Some(hdr.isn);
                    self.events.push_back(CmEvent::Established {
                        local_isn: self.local_isn,
                        peer_isn: hdr.isn,
                    });
                }
                if matches!(self.state, CmState::Closed) {
                    return CmPass::Drop;
                }
                CmPass::PassUp
            }
            CmScheme::ThreeWay => match self.state {
                CmState::SynSent => {
                    if hdr.flags.syn && hdr.flags.cm_ack && hdr.ack_isn == self.local_isn {
                        self.log.borrow_mut().w("cm", "peer_isn");
                        self.peer_isn = Some(hdr.isn);
                        self.establish();
                        // The pure ACK completing the handshake: an empty
                        // packet whose RD ack (stamped later) confirms.
                        self.outbox.push_back(Packet::default());
                        CmPass::Consumed
                    } else if hdr.flags.syn && !hdr.flags.cm_ack {
                        // Simultaneous open.
                        self.log.borrow_mut().w("cm", "peer_isn");
                        self.log.borrow_mut().w("cm", "state");
                        self.peer_isn = Some(hdr.isn);
                        self.state = CmState::SynRcvd;
                        self.queue_syn(true);
                        CmPass::Consumed
                    } else {
                        CmPass::Drop
                    }
                }
                CmState::SynRcvd => {
                    if hdr.flags.syn && !hdr.flags.cm_ack {
                        // Duplicate SYN: re-answer.
                        self.queue_syn(true);
                        return CmPass::Consumed;
                    }
                    if hdr.flags.syn && hdr.flags.cm_ack && hdr.ack_isn == self.local_isn {
                        // Crossed SYN-ACK: in a simultaneous open both
                        // sides move SYN_SENT -> SYN_RCVD and their
                        // SYN-ACKs cross in flight. The peer has
                        // acknowledged our ISN, so the connection is
                        // synchronized; confirm with a pure ACK exactly
                        // as the SYN_SENT path does (RFC 793 figure 8).
                        self.establish();
                        self.outbox.push_back(Packet::default());
                        return CmPass::Consumed;
                    }
                    if handshake_ack || !hdr.flags.syn {
                        // Explicit handshake ack, or implicit (data
                        // arriving means our SYN-ACK got through).
                        self.establish();
                        return CmPass::PassUp;
                    }
                    CmPass::Consumed
                }
                CmState::Established | CmState::Closing => {
                    if hdr.flags.syn {
                        // RFC 5961 §4: a SYN on a synchronized connection
                        // gets a challenge ACK, never a RST — a spoofed
                        // SYN must not kill a live connection, and a peer
                        // that genuinely rebooted will answer the
                        // challenge with an exact-sequence RST.
                        self.challenge();
                        return CmPass::Consumed;
                    }
                    CmPass::PassUp
                }
                CmState::TimeWait => {
                    // Re-ack anything (handled by RD's ack stamping on the
                    // empty packet).
                    self.outbox.push_back(Packet::default());
                    CmPass::Consumed
                }
                CmState::Idle | CmState::Closed => CmPass::Drop,
            },
        }
    }

    /// The application asked to close. CM flips state; the *stack* routes
    /// the FIN through RD (which owns its retransmission, as in TCP).
    /// Returns true when a FIN should be queued into RD.
    pub fn close_requested(&mut self) -> bool {
        self.log.borrow_mut().w("cm", "state");
        if self.close_requested {
            return false;
        }
        self.close_requested = true;
        match self.scheme {
            CmScheme::ThreeWay => {
                if matches!(self.state, CmState::Established | CmState::SynRcvd) {
                    self.state = CmState::Closing;
                    true
                } else {
                    self.state = CmState::Closed;
                    self.events.push_back(CmEvent::Closed);
                    false
                }
            }
            CmScheme::TimerBased { .. } => {
                // No FIN: the connection dies by quiet time.
                self.state = CmState::Closing;
                false
            }
        }
    }

    /// RD reports our FIN was acknowledged.
    pub fn on_local_fin_acked(&mut self, now: Time) {
        self.log.borrow_mut().w("cm", "fin_state");
        self.local_fin_acked = true;
        self.maybe_finish(now);
    }

    /// RD reports the peer's FIN was reached in sequence.
    pub fn on_peer_fin(&mut self, now: Time) {
        self.log.borrow_mut().w("cm", "fin_state");
        if !self.close_requested {
            // The peer closed first: we are the passive closer and skip
            // TIME_WAIT (RFC 793: CLOSE_WAIT -> LAST_ACK -> CLOSED).
            self.passive_close = true;
        }
        self.peer_fin_seen = true;
        self.maybe_finish(now);
    }

    pub fn peer_fin_seen(&self) -> bool {
        self.peer_fin_seen
    }

    fn maybe_finish(&mut self, now: Time) {
        if self.close_requested && self.local_fin_acked && self.peer_fin_seen {
            if self.passive_close {
                // Passive closer: the peer holds TIME_WAIT, we go
                // straight to CLOSED once our FIN is acknowledged.
                self.state = CmState::Closed;
                self.events.push_back(CmEvent::Closed);
            } else {
                // Active (or simultaneous) closer lingers in TIME_WAIT.
                self.state = CmState::TimeWait;
                self.time_wait_deadline = Some(now + TIME_WAIT);
            }
        }
    }

    /// Stamp CM's static fields on an outgoing packet (the redundant ISN
    /// the paper notes is "static after the initial handshake").
    pub fn fill_tx(&self, pkt: &mut Packet) {
        self.log.borrow_mut().r("cm", "local_isn");
        pkt.cm.isn = self.local_isn;
        if let Some(p) = self.peer_isn {
            pkt.cm.ack_isn = p;
        }
    }

    /// Mark an RD-emitted packet as carrying the FIN (CM owns the flag
    /// bit; RD owns the packet's retransmission).
    pub fn stamp_fin(&self, pkt: &mut Packet) {
        self.log.borrow_mut().r("cm", "state");
        pkt.cm.flags.fin = true;
    }

    /// Pending CM-originated packets (SYNs, handshake acks).
    pub fn poll_packet(&mut self) -> Option<Packet> {
        self.outbox.pop_front()
    }

    pub fn poll_deadline(&self) -> Option<Time> {
        let quiet_deadline = match self.scheme {
            CmScheme::TimerBased { quiet }
                if matches!(self.state, CmState::Closing) =>
            {
                Some(self.last_activity + quiet)
            }
            _ => None,
        };
        [self.rtx_deadline, self.time_wait_deadline, quiet_deadline]
            .into_iter()
            .flatten()
            .min()
    }

    pub fn on_tick(&mut self, now: Time) {
        if self.rtx_deadline.is_some_and(|d| now >= d) {
            self.log.borrow_mut().w("cm", "rtx");
            self.rtx_count += 1;
            if self.rtx_count > MAX_SYN_RETRIES {
                self.state = CmState::Closed;
                self.reset_reason.get_or_insert(TransportError::HandshakeFailed);
                self.events.push_back(CmEvent::Reset);
                self.rtx_deadline = None;
                return;
            }
            match self.state {
                CmState::SynSent => self.queue_syn(false),
                CmState::SynRcvd => self.queue_syn(true),
                _ => {}
            }
            // Exponential backoff for the bootstrap reliability.
            self.rtx_deadline = Some(now + SYN_RTO.saturating_mul(1 << self.rtx_count.min(6)));
        }
        if self.time_wait_deadline.is_some_and(|d| now >= d) {
            self.state = CmState::Closed;
            self.time_wait_deadline = None;
            self.events.push_back(CmEvent::Closed);
        }
        if let CmScheme::TimerBased { quiet } = self.scheme {
            if matches!(self.state, CmState::Closing)
                && now.since(self.last_activity) >= quiet
            {
                self.state = CmState::Closed;
                self.events.push_back(CmEvent::Closed);
            }
        }
    }

    /// Deterministic behavioral fingerprint for the CM contract checker
    /// (see [`crate::fingerprint`]): equal keys must imply behaviorally
    /// identical machines under the contract's drive alphabet.
    pub fn contract_key(&self) -> Vec<u64> {
        let scheme = match self.scheme {
            CmScheme::ThreeWay => 0,
            CmScheme::TimerBased { quiet } => fp::mix(1, quiet.0),
        };
        let state = match self.state {
            CmState::Idle => 0u64,
            CmState::SynSent => 1,
            CmState::SynRcvd => 2,
            CmState::Established => 3,
            CmState::Closing => 4,
            CmState::TimeWait => 5,
            CmState::Closed => 6,
        };
        let flags = (self.close_requested as u64)
            | (self.local_fin_acked as u64) << 1
            | (self.peer_fin_seen as u64) << 2
            | (self.passive_close as u64) << 3;
        let queues = fp::fold_bytes(
            fp::fold_bytes(fp::SEED, format!("{:?}", self.events).as_bytes()),
            format!("{:?}", self.outbox).as_bytes(),
        );
        vec![
            self.conn.0 as u64,
            scheme,
            state,
            self.local_isn as u64,
            self.peer_isn.map_or(u64::MAX, |p| p as u64),
            flags,
            self.rtx_deadline.map_or(u64::MAX, |t| t.0),
            self.rtx_count as u64,
            self.time_wait_deadline.map_or(u64::MAX, |t| t.0),
            self.last_activity.0,
            fp::fold_bytes(fp::SEED, format!("{:?}", self.reset_reason).as_bytes()),
            self.challenge_acks,
            queues,
        ]
    }
}

// ---------------------------------------------------------------------
// Contract driver (slverify::contracts::CmContract drives the *real*
// sublayer through this, exactly as CongCtrl drives RateController).
// ---------------------------------------------------------------------

/// The operations the CM assume/guarantee contract exercises. Implemented
/// by the shipped [`ConnMgmt`] and by the [`BuggyCm`] mutation canary.
pub trait CmDriver {
    fn on_packet(
        &mut self,
        hdr: &CmHeader,
        handshake_ack: bool,
        rst_seq: SeqValidity,
        now: Time,
    ) -> CmPass;
    fn on_tick(&mut self, now: Time);
    fn poll_deadline(&self) -> Option<Time>;
    fn state(&self) -> CmState;
    fn local_isn(&self) -> u32;
    fn peer_isn(&self) -> Option<u32>;
    fn challenge_acks(&self) -> u64;
    fn take_events(&mut self) -> Vec<CmEvent>;
    /// See [`ConnMgmt::contract_key`].
    fn contract_key(&self) -> Vec<u64>;
    fn box_clone(&self) -> Box<dyn CmDriver>;
}

impl Clone for Box<dyn CmDriver> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

impl CmDriver for ConnMgmt {
    fn on_packet(
        &mut self,
        hdr: &CmHeader,
        handshake_ack: bool,
        rst_seq: SeqValidity,
        now: Time,
    ) -> CmPass {
        ConnMgmt::on_packet(self, hdr, handshake_ack, rst_seq, now)
    }
    fn on_tick(&mut self, now: Time) {
        ConnMgmt::on_tick(self, now)
    }
    fn poll_deadline(&self) -> Option<Time> {
        ConnMgmt::poll_deadline(self)
    }
    fn state(&self) -> CmState {
        ConnMgmt::state(self)
    }
    fn local_isn(&self) -> u32 {
        ConnMgmt::local_isn(self)
    }
    fn peer_isn(&self) -> Option<u32> {
        ConnMgmt::peer_isn(self)
    }
    fn challenge_acks(&self) -> u64 {
        ConnMgmt::challenge_acks(self)
    }
    fn take_events(&mut self) -> Vec<CmEvent> {
        ConnMgmt::take_events(self)
    }
    fn contract_key(&self) -> Vec<u64> {
        ConnMgmt::contract_key(self)
    }
    fn box_clone(&self) -> Box<dyn CmDriver> {
        Box::new(self.clone())
    }
}

/// Mutation canary for the CM contract, mirroring [`slcc::BuggyDeflate`]:
/// a plausible refactor decides the SYN|ACK's `ack_isn` echo is "redundant
/// once the flag pair is present" and accepts whatever incarnation
/// answered first — sequencing the connection from *outside* the admitted
/// window (a stale incarnation's handshake). Never wired into product
/// code; it exists so `CmContract` has a concrete counterexample.
#[derive(Clone)]
pub struct BuggyCm {
    inner: ConnMgmt,
}

impl BuggyCm {
    /// Same signature as [`ConnMgmt::open_active`].
    pub fn open_active(
        token: Admitted,
        scheme: CmScheme,
        local_isn: u32,
        now: Time,
        log: SharedLog,
    ) -> BuggyCm {
        BuggyCm { inner: ConnMgmt::open_active(token, scheme, local_isn, now, log) }
    }
}

impl CmDriver for BuggyCm {
    fn on_packet(
        &mut self,
        hdr: &CmHeader,
        handshake_ack: bool,
        rst_seq: SeqValidity,
        now: Time,
    ) -> CmPass {
        let mut hdr = *hdr;
        if matches!(self.inner.state, CmState::SynSent | CmState::SynRcvd)
            && hdr.flags.syn
            && hdr.flags.cm_ack
        {
            // THE BUG: rewrite the echoed ISN to our own before the real
            // machine judges it, so a stale SYN|ACK establishes.
            hdr.ack_isn = self.inner.local_isn;
        }
        self.inner.on_packet(&hdr, handshake_ack, rst_seq, now)
    }
    fn on_tick(&mut self, now: Time) {
        self.inner.on_tick(now)
    }
    fn poll_deadline(&self) -> Option<Time> {
        self.inner.poll_deadline()
    }
    fn state(&self) -> CmState {
        self.inner.state()
    }
    fn local_isn(&self) -> u32 {
        self.inner.local_isn()
    }
    fn peer_isn(&self) -> Option<u32> {
        self.inner.peer_isn()
    }
    fn challenge_acks(&self) -> u64 {
        self.inner.challenge_acks()
    }
    fn take_events(&mut self) -> Vec<CmEvent> {
        self.inner.take_events()
    }
    fn contract_key(&self) -> Vec<u64> {
        self.inner.contract_key()
    }
    fn box_clone(&self) -> Box<dyn CmDriver> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::CmFlags;
    use tcp_mono::wire::{Endpoint, FourTuple};

    /// Mint a real [`Admitted`] token: the only way to build a CM machine
    /// is through a DM admission, in tests too.
    fn tok() -> Admitted {
        let mut d = crate::dm::Demux::new(1, slmetrics::shared());
        d.bind(FourTuple { local: Endpoint::new(1, 1), remote: Endpoint::new(2, 2) })
            .unwrap()
    }

    fn hdr(syn: bool, cm_ack: bool, isn: u32, ack_isn: u32) -> CmHeader {
        CmHeader { flags: CmFlags { syn, fin: false, rst: false, cm_ack }, isn, ack_isn }
    }

    #[test]
    fn three_way_handshake_active_side() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 100, Time::ZERO, slmetrics::shared());
        assert_eq!(cm.state(), CmState::SynSent);
        let syn = cm.poll_packet().expect("SYN queued");
        assert!(syn.cm.flags.syn && !syn.cm.flags.cm_ack);
        assert_eq!(syn.cm.isn, 100);
        // SYN-ACK arrives.
        let pass = cm.on_packet(&hdr(true, true, 200, 100), false, SeqValidity::Exact, Time::ZERO);
        assert_eq!(pass, CmPass::Consumed);
        assert_eq!(cm.state(), CmState::Established);
        assert_eq!(cm.peer_isn(), Some(200));
        assert_eq!(
            cm.take_events(),
            vec![CmEvent::Established { local_isn: 100, peer_isn: 200 }]
        );
        // The handshake-completing ack packet is queued.
        assert!(cm.poll_packet().is_some());
    }

    #[test]
    fn three_way_handshake_passive_side() {
        let peer_syn = hdr(true, false, 500, 0);
        let mut cm =
            ConnMgmt::open_passive(tok(), CmScheme::ThreeWay, 900, &peer_syn, Time::ZERO, slmetrics::shared())
                .expect("SYN opens");
        assert_eq!(cm.state(), CmState::SynRcvd);
        let synack = cm.poll_packet().unwrap();
        assert!(synack.cm.flags.syn && synack.cm.flags.cm_ack);
        assert_eq!(synack.cm.ack_isn, 500);
        // Handshake ack arrives (stack derives handshake_ack from RD ack).
        let pass = cm.on_packet(&hdr(false, false, 500, 0), true, SeqValidity::Exact, Time::ZERO);
        assert_eq!(pass, CmPass::PassUp);
        assert_eq!(cm.state(), CmState::Established);
    }

    #[test]
    fn passive_open_rejects_non_syn() {
        assert!(ConnMgmt::open_passive(tok(), 
            CmScheme::ThreeWay,
            1,
            &hdr(false, false, 5, 0),
            Time::ZERO,
            slmetrics::shared()
        )
        .is_none());
    }

    #[test]
    fn data_in_syn_rcvd_implicitly_establishes() {
        let mut cm = ConnMgmt::open_passive(tok(), 
            CmScheme::ThreeWay,
            900,
            &hdr(true, false, 500, 0),
            Time::ZERO,
            slmetrics::shared(),
        )
        .unwrap();
        cm.poll_packet();
        let pass = cm.on_packet(&hdr(false, false, 500, 0), false, SeqValidity::Exact, Time::ZERO);
        assert_eq!(pass, CmPass::PassUp);
        assert_eq!(cm.state(), CmState::Established);
    }

    #[test]
    fn syn_retransmission_with_backoff() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 1, Time::ZERO, slmetrics::shared());
        cm.poll_packet();
        assert!(cm.poll_packet().is_none());
        let d1 = cm.poll_deadline().unwrap();
        cm.on_tick(d1);
        assert!(cm.poll_packet().is_some(), "SYN retransmitted");
        let d2 = cm.poll_deadline().unwrap();
        assert!(d2.since(d1) > d1.since(Time::ZERO), "backoff grows");
    }

    #[test]
    fn syn_gives_up_eventually() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 1, Time::ZERO, slmetrics::shared());
        for _ in 0..10 {
            if let Some(d) = cm.poll_deadline() {
                cm.on_tick(d);
            }
        }
        assert_eq!(cm.state(), CmState::Closed);
        assert!(cm.take_events().contains(&CmEvent::Reset));
    }

    #[test]
    fn rst_kills_connection() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 1, Time::ZERO, slmetrics::shared());
        // Pre-synchronization, a RST is believed only if it acknowledges
        // our SYN — i.e. echoes our ISN (RFC 793).
        let mut rst = hdr(false, false, 0, 1);
        rst.flags.rst = true;
        assert_eq!(cm.on_packet(&rst, false, SeqValidity::Exact, Time::ZERO), CmPass::Drop);
        assert_eq!(cm.state(), CmState::Closed);
        assert_eq!(cm.take_events(), vec![CmEvent::Reset]);
    }

    #[test]
    fn blind_rst_in_syn_sent_is_ignored() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 1, Time::ZERO, slmetrics::shared());
        // A forged RST that does not echo our ISN never aborts the
        // handshake, whatever sequence validity the (absent) RD reports.
        let mut rst = hdr(false, false, 0, 99);
        rst.flags.rst = true;
        assert_eq!(cm.on_packet(&rst, false, SeqValidity::Exact, Time::ZERO), CmPass::Drop);
        assert_eq!(cm.state(), CmState::SynSent);
        assert!(cm.take_events().is_empty());
    }

    #[test]
    fn close_lifecycle_reaches_time_wait_then_closed() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 1, Time::ZERO, slmetrics::shared());
        cm.on_packet(&hdr(true, true, 2, 1), false, SeqValidity::Exact, Time::ZERO);
        assert!(cm.close_requested(), "FIN should be routed to RD");
        assert_eq!(cm.state(), CmState::Closing);
        cm.on_local_fin_acked(Time::ZERO + Dur::from_secs(1));
        cm.on_peer_fin(Time::ZERO + Dur::from_secs(1));
        assert_eq!(cm.state(), CmState::TimeWait);
        let dl = cm.poll_deadline().unwrap();
        cm.on_tick(dl);
        assert_eq!(cm.state(), CmState::Closed);
        assert!(cm.take_events().contains(&CmEvent::Closed));
    }

    #[test]
    fn timer_based_needs_no_handshake() {
        let mut a = ConnMgmt::open_active(tok(), 
            CmScheme::TimerBased { quiet: Dur::from_secs(5) },
            100,
            Time::ZERO,
            slmetrics::shared(),
        );
        assert_eq!(a.state(), CmState::Established);
        assert!(a.poll_packet().is_none(), "no SYN in timer-based CM");
        // First inbound packet teaches us the peer ISN.
        let pass = a.on_packet(&hdr(false, false, 777, 0), false, SeqValidity::Exact, Time::ZERO);
        assert_eq!(pass, CmPass::PassUp);
        assert_eq!(a.peer_isn(), Some(777));
        assert_eq!(
            a.take_events(),
            vec![CmEvent::Established { local_isn: 100, peer_isn: 777 }]
        );
    }

    #[test]
    fn timer_based_closes_by_quiet_time() {
        let quiet = Dur::from_secs(5);
        let mut a = ConnMgmt::open_active(tok(), 
            CmScheme::TimerBased { quiet },
            100,
            Time::ZERO,
            slmetrics::shared(),
        );
        a.on_packet(&hdr(false, false, 777, 0), false, SeqValidity::Exact, Time::ZERO);
        assert!(!a.close_requested(), "no FIN in timer-based CM");
        assert_eq!(a.state(), CmState::Closing);
        let dl = a.poll_deadline().unwrap();
        assert_eq!(dl, Time::ZERO + quiet);
        a.on_tick(dl);
        assert_eq!(a.state(), CmState::Closed);
    }

    #[test]
    fn abort_queues_rst_and_records_reason() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 42, Time::ZERO, slmetrics::shared());
        cm.on_packet(&hdr(true, true, 77, 42), false, SeqValidity::Exact, Time::ZERO);
        while cm.poll_packet().is_some() {} // drain SYN + handshake ack
        assert_eq!(cm.state(), CmState::Established);
        cm.abort(TransportError::RetriesExhausted);
        assert_eq!(cm.state(), CmState::Closed);
        assert_eq!(cm.reset_reason(), Some(TransportError::RetriesExhausted));
        assert!(cm.take_events().contains(&CmEvent::Reset));
        let rst = cm.poll_packet().expect("RST queued for the peer");
        assert!(rst.cm.flags.rst);
        // Idempotent: a second abort neither re-queues nor rewrites.
        cm.abort(TransportError::PeerVanished);
        assert!(cm.poll_packet().is_none());
        assert_eq!(cm.reset_reason(), Some(TransportError::RetriesExhausted));
    }

    #[test]
    fn inbound_rst_reports_peer_reset() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 42, Time::ZERO, slmetrics::shared());
        let mut h = hdr(false, false, 77, 42);
        h.flags.rst = true;
        assert_eq!(cm.on_packet(&h, false, SeqValidity::Exact, Time::ZERO), CmPass::Drop);
        assert_eq!(cm.state(), CmState::Closed);
        assert_eq!(cm.reset_reason(), Some(TransportError::Reset));
    }

    #[test]
    fn syn_retry_exhaustion_reports_handshake_failure() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 42, Time::ZERO, slmetrics::shared());
        while cm.state() == CmState::SynSent {
            let now = cm.poll_deadline().expect("SYN timer armed");
            cm.on_tick(now);
        }
        assert_eq!(cm.state(), CmState::Closed);
        assert_eq!(cm.reset_reason(), Some(TransportError::HandshakeFailed));
    }

    #[test]
    fn fill_tx_stamps_isns_only() {
        let mut cm = ConnMgmt::open_active(tok(), CmScheme::ThreeWay, 42, Time::ZERO, slmetrics::shared());
        cm.on_packet(&hdr(true, true, 77, 42), false, SeqValidity::Exact, Time::ZERO);
        let mut pkt = Packet::default();
        pkt.rd.seq = 5;
        cm.fill_tx(&mut pkt);
        assert_eq!(pkt.cm.isn, 42);
        assert_eq!(pkt.cm.ack_isn, 77);
        assert_eq!(pkt.rd.seq, 5, "CM must not touch RD bits");
    }
}
