//! The **demultiplexing (DM)** sublayer — "essentially UDP" (§3).
//!
//! Lowest of the four TCP sublayers: every other sublayer needs its
//! service, so it sits at the bottom. It owns the port namespace (binding,
//! reuse) and the 4-tuple → connection map, and per test **T3** it reads
//! and writes only the DM subheader (ports) plus the network addresses.

use crate::fingerprint as fp;
use crate::wire::Packet;
use slmetrics::SharedLog;
use std::collections::{HashMap, HashSet};
use tcp_mono::hash::FxBuildHasher;
use tcp_mono::wire::{Endpoint, FourTuple};

/// Opaque connection handle handed upward by DM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub usize);

/// Errors from binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmError {
    /// The exact 4-tuple is already bound.
    TupleInUse,
}

/// Proof of admission, minted exclusively by [`Demux::bind`].
///
/// This is the typestate half of the DM⇒CM contract: CM's constructors
/// consume an `Admitted` by value, so product code *cannot* create a
/// connection that DM never admitted — the contract violation is a compile
/// error, not a runtime check. The token is deliberately neither `Clone`
/// nor `Copy` (one admission, one connection) and has no public
/// constructor outside this module.
#[derive(Debug)]
pub struct Admitted {
    id: ConnId,
}

impl Admitted {
    /// The connection id DM assigned at admission.
    pub fn id(&self) -> ConnId {
        self.id
    }
}

/// The outcome of classifying an incoming packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmVerdict {
    /// Belongs to an existing connection.
    Known(ConnId),
    /// A new flow addressed to a listening port.
    NewFlow(FourTuple),
    /// A new flow that would have been admitted, but the accept gate is
    /// closed (overload / drain).
    Gated(FourTuple),
    /// Nothing wants it.
    NoListener,
    /// Not addressed to this host.
    NotForUs,
}

/// The DM sublayer state for one host.
#[derive(Clone)]
pub struct Demux {
    local_addr: u32,
    listeners: HashSet<u16>,
    /// 4-tuple → connection map, keyed by the shared seeded fx mix (the
    /// same function the shard router uses — "Demux has no state", so the
    /// bucket placement is a pure function of the tuple).
    table: HashMap<FourTuple, ConnId, FxBuildHasher>,
    tuples: HashMap<ConnId, FourTuple>,
    next_id: usize,
    next_ephemeral: u16,
    /// Overload accept gate: when set, DM stops admitting new flows while
    /// still demultiplexing established ones. This is DM's slice of the
    /// backpressure contract — admission to the connection namespace is a
    /// DM concern, so the gate lives here and nowhere else.
    gated: bool,
    log: SharedLog,
}

impl Demux {
    pub fn new(local_addr: u32, log: SharedLog) -> Demux {
        Demux {
            local_addr,
            listeners: HashSet::new(),
            table: HashMap::with_hasher(FxBuildHasher::with_seed(local_addr as u64)),
            tuples: HashMap::new(),
            next_id: 0,
            next_ephemeral: 49152,
            gated: false,
            log,
        }
    }

    pub fn local_addr(&self) -> u32 {
        self.local_addr
    }

    /// Accept new flows on `port`.
    pub fn listen(&mut self, port: u16) {
        self.log.borrow_mut().w("dm", "listeners");
        self.listeners.insert(port);
    }

    /// Gate (or un-gate) admission of new flows. Established connections
    /// are unaffected; gated new flows classify as [`DmVerdict::Gated`].
    pub fn set_gate(&mut self, gated: bool) {
        self.log.borrow_mut().w("dm", "gate");
        self.gated = gated;
    }

    pub fn is_gated(&self) -> bool {
        self.gated
    }

    /// Bind a connection to an exact 4-tuple, minting the [`Admitted`]
    /// token CM demands. Exactly-once admission is the contract: a tuple
    /// already in the table is rejected, never double-admitted.
    pub fn bind(&mut self, tuple: FourTuple) -> Result<Admitted, DmError> {
        self.log.borrow_mut().w("dm", "conn_table");
        if self.table.contains_key(&tuple) {
            return Err(DmError::TupleInUse);
        }
        let id = ConnId(self.next_id);
        self.next_id += 1;
        self.table.insert(tuple, id);
        self.tuples.insert(id, tuple);
        Ok(Admitted { id })
    }

    /// Allocate an ephemeral local port (encapsulating port reuse — the
    /// paper: "DM encapsulates details of binding IP addresses to ports
    /// and reusing ports"). `None` once every ephemeral port toward
    /// `remote` is bound — exhaustion is a typed outcome, not a hang.
    pub fn ephemeral_port(&mut self, remote: Endpoint) -> Option<u16> {
        self.log.borrow_mut().r("dm", "conn_table");
        const EPHEMERAL_RANGE: u32 = u16::MAX as u32 - 49152 + 1;
        for _ in 0..EPHEMERAL_RANGE {
            let p = self.next_ephemeral;
            self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(49152);
            let tuple = FourTuple { local: Endpoint::new(self.local_addr, p), remote };
            if !self.table.contains_key(&tuple) {
                return Some(p);
            }
        }
        None
    }

    /// Release a binding.
    pub fn unbind(&mut self, id: ConnId) {
        self.log.borrow_mut().w("dm", "conn_table");
        if let Some(t) = self.tuples.remove(&id) {
            self.table.remove(&t);
        }
    }

    /// Classify an incoming packet by its DM bits only.
    pub fn classify(&self, pkt: &Packet) -> DmVerdict {
        self.log.borrow_mut().r("dm", "conn_table");
        self.log.borrow_mut().r("dm", "listeners");
        if pkt.dst_addr != self.local_addr {
            return DmVerdict::NotForUs;
        }
        let tuple = FourTuple { local: pkt.dst(), remote: pkt.src() };
        if let Some(&id) = self.table.get(&tuple) {
            return DmVerdict::Known(id);
        }
        if self.listeners.contains(&pkt.dm.dst_port) {
            if self.gated {
                return DmVerdict::Gated(tuple);
            }
            return DmVerdict::NewFlow(tuple);
        }
        DmVerdict::NoListener
    }

    /// Stamp the DM subheader and addresses on an outgoing packet.
    pub fn fill_tx(&self, id: ConnId, pkt: &mut Packet) {
        self.log.borrow_mut().r("dm", "conn_table");
        let t = self.tuples[&id];
        pkt.src_addr = t.local.addr;
        pkt.dst_addr = t.remote.addr;
        pkt.dm.src_port = t.local.port;
        pkt.dm.dst_port = t.remote.port;
    }

    pub fn tuple(&self, id: ConnId) -> Option<FourTuple> {
        self.tuples.get(&id).copied()
    }

    /// O(1) hashed 4-tuple lookup (the host layer's demux path).
    pub fn lookup(&self, tuple: &FourTuple) -> Option<ConnId> {
        self.table.get(tuple).copied()
    }

    pub fn conn_ids(&self) -> Vec<ConnId> {
        let mut v: Vec<ConnId> = self.tuples.keys().copied().collect();
        v.sort();
        v
    }

    /// Deterministic behavioral fingerprint for the DM contract checker.
    /// Equal keys must imply behaviorally identical demuxers under the
    /// contract's drive alphabet (see [`crate::fingerprint`]).
    pub fn contract_key(&self) -> Vec<u64> {
        let mut listeners: Vec<u64> = self.listeners.iter().map(|&p| p as u64).collect();
        listeners.sort_unstable();
        let mut conns: Vec<u64> = self
            .tuples
            .iter()
            .map(|(id, t)| fp::mix(id.0 as u64, tuple_fp(t)))
            .collect();
        conns.sort_unstable();
        vec![
            self.gated as u64,
            self.next_id as u64,
            self.next_ephemeral as u64,
            fp::fold(fp::SEED, listeners),
            fp::fold(fp::SEED, conns),
        ]
    }
}

fn tuple_fp(t: &FourTuple) -> u64 {
    fp::fold(
        fp::SEED,
        [
            t.local.addr as u64,
            t.local.port as u64,
            t.remote.addr as u64,
            t.remote.port as u64,
        ],
    )
}

// ---------------------------------------------------------------------
// Contract driver (slverify::contracts::DmContract drives the *real*
// sublayer through this, exactly as CongCtrl drives RateController).
// ---------------------------------------------------------------------

/// The operations the DM assume/guarantee contract exercises. Implemented
/// by the shipped [`Demux`] and by the [`BuggyDm`] mutation canary; the
/// checker model is written once against this trait and run against both.
pub trait DmDriver {
    fn listen(&mut self, port: u16);
    fn set_gate(&mut self, gated: bool);
    /// Admission as the checker sees it: the [`Admitted`] token collapsed
    /// to its id. Product code gets the typestate; the checker tracks the
    /// ghost obligations itself.
    fn admit(&mut self, tuple: FourTuple) -> Result<ConnId, DmError>;
    fn release(&mut self, id: ConnId);
    fn classify(&self, pkt: &Packet) -> DmVerdict;
    fn lookup(&self, tuple: &FourTuple) -> Option<ConnId>;
    fn tuple_of(&self, id: ConnId) -> Option<FourTuple>;
    /// See [`Demux::contract_key`] — equal keys promise behaviorally
    /// identical drivers.
    fn contract_key(&self) -> Vec<u64>;
    fn box_clone(&self) -> Box<dyn DmDriver>;
}

impl Clone for Box<dyn DmDriver> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

impl DmDriver for Demux {
    fn listen(&mut self, port: u16) {
        Demux::listen(self, port)
    }
    fn set_gate(&mut self, gated: bool) {
        Demux::set_gate(self, gated)
    }
    fn admit(&mut self, tuple: FourTuple) -> Result<ConnId, DmError> {
        self.bind(tuple).map(|a| a.id())
    }
    fn release(&mut self, id: ConnId) {
        self.unbind(id)
    }
    fn classify(&self, pkt: &Packet) -> DmVerdict {
        Demux::classify(self, pkt)
    }
    fn lookup(&self, tuple: &FourTuple) -> Option<ConnId> {
        Demux::lookup(self, tuple)
    }
    fn tuple_of(&self, id: ConnId) -> Option<FourTuple> {
        self.tuple(id)
    }
    fn contract_key(&self) -> Vec<u64> {
        Demux::contract_key(self)
    }
    fn box_clone(&self) -> Box<dyn DmDriver> {
        Box::new(self.clone())
    }
}

/// Mutation canary for the DM contract, mirroring [`slcc::BuggyDeflate`]:
/// a plausible refactor slip decides duplicate binds are "idempotent" and
/// hands out a *fresh* handle for a tuple that is already live — double
/// admission. Never wired into product code; it exists so `DmContract`
/// has a concrete counterexample proving the exactly-once obligation is
/// load-bearing.
#[derive(Clone)]
pub struct BuggyDm {
    inner: Demux,
    bonus: usize,
}

impl BuggyDm {
    pub fn new(local_addr: u32, log: SharedLog) -> BuggyDm {
        BuggyDm { inner: Demux::new(local_addr, log), bonus: 0 }
    }
}

impl DmDriver for BuggyDm {
    fn listen(&mut self, port: u16) {
        self.inner.listen(port)
    }
    fn set_gate(&mut self, gated: bool) {
        self.inner.set_gate(gated)
    }
    fn admit(&mut self, tuple: FourTuple) -> Result<ConnId, DmError> {
        match self.inner.bind(tuple) {
            Ok(a) => Ok(a.id()),
            Err(DmError::TupleInUse) => {
                // THE BUG: treat the duplicate as a re-admission and mint a
                // second ConnId for the same 4-tuple. The demux table still
                // points at the first id, so the two connections now shear.
                let id = ConnId(usize::MAX - self.bonus);
                self.bonus += 1;
                self.inner.tuples.insert(id, tuple);
                Ok(id)
            }
        }
    }
    fn release(&mut self, id: ConnId) {
        self.inner.unbind(id)
    }
    fn classify(&self, pkt: &Packet) -> DmVerdict {
        Demux::classify(&self.inner, pkt)
    }
    fn lookup(&self, tuple: &FourTuple) -> Option<ConnId> {
        Demux::lookup(&self.inner, tuple)
    }
    fn tuple_of(&self, id: ConnId) -> Option<FourTuple> {
        self.inner.tuple(id)
    }
    fn contract_key(&self) -> Vec<u64> {
        let mut k = self.inner.contract_key();
        k.push(self.bonus as u64);
        k
    }
    fn box_clone(&self) -> Box<dyn DmDriver> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm() -> Demux {
        Demux::new(10, slmetrics::shared())
    }

    fn tuple(lport: u16, raddr: u32, rport: u16) -> FourTuple {
        FourTuple { local: Endpoint::new(10, lport), remote: Endpoint::new(raddr, rport) }
    }

    fn pkt_to(dst_addr: u32, dst_port: u16, src: Endpoint) -> Packet {
        let mut p = Packet { src_addr: src.addr, dst_addr, ..Packet::default() };
        p.dm.src_port = src.port;
        p.dm.dst_port = dst_port;
        p
    }

    #[test]
    fn bind_and_classify_known() {
        let mut d = dm();
        let t = tuple(5000, 20, 80);
        let id = d.bind(t).unwrap().id();
        let p = pkt_to(10, 5000, Endpoint::new(20, 80));
        assert_eq!(d.classify(&p), DmVerdict::Known(id));
    }

    #[test]
    fn duplicate_bind_rejected() {
        let mut d = dm();
        let t = tuple(5000, 20, 80);
        d.bind(t).unwrap();
        assert!(matches!(d.bind(t), Err(DmError::TupleInUse)));
    }

    #[test]
    fn listener_accepts_new_flow() {
        let mut d = dm();
        d.listen(80);
        let p = pkt_to(10, 80, Endpoint::new(20, 5555));
        match d.classify(&p) {
            DmVerdict::NewFlow(t) => {
                assert_eq!(t.local.port, 80);
                assert_eq!(t.remote, Endpoint::new(20, 5555));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gate_blocks_new_flows_but_not_established() {
        let mut d = dm();
        d.listen(80);
        let id = d.bind(tuple(5000, 20, 80)).unwrap().id();
        d.set_gate(true);
        let fresh = pkt_to(10, 80, Endpoint::new(20, 5555));
        match d.classify(&fresh) {
            DmVerdict::Gated(t) => assert_eq!(t.local.port, 80),
            other => panic!("expected Gated, got {other:?}"),
        }
        let known = pkt_to(10, 5000, Endpoint::new(20, 80));
        assert_eq!(d.classify(&known), DmVerdict::Known(id));
        d.set_gate(false);
        assert!(matches!(d.classify(&fresh), DmVerdict::NewFlow(_)));
    }

    #[test]
    fn unknown_port_rejected() {
        let d = dm();
        let p = pkt_to(10, 81, Endpoint::new(20, 5555));
        assert_eq!(d.classify(&p), DmVerdict::NoListener);
    }

    #[test]
    fn foreign_address_ignored() {
        let d = dm();
        let p = pkt_to(99, 80, Endpoint::new(20, 5555));
        assert_eq!(d.classify(&p), DmVerdict::NotForUs);
    }

    #[test]
    fn unbind_frees_tuple() {
        let mut d = dm();
        let t = tuple(5000, 20, 80);
        let id = d.bind(t).unwrap().id();
        d.unbind(id);
        assert!(d.bind(t).is_ok(), "tuple reusable after unbind");
    }

    #[test]
    fn ephemeral_ports_skip_taken_tuples() {
        let mut d = dm();
        let remote = Endpoint::new(20, 80);
        let p1 = d.ephemeral_port(remote).unwrap();
        d.bind(tuple(p1, 20, 80)).unwrap();
        let p2 = d.ephemeral_port(remote).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn buggy_dm_double_admits_where_real_dm_refuses() {
        let t = tuple(5000, 20, 80);
        let mut real = dm();
        real.bind(t).unwrap();
        assert!(DmDriver::admit(&mut real, t).is_err());
        let mut bug = BuggyDm::new(10, slmetrics::shared());
        let a = bug.admit(t).unwrap();
        let b = bug.admit(t).unwrap();
        assert_ne!(a, b, "the canary mints two ids for one tuple");
    }

    #[test]
    fn contract_key_is_stable_across_clone() {
        let mut d = dm();
        d.listen(80);
        d.bind(tuple(5000, 20, 80)).unwrap();
        assert_eq!(d.contract_key(), d.clone().contract_key());
    }

    #[test]
    fn fill_tx_stamps_only_dm_fields() {
        let mut d = dm();
        let id = d.bind(tuple(5000, 20, 80)).unwrap().id();
        let mut p = Packet::default();
        p.cm.isn = 7; // foreign field must be untouched
        d.fill_tx(id, &mut p);
        assert_eq!(p.src_addr, 10);
        assert_eq!(p.dst_addr, 20);
        assert_eq!(p.dm.src_port, 5000);
        assert_eq!(p.dm.dst_port, 80);
        assert_eq!(p.cm.isn, 7);
    }
}
