//! The **demultiplexing (DM)** sublayer — "essentially UDP" (§3).
//!
//! Lowest of the four TCP sublayers: every other sublayer needs its
//! service, so it sits at the bottom. It owns the port namespace (binding,
//! reuse) and the 4-tuple → connection map, and per test **T3** it reads
//! and writes only the DM subheader (ports) plus the network addresses.

use crate::wire::Packet;
use slmetrics::SharedLog;
use std::collections::{HashMap, HashSet};
use tcp_mono::hash::FxBuildHasher;
use tcp_mono::wire::{Endpoint, FourTuple};

/// Opaque connection handle handed upward by DM.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub usize);

/// Errors from binding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmError {
    /// The exact 4-tuple is already bound.
    TupleInUse,
}

/// The outcome of classifying an incoming packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DmVerdict {
    /// Belongs to an existing connection.
    Known(ConnId),
    /// A new flow addressed to a listening port.
    NewFlow(FourTuple),
    /// A new flow that would have been admitted, but the accept gate is
    /// closed (overload / drain).
    Gated(FourTuple),
    /// Nothing wants it.
    NoListener,
    /// Not addressed to this host.
    NotForUs,
}

/// The DM sublayer state for one host.
pub struct Demux {
    local_addr: u32,
    listeners: HashSet<u16>,
    /// 4-tuple → connection map, keyed by the shared seeded fx mix (the
    /// same function the shard router uses — "Demux has no state", so the
    /// bucket placement is a pure function of the tuple).
    table: HashMap<FourTuple, ConnId, FxBuildHasher>,
    tuples: HashMap<ConnId, FourTuple>,
    next_id: usize,
    next_ephemeral: u16,
    /// Overload accept gate: when set, DM stops admitting new flows while
    /// still demultiplexing established ones. This is DM's slice of the
    /// backpressure contract — admission to the connection namespace is a
    /// DM concern, so the gate lives here and nowhere else.
    gated: bool,
    log: SharedLog,
}

impl Demux {
    pub fn new(local_addr: u32, log: SharedLog) -> Demux {
        Demux {
            local_addr,
            listeners: HashSet::new(),
            table: HashMap::with_hasher(FxBuildHasher::with_seed(local_addr as u64)),
            tuples: HashMap::new(),
            next_id: 0,
            next_ephemeral: 49152,
            gated: false,
            log,
        }
    }

    pub fn local_addr(&self) -> u32 {
        self.local_addr
    }

    /// Accept new flows on `port`.
    pub fn listen(&mut self, port: u16) {
        self.log.borrow_mut().w("dm", "listeners");
        self.listeners.insert(port);
    }

    /// Gate (or un-gate) admission of new flows. Established connections
    /// are unaffected; gated new flows classify as [`DmVerdict::Gated`].
    pub fn set_gate(&mut self, gated: bool) {
        self.log.borrow_mut().w("dm", "gate");
        self.gated = gated;
    }

    pub fn is_gated(&self) -> bool {
        self.gated
    }

    /// Bind a connection to an exact 4-tuple.
    pub fn bind(&mut self, tuple: FourTuple) -> Result<ConnId, DmError> {
        self.log.borrow_mut().w("dm", "conn_table");
        if self.table.contains_key(&tuple) {
            return Err(DmError::TupleInUse);
        }
        let id = ConnId(self.next_id);
        self.next_id += 1;
        self.table.insert(tuple, id);
        self.tuples.insert(id, tuple);
        Ok(id)
    }

    /// Allocate an ephemeral local port (encapsulating port reuse — the
    /// paper: "DM encapsulates details of binding IP addresses to ports
    /// and reusing ports"). `None` once every ephemeral port toward
    /// `remote` is bound — exhaustion is a typed outcome, not a hang.
    pub fn ephemeral_port(&mut self, remote: Endpoint) -> Option<u16> {
        self.log.borrow_mut().r("dm", "conn_table");
        const EPHEMERAL_RANGE: u32 = u16::MAX as u32 - 49152 + 1;
        for _ in 0..EPHEMERAL_RANGE {
            let p = self.next_ephemeral;
            self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(49152);
            let tuple = FourTuple { local: Endpoint::new(self.local_addr, p), remote };
            if !self.table.contains_key(&tuple) {
                return Some(p);
            }
        }
        None
    }

    /// Release a binding.
    pub fn unbind(&mut self, id: ConnId) {
        self.log.borrow_mut().w("dm", "conn_table");
        if let Some(t) = self.tuples.remove(&id) {
            self.table.remove(&t);
        }
    }

    /// Classify an incoming packet by its DM bits only.
    pub fn classify(&self, pkt: &Packet) -> DmVerdict {
        self.log.borrow_mut().r("dm", "conn_table");
        self.log.borrow_mut().r("dm", "listeners");
        if pkt.dst_addr != self.local_addr {
            return DmVerdict::NotForUs;
        }
        let tuple = FourTuple { local: pkt.dst(), remote: pkt.src() };
        if let Some(&id) = self.table.get(&tuple) {
            return DmVerdict::Known(id);
        }
        if self.listeners.contains(&pkt.dm.dst_port) {
            if self.gated {
                return DmVerdict::Gated(tuple);
            }
            return DmVerdict::NewFlow(tuple);
        }
        DmVerdict::NoListener
    }

    /// Stamp the DM subheader and addresses on an outgoing packet.
    pub fn fill_tx(&self, id: ConnId, pkt: &mut Packet) {
        self.log.borrow_mut().r("dm", "conn_table");
        let t = self.tuples[&id];
        pkt.src_addr = t.local.addr;
        pkt.dst_addr = t.remote.addr;
        pkt.dm.src_port = t.local.port;
        pkt.dm.dst_port = t.remote.port;
    }

    pub fn tuple(&self, id: ConnId) -> Option<FourTuple> {
        self.tuples.get(&id).copied()
    }

    /// O(1) hashed 4-tuple lookup (the host layer's demux path).
    pub fn lookup(&self, tuple: &FourTuple) -> Option<ConnId> {
        self.table.get(tuple).copied()
    }

    pub fn conn_ids(&self) -> Vec<ConnId> {
        let mut v: Vec<ConnId> = self.tuples.keys().copied().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm() -> Demux {
        Demux::new(10, slmetrics::shared())
    }

    fn tuple(lport: u16, raddr: u32, rport: u16) -> FourTuple {
        FourTuple { local: Endpoint::new(10, lport), remote: Endpoint::new(raddr, rport) }
    }

    fn pkt_to(dst_addr: u32, dst_port: u16, src: Endpoint) -> Packet {
        let mut p = Packet { src_addr: src.addr, dst_addr, ..Packet::default() };
        p.dm.src_port = src.port;
        p.dm.dst_port = dst_port;
        p
    }

    #[test]
    fn bind_and_classify_known() {
        let mut d = dm();
        let t = tuple(5000, 20, 80);
        let id = d.bind(t).unwrap();
        let p = pkt_to(10, 5000, Endpoint::new(20, 80));
        assert_eq!(d.classify(&p), DmVerdict::Known(id));
    }

    #[test]
    fn duplicate_bind_rejected() {
        let mut d = dm();
        let t = tuple(5000, 20, 80);
        d.bind(t).unwrap();
        assert_eq!(d.bind(t), Err(DmError::TupleInUse));
    }

    #[test]
    fn listener_accepts_new_flow() {
        let mut d = dm();
        d.listen(80);
        let p = pkt_to(10, 80, Endpoint::new(20, 5555));
        match d.classify(&p) {
            DmVerdict::NewFlow(t) => {
                assert_eq!(t.local.port, 80);
                assert_eq!(t.remote, Endpoint::new(20, 5555));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn gate_blocks_new_flows_but_not_established() {
        let mut d = dm();
        d.listen(80);
        let id = d.bind(tuple(5000, 20, 80)).unwrap();
        d.set_gate(true);
        let fresh = pkt_to(10, 80, Endpoint::new(20, 5555));
        match d.classify(&fresh) {
            DmVerdict::Gated(t) => assert_eq!(t.local.port, 80),
            other => panic!("expected Gated, got {other:?}"),
        }
        let known = pkt_to(10, 5000, Endpoint::new(20, 80));
        assert_eq!(d.classify(&known), DmVerdict::Known(id));
        d.set_gate(false);
        assert!(matches!(d.classify(&fresh), DmVerdict::NewFlow(_)));
    }

    #[test]
    fn unknown_port_rejected() {
        let d = dm();
        let p = pkt_to(10, 81, Endpoint::new(20, 5555));
        assert_eq!(d.classify(&p), DmVerdict::NoListener);
    }

    #[test]
    fn foreign_address_ignored() {
        let d = dm();
        let p = pkt_to(99, 80, Endpoint::new(20, 5555));
        assert_eq!(d.classify(&p), DmVerdict::NotForUs);
    }

    #[test]
    fn unbind_frees_tuple() {
        let mut d = dm();
        let t = tuple(5000, 20, 80);
        let id = d.bind(t).unwrap();
        d.unbind(id);
        assert!(d.bind(t).is_ok(), "tuple reusable after unbind");
    }

    #[test]
    fn ephemeral_ports_skip_taken_tuples() {
        let mut d = dm();
        let remote = Endpoint::new(20, 80);
        let p1 = d.ephemeral_port(remote).unwrap();
        d.bind(tuple(p1, 20, 80)).unwrap();
        let p2 = d.ephemeral_port(remote).unwrap();
        assert_ne!(p1, p2);
    }

    #[test]
    fn fill_tx_stamps_only_dm_fields() {
        let mut d = dm();
        let id = d.bind(tuple(5000, 20, 80)).unwrap();
        let mut p = Packet::default();
        p.cm.isn = 7; // foreign field must be untouched
        d.fill_tx(id, &mut p);
        assert_eq!(p.src_addr, 10);
        assert_eq!(p.dst_addr, 20);
        assert_eq!(p.dm.src_port, 5000);
        assert_eq!(p.dm.dst_port, 80);
        assert_eq!(p.cm.isn, 7);
    }
}
