//! Deterministic state fingerprints for the contract drivers.
//!
//! Each sublayer exposes a `contract_key() -> Vec<u64>` used by
//! `slverify::contracts` to deduplicate checker states, exactly like
//! `slcc::RateController::state_key`. The same promise applies: **equal
//! fingerprints must imply behaviorally identical sublayers** under the
//! contract's drive alphabet. The folds here are fixed-constant FNV-style
//! mixes — no per-process seeding — so state counts (and the JSON
//! benchmarks derived from them) are byte-identical across runs.

/// FNV-1a style 64-bit fold step.
pub fn mix(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x100_0000_01b3)
}

/// Fold a byte slice into a single word (content-distinguishing, so the
/// OSR contract can tell reordered streams apart, not just resized ones).
pub fn fold_bytes(mut acc: u64, bytes: &[u8]) -> u64 {
    acc = mix(acc, bytes.len() as u64);
    for &b in bytes {
        acc = mix(acc, b as u64);
    }
    acc
}

/// Fold an iterator of words.
pub fn fold(mut acc: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    for w in words {
        acc = mix(acc, w);
    }
    acc
}

/// The conventional fold seed (FNV offset basis).
pub const SEED: u64 = 0xcbf2_9ce4_8422_2325;
