//! Signals crossing the RD → OSR interface (test **T2**).
//!
//! "Other congestion signals such as timeouts and loss information should
//! be summarized and passed by RD to OSR" (the paper, citing Narayan et
//! al.'s restructured congestion control). These are the *only* values
//! that cross the boundary — OSR never sees sequence numbers, and RD never
//! sees the congestion window.

/// RD's classification of an inbound control packet's sequence number,
/// derived by the *stack* (like the `handshake_ack` boolean) so CM never
/// reads RD's bits. This is the cross-sublayer signal RFC 5961's RST
/// validation needs: CM decides *policy* (kill / challenge / ignore), RD
/// owns the sequence arithmetic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeqValidity {
    /// Exactly the next expected sequence — trustworthy.
    Exact,
    /// Inside the receive window but not exact — a blind injector's best
    /// guess; challenge, never obey.
    InWindow,
    /// Outside the window — noise; drop silently.
    Outside,
}

/// A congestion/progress signal summarized by RD for OSR. The enum itself
/// lives in the shared `slcc` crate (both stacks feed the same signals to
/// the same controllers); re-exported here because this boundary — RD
/// summarizes, OSR consumes — is where the paper places it.
pub use slcc::CongSignal;
