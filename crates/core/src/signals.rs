//! Signals crossing the RD → OSR interface (test **T2**).
//!
//! "Other congestion signals such as timeouts and loss information should
//! be summarized and passed by RD to OSR" (the paper, citing Narayan et
//! al.'s restructured congestion control). These are the *only* values
//! that cross the boundary — OSR never sees sequence numbers, and RD never
//! sees the congestion window.

use netsim::Dur;

/// A congestion/progress signal summarized by RD for OSR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongSignal {
    /// New data acknowledged; `rtt` present when Karn's rule allows a
    /// sample.
    Acked { bytes: u32, rtt: Option<Dur> },
    /// Loss inferred from duplicate acks (mild: fast retransmit handled
    /// it).
    DupAckLoss,
    /// Loss inferred from retransmission timeout (severe).
    TimeoutLoss,
    /// The peer echoed an ECN mark.
    EcnEcho,
}
