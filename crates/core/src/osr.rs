//! The **ordering, segmenting & rate control (OSR)** sublayer (§3) — the
//! uppermost TCP sublayer.
//!
//! "OSR takes the byte stream and breaks it up into segments based on
//! parameters like maximum segment size. At the receive end, segments may
//! be delivered out of order by the RD sublayer. OSR must paste segments
//! back in order... Rate control is hidden within OSR which interfaces
//! with the RD sublayer below by deciding when a segment is 'ready' to be
//! transmitted."
//!
//! Per test **T3**, OSR owns the ECN-echo and receiver-window bits of the
//! native header, the reassembly buffer, and the pluggable
//! [`RateController`]; it learns about network conditions *only* through
//! the summarized [`CongSignal`]s RD passes up and through its own header
//! bits — never from sequence numbers.

use crate::cc::RateController;
use crate::fingerprint as fp;
use crate::signals::CongSignal;
use crate::wire::Packet;
use netsim::{Dur, Time};
use slmetrics::{Pressure, SharedLog};
use std::collections::{BTreeMap, VecDeque};

/// Maximum segment size OSR cuts the byte stream into.
pub const MSS: usize = 1000;
/// Receive buffer capacity; the advertised window is its free space.
pub const RCV_BUF_CAP: usize = 64 * 1024 - 1;
/// Send-buffer cap: [`Osr::write`] accepts at most this much queued,
/// un-segmented data and reports the shortfall (backpressure), so an
/// application — or an attack campaign — cannot balloon memory by
/// writing faster than the network drains.
pub const SND_BUF_CAP: usize = 1 << 20;
/// First zero-window persist timeout; doubles per unanswered probe.
const PERSIST_INITIAL: Dur = Dur(500_000_000);
/// Persist backoff ceiling.
const PERSIST_MAX: Dur = Dur(60_000_000_000);

/// OSR counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OsrStats {
    pub segments_cut: u64,
    pub bytes_written: u64,
    pub bytes_read: u64,
    pub blocked_by_rate: u64,
    pub blocked_by_peer_window: u64,
    pub zero_window_probes: u64,
    /// Out-of-order segments dropped because the reassembly buffer hit its
    /// hard cap (a hostile sender ignoring our advertised window cannot
    /// grow memory without bound).
    pub reasm_overflow_drops: u64,
}

/// The OSR sublayer for one connection.
#[derive(Clone)]
pub struct Osr {
    // --- sender ---
    app_buf: VecDeque<u8>,
    /// Bytes handed to RD and not yet acked (window accounting; "the
    /// sending RD must tell the sending OSR when segments are acked so the
    /// sending OSR can advance the congestion and flow control windows").
    bytes_in_flight: u64,
    rate: Box<dyn RateController>,
    peer_wnd: u32,
    app_closed: bool,
    /// Zero-window persist timer: armed while the peer window pins us at
    /// zero with data queued; each expiry releases a 1-byte probe so a
    /// lost window update cannot deadlock the connection (TCP's persist
    /// timer).
    persist_deadline: Option<Time>,
    persist_backoff: Dur,
    probe_due: bool,

    // --- receiver ---
    reasm: BTreeMap<u64, Vec<u8>>,
    rcv_next: u64,
    app_out: VecDeque<u8>,
    /// Pending ECN echo to reflect in our next header.
    ecn_to_echo: bool,
    /// The application freed receive-buffer space; the peer should hear
    /// about the reopened window.
    window_update_pending: bool,
    /// Host memory pressure. OSR's slice of the backpressure contract:
    /// under pressure the advertised receive window is clamped to a
    /// fraction of the real free space, slowing senders *before* the
    /// buffer fills. Never clamped to zero — accepted connections keep
    /// making progress (no starvation), just slower.
    pressure: Pressure,

    pub stats: OsrStats,
    /// CC observability: window samples and loss/recovery event counts,
    /// in the shared `slmetrics` shape both stacks fill (E19).
    pub cc: slmetrics::CcCounters,
    log: SharedLog,
}

impl Osr {
    pub fn new(rate: Box<dyn RateController>, log: SharedLog) -> Osr {
        Osr {
            app_buf: VecDeque::new(),
            bytes_in_flight: 0,
            rate,
            peer_wnd: MSS as u32, // conservative until the first header
            app_closed: false,
            persist_deadline: None,
            persist_backoff: PERSIST_INITIAL,
            probe_due: false,
            reasm: BTreeMap::new(),
            rcv_next: 0,
            app_out: VecDeque::new(),
            ecn_to_echo: false,
            window_update_pending: false,
            pressure: Pressure::Nominal,
            stats: OsrStats::default(),
            cc: slmetrics::CcCounters::default(),
            log,
        }
    }

    pub fn rate_name(&self) -> &'static str {
        self.rate.name()
    }

    /// Total bytes this sublayer is holding (send queue, parked
    /// reassembly, unread app data) — the memory-bound invariant the
    /// attack campaign checks.
    pub fn buffered_bytes(&self) -> usize {
        self.app_buf.len()
            + self.app_out.len()
            + self.reasm.values().map(Vec::len).sum::<usize>()
    }

    // --- application interface ---

    /// Queue bytes from the application; returns how many were accepted
    /// (fewer than `data.len()` once the send buffer is full).
    pub fn write(&mut self, data: &[u8]) -> usize {
        self.log.borrow_mut().w("osr", "app_buf");
        assert!(!self.app_closed, "write after close");
        let n = data.len().min(SND_BUF_CAP.saturating_sub(self.app_buf.len()));
        self.app_buf.extend(data[..n].iter().copied());
        self.stats.bytes_written += n as u64;
        n
    }

    /// Drain in-order bytes to the application.
    pub fn read(&mut self) -> Vec<u8> {
        self.log.borrow_mut().r("osr", "app_out");
        let out: Vec<u8> = self.app_out.drain(..).collect();
        self.stats.bytes_read += out.len() as u64;
        if out.len() >= MSS {
            // The window reopened significantly: tell the peer (window
            // update, as in TCP).
            self.window_update_pending = true;
        }
        out
    }

    /// In-order bytes available to [`Osr::read`] without draining them —
    /// the host layer's readability predicate.
    pub fn readable_len(&self) -> usize {
        self.app_out.len()
    }

    /// Free send-buffer space — the host layer's writability predicate.
    pub fn write_capacity(&self) -> usize {
        SND_BUF_CAP.saturating_sub(self.app_buf.len())
    }

    /// True once per significant window reopening; the stack responds by
    /// emitting a bare (ack-only) packet carrying the fresh window.
    pub fn take_window_update(&mut self) -> bool {
        std::mem::take(&mut self.window_update_pending)
    }

    /// Drop a pending window update. The stack calls this once the
    /// peer's FIN is in: no more data can arrive, so advertising the
    /// reopened window would only poke a peer whose TCB may already be
    /// deleted.
    pub fn suppress_window_update(&mut self) {
        self.window_update_pending = false;
    }

    /// Application will write no more.
    pub fn close(&mut self) {
        self.app_closed = true;
    }

    /// All written bytes handed to RD?
    pub fn drained(&self) -> bool {
        self.app_buf.is_empty()
    }

    pub fn bytes_in_flight(&self) -> u64 {
        self.bytes_in_flight
    }

    // --- RD interface (downward) ---

    /// Decide whether a segment is "ready" (rate control × flow control)
    /// and cut it if so.
    pub fn poll_segment(&mut self, now: Time) -> Option<Vec<u8>> {
        self.log.borrow_mut().r("osr", "app_buf");
        self.log.borrow_mut().r("osr", "cwnd");
        self.log.borrow_mut().r("osr", "peer_wnd");
        if self.app_buf.is_empty() {
            return None;
        }
        let rate_allow = self.rate.allowance(now);
        let allowance = rate_allow.min(self.peer_wnd as u64);
        let budget = allowance.saturating_sub(self.bytes_in_flight) as usize;
        let n = self.app_buf.len().min(MSS).min(budget);
        // Avoid silly-window segments: wait for a full MSS unless this is
        // the tail of the stream.
        if n == 0 || (n < MSS && n < self.app_buf.len()) {
            if (self.peer_wnd as u64) < rate_allow {
                self.stats.blocked_by_peer_window += 1;
                // Nothing in flight means no ack will ever unblock us: only
                // the persist timer can rediscover the window. (With data
                // in flight, RTO owns liveness.)
                if self.bytes_in_flight == 0 && self.persist_deadline.is_none() {
                    self.persist_deadline = Some(now + self.persist_backoff);
                }
            } else {
                self.stats.blocked_by_rate += 1;
            }
            return None;
        }
        let seg: Vec<u8> = self.app_buf.drain(..n).collect();
        self.bytes_in_flight += n as u64;
        self.stats.segments_cut += 1;
        Some(seg)
    }

    /// Feed RD's summarized congestion signals into rate control.
    pub fn on_signals(&mut self, now: Time, signals: &[CongSignal]) {
        self.log.borrow_mut().w("osr", "cwnd");
        for &sig in signals {
            // Every ack-bearing variant releases flight, whatever its
            // recovery classification.
            match sig {
                CongSignal::Acked { bytes, .. }
                | CongSignal::PartialAck { bytes }
                | CongSignal::FullAck { bytes, .. } => {
                    self.bytes_in_flight = self.bytes_in_flight.saturating_sub(bytes as u64);
                }
                _ => {}
            }
            match sig {
                CongSignal::DupAckLoss => {
                    self.cc.dupack_losses = self.cc.dupack_losses.saturating_add(1)
                }
                CongSignal::PartialAck { .. } => {
                    self.cc.partial_acks = self.cc.partial_acks.saturating_add(1)
                }
                CongSignal::TimeoutLoss => {
                    self.cc.rto_resets = self.cc.rto_resets.saturating_add(1)
                }
                CongSignal::EcnEcho => {
                    self.cc.ecn_signals = self.cc.ecn_signals.saturating_add(1)
                }
                _ => {}
            }
            let was_in_recovery = self.rate.in_recovery();
            self.rate.on_signal(now, sig);
            if !was_in_recovery && self.rate.in_recovery() {
                self.cc.fast_recoveries = self.cc.fast_recoveries.saturating_add(1);
            }
            self.cc.sample(self.rate.allowance(now), self.rate.ssthresh());
        }
    }

    // --- RD interface (upward: reassembly) ---

    /// A segment arrived (possibly out of order, exactly once).
    pub fn on_delivered(&mut self, offset: u64, data: Vec<u8>) {
        self.log.borrow_mut().w("osr", "reasm");
        debug_assert!(offset >= self.rcv_next, "RD guarantees exactly-once");
        if offset > self.rcv_next {
            // Hard cap: the advertised window is advisory to the peer, but
            // a hostile sender ignores it. Parked out-of-order bytes must
            // never exceed the buffer the window was advertised from.
            let parked: usize = self.reasm.values().map(Vec::len).sum();
            if parked + data.len() > RCV_BUF_CAP {
                self.stats.reasm_overflow_drops += 1;
                return;
            }
        }
        self.reasm.insert(offset, data);
        while let Some((&off, _)) = self.reasm.first_key_value() {
            if off != self.rcv_next {
                break;
            }
            let (_, d) = self.reasm.pop_first().unwrap();
            self.rcv_next += d.len() as u64;
            self.app_out.extend(d);
        }
    }

    // --- header interface (its own bits, test T3) ---

    /// Update the host-pressure signal (plumbed down from the host through
    /// the stack). Takes effect at the next [`Osr::fill_tx`].
    pub fn set_pressure(&mut self, p: Pressure) {
        self.log.borrow_mut().w("osr", "pressure");
        self.pressure = p;
    }

    /// Stamp the OSR subheader on an outgoing packet. Under host memory
    /// pressure the advertised window is the free space right-shifted by
    /// the pressure tier, so peers slow down proportionally.
    pub fn fill_tx(&mut self, pkt: &mut Packet) {
        self.log.borrow_mut().r("osr", "rcv_buf");
        self.log.borrow_mut().r("osr", "pressure");
        let buffered = self.app_out.len() + self.reasm.values().map(Vec::len).sum::<usize>();
        let free = RCV_BUF_CAP.saturating_sub(buffered);
        pkt.osr.rcv_wnd = (free >> self.pressure.wnd_shift()).min(u16::MAX as usize) as u16;
        pkt.osr.ecn_echo = self.ecn_to_echo;
    }

    /// Process the OSR subheader of an inbound packet.
    pub fn on_header(&mut self, now: Time, pkt: &Packet) {
        self.log.borrow_mut().w("osr", "peer_wnd");
        self.peer_wnd = pkt.osr.rcv_wnd as u32;
        if self.peer_wnd as usize >= MSS {
            // The window reopened usefully: the persist cycle is over.
            // (A sliver below one MSS keeps the backoff going — probes
            // trickle single bytes until real progress is possible.)
            self.persist_deadline = None;
            self.persist_backoff = PERSIST_INITIAL;
            self.probe_due = false;
        }
        if pkt.osr.ecn_echo {
            self.rate.on_signal(now, CongSignal::EcnEcho);
        }
    }

    /// A network element marked this packet (simulated ECN); echo it back.
    pub fn mark_ecn(&mut self) {
        self.ecn_to_echo = true;
    }

    pub fn poll_deadline(&self, now: Time) -> Option<Time> {
        // Pacing controllers need a wake-up when tokens accrue; the
        // persist timer needs one while the peer window is closed.
        if self.app_buf.is_empty() {
            return None;
        }
        match (self.rate.poll_deadline(now), self.persist_deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Advance the persist timer. Spurious calls are harmless.
    pub fn on_tick(&mut self, now: Time) {
        if self.persist_deadline.is_some_and(|d| now >= d) {
            if self.app_buf.is_empty() {
                self.persist_deadline = None;
                return;
            }
            self.probe_due = true;
            self.persist_backoff = Dur((self.persist_backoff.0 * 2).min(PERSIST_MAX.0));
            self.persist_deadline = Some(now + self.persist_backoff);
        }
    }

    /// Take the 1-byte zero-window probe released by the persist timer, if
    /// any. The byte counts as in flight and is pushed through RD like any
    /// segment, so it is retransmitted and acked normally.
    pub fn poll_probe(&mut self) -> Option<Vec<u8>> {
        if !std::mem::take(&mut self.probe_due) {
            return None;
        }
        let b = self.app_buf.pop_front()?;
        self.bytes_in_flight += 1;
        self.stats.zero_window_probes += 1;
        Some(vec![b])
    }

    /// Deterministic behavioral fingerprint for the OSR contract checker
    /// (see [`crate::fingerprint`]): equal keys must imply behaviorally
    /// identical sublayers under the contract's drive alphabet. Byte
    /// *content* is folded in, not just lengths — a reordered release is a
    /// different state, which is exactly what the ordering contract needs
    /// to distinguish.
    pub fn contract_key(&self) -> Vec<u64> {
        let mut acc = fp::fold(
            fp::SEED,
            [
                self.bytes_in_flight,
                self.peer_wnd as u64,
                (self.app_closed as u64)
                    | (self.probe_due as u64) << 1
                    | (self.ecn_to_echo as u64) << 2
                    | (self.window_update_pending as u64) << 3,
                self.persist_deadline.map_or(u64::MAX, |t| t.0),
                self.persist_backoff.0,
                self.rcv_next,
                self.pressure.wnd_shift() as u64,
            ],
        );
        acc = fp::fold(acc, self.rate.state_key());
        let (a, b) = self.app_buf.as_slices();
        acc = fp::fold_bytes(fp::fold_bytes(acc, a), b);
        for (&off, data) in &self.reasm {
            acc = fp::fold_bytes(fp::mix(acc, off), data);
        }
        let (a, b) = self.app_out.as_slices();
        acc = fp::fold_bytes(fp::fold_bytes(acc, a), b);
        vec![acc]
    }
}

// ---------------------------------------------------------------------
// Contract driver (slverify::contracts::OsrContract drives the *real*
// sublayer through this, exactly as CongCtrl drives RateController).
// ---------------------------------------------------------------------

/// The operations the OSR assume/guarantee contract exercises — the
/// upward half of OSR's service: reassembling RD's possibly-out-of-order
/// exactly-once deliveries into the in-order gap-free byte stream.
/// Implemented by the shipped [`Osr`] and by the [`BuggyOsr`] mutation
/// canary.
pub trait OsrDriver {
    fn on_delivered(&mut self, offset: u64, data: Vec<u8>);
    fn read(&mut self) -> Vec<u8>;
    fn readable_len(&self) -> usize;
    /// See [`Osr::contract_key`].
    fn contract_key(&self) -> Vec<u64>;
    fn box_clone(&self) -> Box<dyn OsrDriver>;
}

impl Clone for Box<dyn OsrDriver> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

impl OsrDriver for Osr {
    fn on_delivered(&mut self, offset: u64, data: Vec<u8>) {
        Osr::on_delivered(self, offset, data)
    }
    fn read(&mut self) -> Vec<u8> {
        Osr::read(self)
    }
    fn readable_len(&self) -> usize {
        Osr::readable_len(self)
    }
    fn contract_key(&self) -> Vec<u64> {
        Osr::contract_key(self)
    }
    fn box_clone(&self) -> Box<dyn OsrDriver> {
        Box::new(self.clone())
    }
}

/// Mutation canary for the OSR contract, mirroring [`slcc::BuggyDeflate`]:
/// a plausible "latency optimization" decides parked out-of-order data
/// might as well reach the application immediately and rebases any gapped
/// delivery onto the read cursor — releasing bytes *through* the gap, out
/// of order. Never wired into product code; it exists so `OsrContract`
/// has a concrete counterexample for its in-order obligation.
#[derive(Clone)]
pub struct BuggyOsr {
    inner: Osr,
}

impl BuggyOsr {
    pub fn new(rate: Box<dyn RateController>, log: SharedLog) -> BuggyOsr {
        BuggyOsr { inner: Osr::new(rate, log) }
    }
}

impl OsrDriver for BuggyOsr {
    fn on_delivered(&mut self, offset: u64, data: Vec<u8>) {
        // THE BUG: a delivery past the cursor is rebased onto it, so the
        // application sees the bytes now — in the wrong order, and the
        // real range is double-counted when it finally arrives.
        let offset = offset.min(self.inner.rcv_next);
        self.inner.on_delivered(offset, data)
    }
    fn read(&mut self) -> Vec<u8> {
        self.inner.read()
    }
    fn readable_len(&self) -> usize {
        self.inner.readable_len()
    }
    fn contract_key(&self) -> Vec<u64> {
        self.inner.contract_key()
    }
    fn box_clone(&self) -> Box<dyn OsrDriver> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{FixedWindow, RateBased, Reno};
    use netsim::Dur;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    fn osr(win: u64) -> Osr {
        let mut o = Osr::new(Box::new(FixedWindow(win)), slmetrics::shared());
        o.peer_wnd = u16::MAX as u32;
        o
    }

    #[test]
    fn segments_cut_at_mss() {
        let mut o = osr(1 << 20);
        o.write(&vec![7; 2500]);
        assert_eq!(o.poll_segment(t(0)).unwrap().len(), MSS);
        assert_eq!(o.poll_segment(t(0)).unwrap().len(), MSS);
        assert_eq!(o.poll_segment(t(0)).unwrap().len(), 500, "tail may be short");
        assert!(o.poll_segment(t(0)).is_none());
        assert_eq!(o.stats.segments_cut, 3);
    }

    #[test]
    fn rate_allowance_gates_segments() {
        let mut o = osr(1500);
        o.write(&vec![7; 5000]);
        assert!(o.poll_segment(t(0)).is_some()); // 1000 in flight
        assert!(o.poll_segment(t(0)).is_none(), "window full");
        assert!(o.stats.blocked_by_rate > 0);
        // Acks release the window.
        o.on_signals(t(1), &[CongSignal::Acked { bytes: 1000, rtt: None }]);
        assert!(o.poll_segment(t(1)).is_some());
    }

    #[test]
    fn peer_window_gates_segments() {
        let mut o = osr(1 << 20);
        let mut pkt = Packet::default();
        pkt.osr.rcv_wnd = 999; // less than one MSS
        o.on_header(t(0), &pkt);
        o.write(&vec![7; 5000]);
        assert!(o.poll_segment(t(0)).is_none());
        assert!(o.stats.blocked_by_peer_window > 0);
    }

    #[test]
    fn reassembly_pastes_segments_in_order() {
        let mut o = osr(1000);
        o.on_delivered(1000, vec![2; 1000]);
        assert!(o.read().is_empty(), "hole at the front");
        o.on_delivered(0, vec![1; 1000]);
        let data = o.read();
        assert_eq!(data.len(), 2000);
        assert!(data[..1000].iter().all(|&b| b == 1));
        assert!(data[1000..].iter().all(|&b| b == 2));
    }

    #[test]
    fn advertised_window_shrinks_with_buffered_data() {
        let mut o = osr(1000);
        let mut pkt = Packet::default();
        o.fill_tx(&mut pkt);
        let full = pkt.osr.rcv_wnd;
        o.on_delivered(1000, vec![0; 5000]); // parked in reassembly
        o.fill_tx(&mut pkt);
        assert_eq!(pkt.osr.rcv_wnd, full - 5000);
    }

    #[test]
    fn pressure_clamps_advertised_window_proportionally() {
        let mut o = osr(1000);
        let mut pkt = Packet::default();
        o.fill_tx(&mut pkt);
        let full = pkt.osr.rcv_wnd;
        o.set_pressure(Pressure::Elevated);
        o.fill_tx(&mut pkt);
        assert_eq!(pkt.osr.rcv_wnd, full / 2);
        o.set_pressure(Pressure::Critical);
        o.fill_tx(&mut pkt);
        assert_eq!(pkt.osr.rcv_wnd, full / 8);
        assert!(pkt.osr.rcv_wnd > 0, "never clamped to zero");
        o.set_pressure(Pressure::Nominal);
        o.fill_tx(&mut pkt);
        assert_eq!(pkt.osr.rcv_wnd, full, "nominal restores the full window");
    }

    #[test]
    fn ecn_echo_reaches_rate_controller() {
        // Reno halves on ECN; observe allowance drop.
        let mut o = Osr::new(Box::new(Reno::new()), slmetrics::shared());
        let mut open = Packet::default();
        open.osr.rcv_wnd = u16::MAX;
        o.on_header(t(0), &open);
        for _ in 0..20 {
            o.on_signals(t(0), &[CongSignal::Acked { bytes: 1000, rtt: None }]);
        }
        o.write(&vec![1; 100_000]);
        let mut sent0: u64 = 0;
        while o.poll_segment(t(0)).is_some() {
            sent0 += 1;
        }
        assert!(sent0 > 10, "slow start should have opened the window: {sent0}");
        let mut pkt = Packet::default();
        pkt.osr.ecn_echo = true;
        pkt.osr.rcv_wnd = u16::MAX;
        o.on_header(t(1), &pkt);
        // Release everything, then see a smaller burst allowed.
        o.on_signals(t(1), &[CongSignal::Acked { bytes: (sent0 * 1000) as u32, rtt: None }]);
        let mut sent1: u64 = 0;
        while o.poll_segment(t(1)).is_some() {
            sent1 += 1;
        }
        assert!(sent1 < sent0, "ECN must shrink the allowance: {sent0} -> {sent1}");
    }

    #[test]
    fn ecn_mark_is_echoed_in_header() {
        let mut o = osr(1000);
        let mut pkt = Packet::default();
        o.fill_tx(&mut pkt);
        assert!(!pkt.osr.ecn_echo);
        o.mark_ecn();
        o.fill_tx(&mut pkt);
        assert!(pkt.osr.ecn_echo);
    }

    #[test]
    fn rate_based_controller_limits_in_flight() {
        // 80 kbit/s at 100ms prior RTT -> ~1 KB + 1 MSS allowance.
        let mut o = Osr::new(Box::new(RateBased::new(80_000.0)), slmetrics::shared());
        o.peer_wnd = u16::MAX as u32;
        o.write(&vec![1; 50_000]);
        let mut sent = 0;
        while o.poll_segment(t(0)).is_some() {
            sent += 1;
        }
        assert!((1..=3).contains(&sent), "rate caps the burst: {sent}");
    }

    #[test]
    fn silly_window_avoidance_waits_for_full_mss() {
        let mut o = osr(1 << 20);
        o.write(&vec![1; 2500]);
        // Constrain budget to 300 bytes: no segment (wait for window).
        let mut pkt = Packet::default();
        pkt.osr.rcv_wnd = 300;
        o.on_header(t(0), &pkt);
        assert!(o.poll_segment(t(0)).is_none());
        // But a short *tail* goes out when it's all that remains.
        pkt.osr.rcv_wnd = u16::MAX;
        o.on_header(t(0), &pkt);
        assert_eq!(o.poll_segment(t(0)).unwrap().len(), 1000);
        assert_eq!(o.poll_segment(t(0)).unwrap().len(), 1000);
        assert_eq!(o.poll_segment(t(0)).unwrap().len(), 500);
    }

    #[test]
    fn zero_window_arms_persist_and_probes_with_backoff() {
        let mut o = osr(1 << 20);
        let mut pkt = Packet::default();
        pkt.osr.rcv_wnd = 0;
        o.on_header(t(0), &pkt);
        o.write(&vec![9; 5000]);
        assert!(o.poll_segment(t(0)).is_none());
        let d1 = o.poll_deadline(t(0)).expect("persist timer armed");
        assert_eq!(d1, t(500));
        assert!(o.poll_probe().is_none(), "no probe before the timer fires");
        o.on_tick(d1);
        assert_eq!(o.poll_probe(), Some(vec![9]), "1-byte probe released");
        assert!(o.poll_probe().is_none(), "one probe per expiry");
        assert_eq!(o.stats.zero_window_probes, 1);
        // Backoff doubles: next expiry 1000ms later.
        assert_eq!(o.poll_deadline(d1), Some(t(1500)));
        o.on_tick(t(1500));
        assert!(o.poll_probe().is_some());
        assert_eq!(o.poll_deadline(t(1500)), Some(t(3500)));
    }

    #[test]
    fn window_reopening_cancels_persist() {
        let mut o = osr(1 << 20);
        let mut pkt = Packet::default();
        pkt.osr.rcv_wnd = 0;
        o.on_header(t(0), &pkt);
        o.write(&vec![9; 5000]);
        assert!(o.poll_segment(t(0)).is_none());
        assert!(o.poll_deadline(t(0)).is_some());
        pkt.osr.rcv_wnd = u16::MAX;
        o.on_header(t(100), &pkt);
        assert_eq!(o.poll_deadline(t(100)), None, "persist cancelled");
        assert_eq!(o.poll_segment(t(100)).unwrap().len(), MSS);
    }

    #[test]
    fn an_open_window_never_arms_persist() {
        let mut o = osr(1500);
        o.write(&vec![9; 5000]);
        assert!(o.poll_segment(t(0)).is_some());
        // Blocked by *rate*, not by the peer window: no persist timer
        // (the congestion controller owns this wait).
        assert!(o.poll_segment(t(0)).is_none());
        assert_eq!(o.persist_deadline, None);
    }

    #[test]
    fn write_read_byte_counts_tracked() {
        let mut o = osr(1 << 20);
        o.write(b"hello");
        o.on_delivered(0, b"world".to_vec());
        assert_eq!(o.read(), b"world");
        assert_eq!(o.stats.bytes_written, 5);
        assert_eq!(o.stats.bytes_read, 5);
    }
}
