//! Host-level resource budget: the knobs for overload control.
//!
//! The budget bounds the *bytes* a host may hold across transport buffers
//! and ingest queues. Occupancy against `max_bytes` maps to a
//! [`Pressure`](slmetrics::Pressure) tier which the host pushes down into
//! the transport (window clamp, ACK pacing, accept gating) and applies to
//! its own admission policy (defer → shed-idle → refuse). The drain
//! fields parameterise slow-drain (slowloris) detection: a connection
//! that holds buffered bytes but advances its progress counter by less
//! than `min_drain_bytes` per `drain_check` interval is evicted.

use netsim::Dur;

/// Memory budget and overload-policy knobs for a [`Host`](crate::Host).
///
/// The default is **unlimited** (`max_bytes == 0`): no pressure is ever
/// reported, no admission control engages, and all pre-existing host
/// behaviour is unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Byte budget across all connection buffers plus queued ingest
    /// frames; `0` disables overload control entirely.
    pub max_bytes: usize,
    /// How often a buffer-holding connection must show progress.
    pub drain_check: Dur,
    /// Minimum progress (delivered + acked bytes) per `drain_check`
    /// interval; an accepted connection holding buffered bytes that
    /// advances less than this is a slow drainer and is evicted.
    pub min_drain_bytes: u64,
    /// An accepted connection must be idle at least this long before the
    /// shed-idle pass (at High pressure) may reset it.
    pub shed_idle_grace: Dur,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget {
            max_bytes: 0,
            drain_check: Dur::from_secs(1),
            min_drain_bytes: 1024,
            shed_idle_grace: Dur::from_secs(1),
        }
    }
}

impl ResourceBudget {
    /// A budget of `max_bytes` with the default drain policy.
    pub fn bytes(max_bytes: usize) -> Self {
        ResourceBudget { max_bytes, ..Default::default() }
    }

    /// Is overload control engaged at all?
    pub fn active(&self) -> bool {
        self.max_bytes != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slmetrics::Pressure;

    #[test]
    fn default_budget_is_inactive() {
        let b = ResourceBudget::default();
        assert!(!b.active());
        assert_eq!(Pressure::from_occupancy(u64::MAX, b.max_bytes as u64), Pressure::Nominal);
    }

    #[test]
    fn bytes_constructor_activates() {
        let b = ResourceBudget::bytes(1 << 20);
        assert!(b.active());
        assert_eq!(b.drain_check, Dur::from_secs(1));
    }
}
