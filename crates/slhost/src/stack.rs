//! The host-facing stack surface.
//!
//! [`Host`](crate::Host) is generic over the transport underneath it: the
//! sublayered stack (`sublayer-core`) and the monolithic baseline
//! (`tcp-mono`) both drive the same event loop, timer wheel, and accept
//! path. [`HostStack`] is the contract that makes that possible — the
//! API-parity test (`tests/parity.rs`) runs one scripted scenario against
//! both implementations and asserts identical observable behaviour.

use netsim::{Stack, Time, TransportError};
use slmetrics::Pressure;
use std::fmt::Debug;
use std::hash::Hash;
use sublayer_core::{CmState, ConnId, SlTcpStack};
use tcp_mono::wire::{Endpoint, FourTuple};
use tcp_mono::{TcpStack, TcpState};

/// Addressing read off a raw frame without full decode — just enough for
/// the host to demux (inbound) or route (outbound) in O(1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameMeta {
    pub src: Endpoint,
    pub dst: Endpoint,
}

impl FrameMeta {
    /// The 4-tuple as seen by the *receiving* host.
    pub fn tuple_at_dst(&self) -> FourTuple {
        FourTuple { local: self.dst, remote: self.src }
    }
}

/// What a transport must expose for [`Host`](crate::Host) to serve many
/// connections over it: listen/connect, per-connection I/O and state
/// queries, and the per-connection timer/transmit split that lets the
/// host tick only the connections whose wheel entry fired.
pub trait HostStack: Stack {
    /// Connection handle (`ConnId` for the sublayered stack, the 4-tuple
    /// itself for the monolithic one).
    type ConnId: Copy + Ord + Eq + Hash + Debug + 'static;

    fn stack_name() -> &'static str;
    fn local_addr(&self) -> u32;
    fn listen(&mut self, port: u16);
    /// Bound the connection table (capacity beyond it refuses opens).
    fn set_max_conns(&mut self, max: usize);
    fn try_connect(
        &mut self,
        now: Time,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<Self::ConnId, TransportError>;
    fn try_connect_ephemeral(
        &mut self,
        now: Time,
        remote: Endpoint,
    ) -> Result<Self::ConnId, TransportError>;
    /// Queue data; returns bytes accepted (short count = backpressure).
    fn send(&mut self, id: Self::ConnId, data: &[u8]) -> usize;
    /// Drain received in-order bytes.
    fn recv(&mut self, id: Self::ConnId) -> Vec<u8>;
    /// Graceful close.
    fn close(&mut self, id: Self::ConnId);
    /// Hard reset.
    fn abort(&mut self, now: Time, id: Self::ConnId);
    fn is_established(&self, id: Self::ConnId) -> bool;
    /// Fully gone (or never existed).
    fn is_closed(&self, id: Self::ConnId) -> bool;
    /// Peer's FIN processed (EOF after the readable bytes drain).
    fn peer_closed(&self, id: Self::ConnId) -> bool;
    /// Terminal error, surviving the connection's removal.
    fn conn_error(&self, id: Self::ConnId) -> Option<TransportError>;
    fn readable_len(&self, id: Self::ConnId) -> usize;
    fn send_capacity(&self, id: Self::ConnId) -> usize;
    fn established(&self) -> Vec<Self::ConnId>;
    fn conn_count(&self) -> usize;

    /// Read addressing off a raw frame without decoding the rest; `None`
    /// for frames too short or not this stack's wire format.
    fn classify_frame(frame: &[u8]) -> Option<FrameMeta>;
    /// O(1) hashed 4-tuple lookup (the host's demux path).
    fn conn_for_tuple(&self, tuple: &FourTuple) -> Option<Self::ConnId>;
    /// Pop one already-assembled outgoing frame (no connection scan).
    fn take_frame(&mut self) -> Option<Vec<u8>>;
    /// Run one connection's output machinery.
    fn pump_conn(&mut self, now: Time, id: Self::ConnId);
    /// Next timer deadline for one connection (what the host arms in the
    /// wheel).
    fn conn_deadline(&self, now: Time, id: Self::ConnId) -> Option<Time>;
    /// Advance one connection's timers to `now`; spurious calls harmless.
    fn tick_conn(&mut self, now: Time, id: Self::ConnId);
    /// Total inter-sublayer boundary crossings so far, for stacks that
    /// have internal boundaries (`None` for the monolithic baseline).
    /// The scale experiment reports this as crossing overhead per
    /// connection at high connection counts.
    fn crossing_events(&self) -> Option<u64> {
        None
    }

    // ---- overload control: the host pushes memory pressure down and
    // reads buffer occupancy / progress back up. Both stacks implement
    // the same contract (OSR occupancy → RD window clamp → CM pacing →
    // DM accept gating in the sublayered stack; one stack-global field
    // in the monolith) so the host's admission policy is stack-agnostic.

    /// Push the host's memory-pressure tier into the transport.
    fn set_pressure(&mut self, p: Pressure);
    /// Refuse all new inbound flows (drain / quiesce), independent of
    /// the pressure tier.
    fn gate_new_flows(&mut self, refuse: bool);
    /// Bytes this connection holds across transport buffers.
    fn conn_buffered(&self, id: Self::ConnId) -> usize;
    /// Monotone progress counter (bytes delivered + bytes acked); a flow
    /// whose counter stalls while holding buffers is a slow drainer.
    fn conn_progress(&self, id: Self::ConnId) -> u64;
    /// Total bytes held across all connection buffers.
    fn buffered_bytes(&self) -> usize;
    /// New flows refused statelessly (RST) because the transport's accept
    /// gate was closed by pressure or drain.
    fn stack_pressure_refusals(&self) -> u64;
    /// Bytes pinned in this connection's retransmit queue. Both stacks
    /// bound this (`RTX_BYTES_CAP` / `SND_BUF_CAP`), so a partition holds
    /// memory flat instead of growing it with the blocked sender.
    fn conn_rtx_bytes(&self, id: Self::ConnId) -> usize;
    /// Age of the oldest unacked segment — how long this connection has
    /// gone without cumulative ack progress. The partition-age signal the
    /// host's [`ResourceBudget`](crate::ResourceBudget) reads to pick
    /// eviction victims: under memory pressure the flow stuck longest
    /// behind a dead path is the one to shed.
    fn conn_oldest_unacked(&self, id: Self::ConnId, now: Time) -> Option<netsim::Dur>;
}

impl HostStack for SlTcpStack {
    type ConnId = ConnId;

    fn stack_name() -> &'static str {
        "sublayered"
    }
    fn local_addr(&self) -> u32 {
        self.addr()
    }
    fn listen(&mut self, port: u16) {
        SlTcpStack::listen(self, port);
    }
    fn set_max_conns(&mut self, max: usize) {
        SlTcpStack::set_max_conns(self, max);
    }
    fn try_connect(
        &mut self,
        now: Time,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<ConnId, TransportError> {
        SlTcpStack::try_connect(self, now, local_port, remote)
    }
    fn try_connect_ephemeral(
        &mut self,
        now: Time,
        remote: Endpoint,
    ) -> Result<ConnId, TransportError> {
        SlTcpStack::try_connect_ephemeral(self, now, remote)
    }
    fn send(&mut self, id: ConnId, data: &[u8]) -> usize {
        SlTcpStack::send(self, id, data)
    }
    fn recv(&mut self, id: ConnId) -> Vec<u8> {
        SlTcpStack::recv(self, id)
    }
    fn close(&mut self, id: ConnId) {
        SlTcpStack::close(self, id);
    }
    fn abort(&mut self, now: Time, id: ConnId) {
        SlTcpStack::abort(self, now, id, TransportError::Reset);
    }
    fn is_established(&self, id: ConnId) -> bool {
        // Parity tie-break: CM defers its Established -> Closing
        // transition until the send stream drains, but the monolith flips
        // to FIN_WAIT_1 the moment the app closes. Both mean "no longer
        // open for the application", so gate on the close request.
        self.state(id) == CmState::Established && !self.close_pending(id)
    }
    fn is_closed(&self, id: ConnId) -> bool {
        self.state(id) == CmState::Closed
    }
    fn peer_closed(&self, id: ConnId) -> bool {
        // Parity tie-break: the monolith derives this from the PCB state,
        // which stops reporting it once the connection reaches CLOSED;
        // CM's peer-FIN flag would persist. Half-close is only meaningful
        // while the connection is alive, so gate on it.
        SlTcpStack::peer_closed(self, id) && self.state(id) != CmState::Closed
    }
    fn conn_error(&self, id: ConnId) -> Option<TransportError> {
        SlTcpStack::conn_error(self, id)
    }
    fn readable_len(&self, id: ConnId) -> usize {
        SlTcpStack::readable_len(self, id)
    }
    fn send_capacity(&self, id: ConnId) -> usize {
        SlTcpStack::send_capacity(self, id)
    }
    fn established(&self) -> Vec<ConnId> {
        SlTcpStack::established(self)
    }
    fn conn_count(&self) -> usize {
        SlTcpStack::conn_count(self)
    }

    fn classify_frame(frame: &[u8]) -> Option<FrameMeta> {
        // Figure-6 native header: MAGIC, addrs, checksum, then DM ports.
        // Bounds-safe slicing: a truncated or foreign frame classifies as
        // `None` rather than panicking the ingest path.
        if frame.len() < 36 || frame[0] != 0x5B {
            return None;
        }
        let src_addr = u32::from_be_bytes(frame.get(1..5)?.try_into().ok()?);
        let dst_addr = u32::from_be_bytes(frame.get(5..9)?.try_into().ok()?);
        let src_port = u16::from_be_bytes([*frame.get(11)?, *frame.get(12)?]);
        let dst_port = u16::from_be_bytes([*frame.get(13)?, *frame.get(14)?]);
        Some(FrameMeta {
            src: Endpoint::new(src_addr, src_port),
            dst: Endpoint::new(dst_addr, dst_port),
        })
    }
    fn conn_for_tuple(&self, tuple: &FourTuple) -> Option<ConnId> {
        SlTcpStack::conn_for_tuple(self, tuple)
    }
    fn take_frame(&mut self) -> Option<Vec<u8>> {
        SlTcpStack::take_frame(self)
    }
    fn pump_conn(&mut self, now: Time, id: ConnId) {
        SlTcpStack::pump_conn(self, now, id);
    }
    fn conn_deadline(&self, now: Time, id: ConnId) -> Option<Time> {
        SlTcpStack::conn_deadline(self, now, id)
    }
    fn tick_conn(&mut self, now: Time, id: ConnId) {
        SlTcpStack::tick_conn(self, now, id);
    }
    fn crossing_events(&self) -> Option<u64> {
        let c = &self.crossings;
        Some(
            c.osr_to_rd_segments
                + c.rd_to_osr_segments
                + c.signals_up
                + c.packets_tx
                + c.packets_rx,
        )
    }

    fn set_pressure(&mut self, p: Pressure) {
        SlTcpStack::set_pressure(self, p);
    }
    fn gate_new_flows(&mut self, refuse: bool) {
        SlTcpStack::gate_new_flows(self, refuse);
    }
    fn conn_buffered(&self, id: ConnId) -> usize {
        SlTcpStack::conn_buffered(self, id)
    }
    fn conn_progress(&self, id: ConnId) -> u64 {
        SlTcpStack::conn_progress(self, id)
    }
    fn buffered_bytes(&self) -> usize {
        SlTcpStack::buffered_bytes(self)
    }
    fn stack_pressure_refusals(&self) -> u64 {
        self.stats.pressure_refusals
    }
    fn conn_rtx_bytes(&self, id: ConnId) -> usize {
        SlTcpStack::conn_rtx_bytes(self, id)
    }
    fn conn_oldest_unacked(&self, id: ConnId, now: Time) -> Option<netsim::Dur> {
        SlTcpStack::conn_oldest_unacked(self, id, now)
    }
}

impl HostStack for TcpStack {
    type ConnId = FourTuple;

    fn stack_name() -> &'static str {
        "monolithic"
    }
    fn local_addr(&self) -> u32 {
        self.addr()
    }
    fn listen(&mut self, port: u16) {
        TcpStack::listen(self, port);
    }
    fn set_max_conns(&mut self, max: usize) {
        TcpStack::set_max_conns(self, max);
    }
    fn try_connect(
        &mut self,
        now: Time,
        local_port: u16,
        remote: Endpoint,
    ) -> Result<FourTuple, TransportError> {
        TcpStack::try_connect(self, now, local_port, remote)
    }
    fn try_connect_ephemeral(
        &mut self,
        now: Time,
        remote: Endpoint,
    ) -> Result<FourTuple, TransportError> {
        TcpStack::try_connect_ephemeral(self, now, remote)
    }
    fn send(&mut self, id: FourTuple, data: &[u8]) -> usize {
        TcpStack::send(self, id, data)
    }
    fn recv(&mut self, id: FourTuple) -> Vec<u8> {
        TcpStack::recv(self, id)
    }
    fn close(&mut self, id: FourTuple) {
        TcpStack::close(self, id);
    }
    fn abort(&mut self, _now: Time, id: FourTuple) {
        TcpStack::abort(self, id);
    }
    fn is_established(&self, id: FourTuple) -> bool {
        // Parity tie-break (conformance audit): the sublayered CM models
        // remote half-close as Established + `peer_closed` — there is no
        // CLOSE_WAIT sublayer state, because "peer finished sending" is a
        // delivery fact, not a connection-management one. CLOSE_WAIT is
        // the monolith's name for the same condition (synchronized, app
        // may still send), so it reads as established through the parity
        // surface; `peer_closed` carries the half-close either way.
        matches!(self.state(id), TcpState::Established | TcpState::CloseWait)
    }
    fn is_closed(&self, id: FourTuple) -> bool {
        self.state(id) == TcpState::Closed
    }
    fn peer_closed(&self, id: FourTuple) -> bool {
        TcpStack::peer_closed(self, id)
    }
    fn conn_error(&self, id: FourTuple) -> Option<TransportError> {
        TcpStack::conn_error(self, id)
    }
    fn readable_len(&self, id: FourTuple) -> usize {
        TcpStack::readable_len(self, id)
    }
    fn send_capacity(&self, id: FourTuple) -> usize {
        TcpStack::send_capacity(self, id)
    }
    fn established(&self) -> Vec<FourTuple> {
        TcpStack::established(self)
    }
    fn conn_count(&self) -> usize {
        TcpStack::conn_count(self)
    }

    fn classify_frame(frame: &[u8]) -> Option<FrameMeta> {
        // RFC 793 over the simulator's 8-byte address header; bounds-safe
        // like the sublayered classifier above.
        if frame.len() < 28 {
            return None;
        }
        let src_addr = u32::from_be_bytes(frame.get(0..4)?.try_into().ok()?);
        let dst_addr = u32::from_be_bytes(frame.get(4..8)?.try_into().ok()?);
        let src_port = u16::from_be_bytes([*frame.get(8)?, *frame.get(9)?]);
        let dst_port = u16::from_be_bytes([*frame.get(10)?, *frame.get(11)?]);
        Some(FrameMeta {
            src: Endpoint::new(src_addr, src_port),
            dst: Endpoint::new(dst_addr, dst_port),
        })
    }
    fn conn_for_tuple(&self, tuple: &FourTuple) -> Option<FourTuple> {
        self.pcb(*tuple).map(|p| p.tuple)
    }
    fn take_frame(&mut self) -> Option<Vec<u8>> {
        TcpStack::take_frame(self)
    }
    fn pump_conn(&mut self, now: Time, id: FourTuple) {
        TcpStack::pump_conn(self, now, id);
    }
    fn conn_deadline(&self, now: Time, id: FourTuple) -> Option<Time> {
        TcpStack::conn_deadline(self, now, id)
    }
    fn tick_conn(&mut self, now: Time, id: FourTuple) {
        TcpStack::tick_conn(self, now, id);
    }

    fn set_pressure(&mut self, p: Pressure) {
        TcpStack::set_pressure(self, p);
    }
    fn gate_new_flows(&mut self, refuse: bool) {
        TcpStack::gate_new_flows(self, refuse);
    }
    fn conn_buffered(&self, id: FourTuple) -> usize {
        TcpStack::conn_buffered(self, id)
    }
    fn conn_progress(&self, id: FourTuple) -> u64 {
        TcpStack::conn_progress(self, id)
    }
    fn buffered_bytes(&self) -> usize {
        TcpStack::buffered_bytes(self)
    }
    fn stack_pressure_refusals(&self) -> u64 {
        self.stats.pressure_refusals
    }
    fn conn_rtx_bytes(&self, id: FourTuple) -> usize {
        TcpStack::conn_rtx_bytes(self, id)
    }
    fn conn_oldest_unacked(&self, id: FourTuple, now: Time) -> Option<netsim::Dur> {
        TcpStack::conn_oldest_unacked(self, id, now)
    }
}
