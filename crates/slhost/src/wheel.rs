//! Hierarchical timer wheel.
//!
//! The host keeps one armed deadline per connection. A naive host scans
//! every connection on every tick to find due timers — O(N) work whether
//! or not anything is due, which is exactly the cost the scale experiment
//! (E15) measures. This wheel makes a tick cost proportional to the
//! timers that actually fire (plus amortized cascade work): idle
//! connections consume zero cycles.
//!
//! Layout: time is bucketed into ~1.05 ms ticks (2^20 ns). Level 0 is a
//! 256-slot wheel of single ticks (~268 ms horizon); three upper levels of
//! 64 slots each extend the horizon by 64× apiece (~17 s, ~18 min,
//! ~19.5 h). Entries beyond that sit in an overflow list that is
//! re-placed when the top level rolls over. When the clock crosses a
//! window boundary, the matching upper slot *cascades*: its entries are
//! re-placed into lower levels, so every entry reaches level 0 before its
//! deadline tick.
//!
//! Cancellation is lazy and generational: `cancel` frees the slab entry
//! and bumps its generation; the stale `(index, generation)` pair left in
//! a slot is skipped when the slot is processed. Fire order is
//! `(deadline, arm-sequence)` — deterministic, deadline-sorted, ties
//! broken by arm order.

use netsim::Time;

/// log2 of the tick size in nanoseconds (2^20 ns ≈ 1.05 ms).
const GRANULARITY_BITS: u32 = 20;
/// Level-0 slot count (one slot per tick).
const L0_SLOTS: usize = 256;
/// Slot count for each of the three upper levels.
const UP_SLOTS: usize = 64;
/// Ticks spanned by level 0.
const L0_SPAN: u64 = L0_SLOTS as u64;
/// Ticks spanned by levels 0..=k for k in 1..=3.
const SPANS: [u64; 3] = [
    L0_SPAN * UP_SLOTS as u64,
    L0_SPAN * (UP_SLOTS as u64) * (UP_SLOTS as u64),
    L0_SPAN * (UP_SLOTS as u64) * (UP_SLOTS as u64) * (UP_SLOTS as u64),
];

/// Handle to an armed timer; stale after the timer fires or is cancelled
/// (generation mismatch makes reuse harmless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerKey {
    idx: u32,
    gen: u32,
}

struct SlabSlot<T> {
    gen: u32,
    entry: Option<Armed<T>>,
}

struct Armed<T> {
    deadline: u64,
    seq: u64,
    payload: T,
}

/// A hierarchical timer wheel carrying one payload per armed timer.
pub struct TimerWheel<T> {
    cur_tick: u64,
    l0: Vec<Vec<(u32, u32)>>,
    upper: [Vec<Vec<(u32, u32)>>; 3],
    overflow: Vec<(u32, u32)>,
    /// Entries whose deadline tick is not after `cur_tick` (due now or
    /// later within the current tick); checked on every `advance`.
    imminent: Vec<(u32, u32)>,
    slab: Vec<SlabSlot<T>>,
    free: Vec<u32>,
    next_seq: u64,
    armed: usize,
    /// Entries examined by `advance` (live fires, stale skips, cascade
    /// re-placements) — the work metric E15 compares against a naive
    /// scan-all-connections tick.
    pub touches: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        TimerWheel::new()
    }
}

impl<T> TimerWheel<T> {
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            cur_tick: 0,
            l0: (0..L0_SLOTS).map(|_| Vec::new()).collect(),
            upper: std::array::from_fn(|_| (0..UP_SLOTS).map(|_| Vec::new()).collect()),
            overflow: Vec::new(),
            imminent: Vec::new(),
            slab: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            armed: 0,
            touches: 0,
        }
    }

    /// Number of live (armed, not yet fired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.armed
    }

    pub fn is_empty(&self) -> bool {
        self.armed == 0
    }

    /// Arm a timer for `deadline`. Deadlines at or before the current
    /// clock fire on the next `advance`.
    pub fn arm(&mut self, deadline: Time, payload: T) -> TimerKey {
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slab.push(SlabSlot { gen: 0, entry: None });
                (self.slab.len() - 1) as u32
            }
        };
        let gen = self.slab[idx as usize].gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slab[idx as usize].entry =
            Some(Armed { deadline: deadline.nanos(), seq, payload });
        self.armed += 1;
        self.place(idx, gen, deadline.nanos() >> GRANULARITY_BITS);
        TimerKey { idx, gen }
    }

    /// Cancel an armed timer. Returns the payload if the key was live;
    /// stale keys (already fired / cancelled) are a harmless no-op.
    pub fn cancel(&mut self, key: TimerKey) -> Option<T> {
        let slot = self.slab.get_mut(key.idx as usize)?;
        if slot.gen != key.gen {
            return None;
        }
        let armed = slot.entry.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(key.idx);
        self.armed -= 1;
        Some(armed.payload)
    }

    fn place(&mut self, idx: u32, gen: u32, dtick: u64) {
        let delta = dtick.saturating_sub(self.cur_tick);
        if dtick <= self.cur_tick {
            self.imminent.push((idx, gen));
        } else if delta < L0_SPAN {
            self.l0[(dtick % L0_SPAN) as usize].push((idx, gen));
        } else if delta < SPANS[0] {
            self.upper[0][((dtick >> 8) % UP_SLOTS as u64) as usize].push((idx, gen));
        } else if delta < SPANS[1] {
            self.upper[1][((dtick >> 14) % UP_SLOTS as u64) as usize].push((idx, gen));
        } else if delta < SPANS[2] {
            self.upper[2][((dtick >> 20) % UP_SLOTS as u64) as usize].push((idx, gen));
        } else {
            self.overflow.push((idx, gen));
        }
    }

    /// Advance the clock to `now`, returning every timer that fired,
    /// sorted by `(deadline, arm-sequence)`. Each armed timer fires
    /// exactly once; cancelled timers never fire.
    pub fn advance(&mut self, now: Time) -> Vec<(Time, T)> {
        let target = now.nanos() >> GRANULARITY_BITS;
        let mut fired: Vec<(u64, u64, T)> = Vec::new();

        // Due-now bucket: entries armed at or before the current tick.
        self.drain_imminent(now.nanos(), &mut fired);

        while self.cur_tick < target {
            self.cur_tick += 1;
            // Cascade upper slots at their window boundaries so entries
            // reach level 0 before their deadline tick.
            if self.cur_tick.is_multiple_of(L0_SPAN) {
                self.cascade(0, ((self.cur_tick >> 8) % UP_SLOTS as u64) as usize);
                if (self.cur_tick >> 8).is_multiple_of(UP_SLOTS as u64) {
                    self.cascade(1, ((self.cur_tick >> 14) % UP_SLOTS as u64) as usize);
                    if (self.cur_tick >> 14).is_multiple_of(UP_SLOTS as u64) {
                        self.cascade(2, ((self.cur_tick >> 20) % UP_SLOTS as u64) as usize);
                        if (self.cur_tick >> 20).is_multiple_of(UP_SLOTS as u64) {
                            let spill = std::mem::take(&mut self.overflow);
                            for (idx, gen) in spill {
                                self.touches += 1;
                                self.replace_entry(idx, gen);
                            }
                        }
                    }
                }
            }
            let slot = std::mem::take(&mut self.l0[(self.cur_tick % L0_SPAN) as usize]);
            for (idx, gen) in slot {
                self.touches += 1;
                match self.take_if_due(idx, gen, now.nanos()) {
                    Taken::Fired(d, s, p) => fired.push((d, s, p)),
                    // Due later within this tick (sub-tick precision).
                    Taken::NotYet => self.imminent.push((idx, gen)),
                    Taken::Stale => {}
                }
            }
        }

        // Cascades above may have landed entries exactly on the current
        // tick, which `place` routes into `imminent` — they are due in
        // *this* advance, not the next one.
        self.drain_imminent(now.nanos(), &mut fired);

        fired.sort_by_key(|&(deadline, seq, _)| (deadline, seq));
        fired.into_iter().map(|(d, _, p)| (Time(d), p)).collect()
    }

    fn drain_imminent(&mut self, now_nanos: u64, fired: &mut Vec<(u64, u64, T)>) {
        if self.imminent.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.imminent);
        for (idx, gen) in pending {
            self.touches += 1;
            match self.take_if_due(idx, gen, now_nanos) {
                Taken::Fired(d, s, p) => fired.push((d, s, p)),
                Taken::NotYet => self.imminent.push((idx, gen)),
                Taken::Stale => {}
            }
        }
    }

    fn cascade(&mut self, level: usize, slot: usize) {
        let entries = std::mem::take(&mut self.upper[level][slot]);
        for (idx, gen) in entries {
            self.touches += 1;
            self.replace_entry(idx, gen);
        }
    }

    fn replace_entry(&mut self, idx: u32, gen: u32) {
        let Some(slot) = self.slab.get(idx as usize) else { return };
        if slot.gen != gen {
            return;
        }
        let Some(armed) = slot.entry.as_ref() else { return };
        let dtick = armed.deadline >> GRANULARITY_BITS;
        self.place(idx, gen, dtick);
    }

    fn take_if_due(&mut self, idx: u32, gen: u32, now_nanos: u64) -> Taken<T> {
        let Some(slot) = self.slab.get_mut(idx as usize) else { return Taken::Stale };
        if slot.gen != gen {
            return Taken::Stale;
        }
        let Some(armed) = slot.entry.as_ref() else { return Taken::Stale };
        if armed.deadline > now_nanos {
            return Taken::NotYet;
        }
        let armed = slot.entry.take().unwrap();
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
        self.armed -= 1;
        Taken::Fired(armed.deadline, armed.seq, armed.payload)
    }

    /// The next instant `advance` should be called at: the exact deadline
    /// when one is within the level-0 horizon, otherwise a *checkpoint* at
    /// the next level-0 window boundary. Advancing to a checkpoint
    /// cascades the due upper slot, after which the exact deadline becomes
    /// visible — so timers never fire late, and finding the next deadline
    /// never scans upper levels.
    pub fn next_deadline(&self) -> Option<Time> {
        if self.armed == 0 {
            return None;
        }
        let mut best: Option<u64> = None;
        for &(idx, gen) in &self.imminent {
            if let Some(d) = self.live_deadline(idx, gen) {
                best = Some(best.map_or(d, |b| b.min(d)));
            }
        }
        if let Some(d) = best {
            return Some(Time(d));
        }
        for i in 1..L0_SPAN {
            let slot = &self.l0[((self.cur_tick + i) % L0_SPAN) as usize];
            let mut slot_best: Option<u64> = None;
            for &(idx, gen) in slot {
                if let Some(d) = self.live_deadline(idx, gen) {
                    if d >> GRANULARITY_BITS == self.cur_tick + i {
                        slot_best = Some(slot_best.map_or(d, |b| b.min(d)));
                    }
                }
            }
            if let Some(d) = slot_best {
                return Some(Time(d));
            }
        }
        // Everything live is in an upper level (or overflow): march to the
        // next window boundary, whose cascade will surface it.
        let checkpoint = ((self.cur_tick / L0_SPAN) + 1) * L0_SPAN;
        Some(Time(checkpoint << GRANULARITY_BITS))
    }

    fn live_deadline(&self, idx: u32, gen: u32) -> Option<u64> {
        let slot = self.slab.get(idx as usize)?;
        if slot.gen != gen {
            return None;
        }
        slot.entry.as_ref().map(|a| a.deadline)
    }
}

enum Taken<T> {
    Fired(u64, u64, T),
    NotYet,
    Stale,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Dur;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.arm(Time(5_000_000), "b");
        w.arm(Time(1_000_000), "a");
        w.arm(Time(9_000_000), "c");
        let fired = w.advance(Time(10_000_000));
        let names: Vec<&str> = fired.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn same_deadline_fires_in_arm_order() {
        let mut w = TimerWheel::new();
        w.arm(Time(1_000_000), 1);
        w.arm(Time(1_000_000), 2);
        w.arm(Time(1_000_000), 3);
        let fired = w.advance(Time(2_000_000));
        let order: Vec<i32> = fired.iter().map(|&(_, p)| p).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn cancelled_never_fires() {
        let mut w = TimerWheel::new();
        let k = w.arm(Time(1_000_000), "x");
        w.arm(Time(2_000_000), "y");
        assert_eq!(w.cancel(k), Some("x"));
        assert_eq!(w.cancel(k), None, "double cancel is a no-op");
        let fired = w.advance(Time(5_000_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "y");
    }

    #[test]
    fn sub_tick_deadline_not_fired_early() {
        let mut w = TimerWheel::new();
        // Both in the same ~1ms tick; advance to between them.
        w.arm(Time(1_100_000), "early");
        w.arm(Time(1_900_000), "late");
        let fired = w.advance(Time(1_500_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "early");
        assert_eq!(w.next_deadline(), Some(Time(1_900_000)));
        let fired = w.advance(Time(1_900_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "late");
    }

    #[test]
    fn upper_level_entries_cascade_and_fire_on_time() {
        // Deadlines past the L0 horizon (~268 ms) and past L1 (~17 s).
        let mut w = TimerWheel::new();
        let d1 = Time(Dur::from_millis(500).0);
        let d2 = Time(Dur::from_secs(30).0);
        w.arm(d1, "l1");
        w.arm(d2, "l2");
        // March via next_deadline checkpoints, never overshooting.
        let mut now = Time::ZERO;
        let mut fired = Vec::new();
        while let Some(next) = w.next_deadline() {
            assert!(next > now, "progress");
            now = next;
            for (at, p) in w.advance(now) {
                fired.push((at, p));
            }
        }
        assert_eq!(fired, vec![(d1, "l1"), (d2, "l2")]);
    }

    #[test]
    fn next_deadline_is_exact_within_horizon() {
        let mut w = TimerWheel::new();
        w.arm(Time(42_000_000), "x");
        assert_eq!(w.next_deadline(), Some(Time(42_000_000)));
        assert_eq!(w.advance(Time(42_000_000)).len(), 1);
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn overflow_entries_survive_arm_and_cancel() {
        let mut w = TimerWheel::new();
        // ~28 hours out: beyond the 3-level horizon.
        let far = Time(100_000_000_000_000);
        let k = w.arm(far, "far");
        assert_eq!(w.len(), 1);
        // Checkpoint marching still reports something armed.
        assert!(w.next_deadline().is_some());
        assert_eq!(w.cancel(k), Some("far"));
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn key_reuse_does_not_alias() {
        let mut w = TimerWheel::new();
        let k1 = w.arm(Time(1_000_000), "a");
        w.cancel(k1);
        let _k2 = w.arm(Time(2_000_000), "b"); // reuses slab slot 0
        assert_eq!(w.cancel(k1), None, "old key must not cancel new timer");
        let fired = w.advance(Time(3_000_000));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, "b");
    }

    #[test]
    fn idle_timers_cost_no_touches() {
        let mut w = TimerWheel::new();
        for i in 0..1000 {
            w.arm(Time(Dur::from_secs(60).0 + i), i);
        }
        // Advance through 100 ms of quiet time: only cascade work (zero
        // here — the entries sit in an upper level) may be touched.
        w.advance(Time(Dur::from_millis(100).0));
        assert_eq!(w.touches, 0, "idle connections consume zero cycles");
    }
}
