//! Reference [`HostApp`]s.

use crate::host::{Host, HostApp, HostEvent};
use crate::stack::HostStack;
use netsim::Time;

/// Echoes every received byte back to its sender; closes when the peer
/// does. The server side of the scale experiment's request/response
/// workload.
#[derive(Default)]
pub struct EchoApp {
    /// Bytes echoed back across all connections.
    pub echoed: u64,
    /// Connections accepted.
    pub served: u64,
}

impl<S: HostStack> HostApp<S> for EchoApp {
    fn on_event(&mut self, now: Time, host: &mut Host<S>, ev: HostEvent<S::ConnId>) {
        match ev {
            HostEvent::Accepted(_) => {
                if host.accept().is_some() {
                    self.served += 1;
                }
            }
            HostEvent::Readable(id) => {
                let data = host.recv(now, id);
                if !data.is_empty() {
                    self.echoed += data.len() as u64;
                    host.send(now, id, &data);
                }
            }
            HostEvent::PeerClosed(id) => {
                host.close(now, id);
            }
            HostEvent::Writable(_) | HostEvent::Closed(_) | HostEvent::Error(..) => {}
        }
    }
}
