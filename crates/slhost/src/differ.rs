//! HostStack-level differential observation.
//!
//! The two transports expose incompatible connection handles and state
//! enums (`ConnId`/`CmState` vs `FourTuple`/`TcpState`), but the
//! [`HostStack`] parity surface gives both the same observable
//! predicates. [`ConnObs`] snapshots a connection through that surface
//! only, producing a value that is directly comparable *across* stacks —
//! the basis of the conformance harness's stack-vs-stack outcome checks
//! (and a reusable building block for any differential test at the host
//! layer).

use crate::stack::HostStack;
use netsim::TransportError;

/// One connection's observable state, read exclusively through the
/// [`HostStack`] parity surface so the same snapshot works for both
/// transports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ConnObs {
    pub established: bool,
    pub closed: bool,
    pub peer_closed: bool,
    pub error: Option<TransportError>,
    /// In-order bytes the app could read right now.
    pub readable: usize,
}

impl ConnObs {
    /// Field-by-field comparison; returns one human-readable line per
    /// mismatching field (empty = the stacks agree).
    pub fn diff(&self, label: &str, other: &ConnObs) -> Vec<String> {
        let mut out = Vec::new();
        if self.established != other.established {
            out.push(format!(
                "{label}: established {} vs {}",
                self.established, other.established
            ));
        }
        if self.closed != other.closed {
            out.push(format!("{label}: closed {} vs {}", self.closed, other.closed));
        }
        if self.peer_closed != other.peer_closed {
            out.push(format!(
                "{label}: peer_closed {} vs {}",
                self.peer_closed, other.peer_closed
            ));
        }
        if self.error != other.error {
            out.push(format!("{label}: error {:?} vs {:?}", self.error, other.error));
        }
        if self.readable != other.readable {
            out.push(format!(
                "{label}: readable {} vs {}",
                self.readable, other.readable
            ));
        }
        out
    }
}

/// Snapshot one connection. A connection the stack no longer knows about
/// reads as closed (with whatever terminal error survived its removal).
pub fn observe<H: HostStack>(stack: &H, id: H::ConnId) -> ConnObs {
    ConnObs {
        established: stack.is_established(id),
        closed: stack.is_closed(id),
        peer_closed: stack.peer_closed(id),
        error: stack.conn_error(id),
        readable: stack.readable_len(id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_reports_each_field_once() {
        let a = ConnObs { established: true, readable: 4, ..Default::default() };
        let b = ConnObs {
            closed: true,
            error: Some(TransportError::Reset),
            ..Default::default()
        };
        let d = a.diff("client", &b);
        assert_eq!(d.len(), 4, "{d:?}");
        assert!(d.iter().all(|l| l.starts_with("client: ")));
        assert!(a.diff("x", &a).is_empty());
    }
}
