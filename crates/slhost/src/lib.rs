//! # slhost — an event-driven multi-connection server host
//!
//! The paper's stacks ([`sublayer_core::SlTcpStack`], [`tcp_mono::TcpStack`])
//! are single-host transport endpoints; every experiment so far drove one
//! connection at a time. This crate adds the layer above: a [`Host`] that
//! serves *many* connections over either stack with costs that stay flat
//! as the connection count grows —
//!
//! - O(1) hashed 4-tuple demux per inbound frame,
//! - a hierarchical [`TimerWheel`] so a tick costs O(fired timers), not
//!   O(connections) (with [`TimerMode::NaiveScan`] as the measured
//!   baseline),
//! - batched ingest with round-robin fairness,
//! - a bounded accept backlog,
//! - an edge-triggered readiness API ([`HostEvent`]).
//!
//! [`HostStack`] is the host-facing contract both stacks implement; the
//! API-parity test runs the same scripted scenario against both. The
//! scale experiment (E15, `bench::scale` / `exp_scale`) sweeps 100 → 5000
//! concurrent clients over both stacks and both timer modes.

pub mod apps;
pub mod budget;
pub mod differ;
pub mod host;
pub mod stack;
pub mod wheel;

pub use apps::EchoApp;
pub use budget::ResourceBudget;
pub use differ::{observe, ConnObs};
pub use host::{Host, HostApp, HostConfig, HostEvent, ServedHost, TimerMode};
pub use stack::{FrameMeta, HostStack};
pub use wheel::{TimerKey, TimerWheel};
