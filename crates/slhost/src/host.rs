//! The event-driven host: one [`Host`] serves many connections over a
//! single [`HostStack`], exposing a poll-style readiness API.
//!
//! Cost model (the point of the subsystem, measured by experiment E15):
//!
//! - **Demux** is one hashed 4-tuple lookup per inbound frame — O(1) in
//!   the connection count.
//! - **Timers** live in a hierarchical [`TimerWheel`]: one armed entry
//!   per connection, re-armed only when that connection's deadline
//!   changes, so a tick costs O(fired) instead of O(connections).
//!   [`TimerMode::NaiveScan`] keeps the tick-every-connection behaviour
//!   as the measured baseline.
//! - **Ingest** is batched: frames arriving within `batch_window` are
//!   queued per-connection and serviced together, round-robin
//!   `quantum` frames per connection so one chatty peer cannot starve
//!   the rest.
//! - **Accept** is bounded: at most `backlog` established-but-unaccepted
//!   connections; beyond that new peers are refused (reset), not queued
//!   without limit.

use crate::budget::ResourceBudget;
use crate::stack::HostStack;
use crate::wheel::{TimerKey, TimerWheel};
use netsim::{Dur, MultiStack, PortId, Time, TransportError};
use slmetrics::{HostCounters, Pressure};
use std::collections::{HashMap, VecDeque};
use tcp_mono::wire::Endpoint;

/// How the host discovers due connection timers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimerMode {
    /// Hierarchical timer wheel: O(1) per tick per fired timer.
    Wheel,
    /// Tick every connection on every deadline — the baseline the wheel
    /// is measured against.
    NaiveScan,
}

/// Host tuning knobs; `Default` is sized for the scale experiment.
#[derive(Clone, Debug)]
pub struct HostConfig {
    /// Port the host listens on (bound at construction).
    pub listen_port: u16,
    /// Established-but-unaccepted connections beyond this are reset.
    pub backlog: usize,
    /// Connection-table capacity pushed down into the stack.
    pub max_conns: usize,
    /// Per-connection ingress queue bound; overflow frames are dropped
    /// (TCP retransmission recovers them).
    pub ingress_cap: usize,
    /// Frames serviced per connection per round-robin pass.
    pub quantum: usize,
    /// Frames arriving within this window are ingested as one batch.
    pub batch_window: Dur,
    pub timer_mode: TimerMode,
    /// Idle connections are evicted (reset) after this long without
    /// traffic; `None` disables eviction.
    pub idle_timeout: Option<Dur>,
    /// Memory budget driving overload control; the default is unlimited
    /// (overload control disengaged).
    pub budget: ResourceBudget,
    /// Minimum interval between occupancy recomputations. `buffered_bytes`
    /// scans every connection, so at 100k connections refreshing on every
    /// ingest batch is quadratic in spirit; a non-zero interval caps the
    /// scan rate. Between refreshes the host acts on a slightly stale
    /// tier — exactly the `lag` the `slverify::Overload` model bounds.
    /// `Dur::ZERO` (the default) refreshes every call, the pre-shard
    /// behavior.
    pub refresh_every: Dur,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            listen_port: 80,
            backlog: 128,
            max_conns: 16384,
            ingress_cap: 64,
            quantum: 4,
            batch_window: Dur::ZERO,
            timer_mode: TimerMode::Wheel,
            idle_timeout: None,
            budget: ResourceBudget::default(),
            refresh_every: Dur::ZERO,
        }
    }
}

/// Readiness events, edge-triggered: each fires once per transition.
/// `Readable` re-arms after [`Host::recv`], `Writable` after a short
/// [`Host::send`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostEvent<C> {
    /// A new inbound connection was admitted to the accept queue.
    Accepted(C),
    /// In-order bytes are available to `recv`.
    Readable(C),
    /// An outbound connect completed, or send capacity returned after a
    /// short write.
    Writable(C),
    /// The peer closed its direction (EOF after the readable bytes).
    PeerClosed(C),
    /// The connection is fully gone (clean close).
    Closed(C),
    /// The connection died abnormally.
    Error(C, TransportError),
}

struct HostConn {
    /// Outbound connections start accepted (they never enter the accept
    /// queue); inbound ones earn it through the bounded backlog.
    accepted: bool,
    readable_flagged: bool,
    writable_blocked: bool,
    peer_closed_sent: bool,
    error_sent: bool,
    /// Inbound frames awaiting batched ingest.
    pending: VecDeque<Vec<u8>>,
    /// Armed wheel entry and the deadline it was armed for.
    wheel_key: Option<(TimerKey, Time)>,
    last_activity: Time,
    /// Admission order (LIFO shed evicts the most recently accepted
    /// first); `None` for outbound connections, which are never shed.
    accept_seq: Option<u64>,
    /// The accept-deferral counter fires once per connection.
    defer_counted: bool,
    /// Progress snapshot for slow-drain detection.
    progress_mark: u64,
    /// Next slow-drain checkpoint; armed only while the connection holds
    /// buffered bytes under pressure.
    drain_check_at: Option<Time>,
}

impl HostConn {
    fn new(now: Time, outbound: bool) -> HostConn {
        HostConn {
            accepted: outbound,
            readable_flagged: false,
            // Outbound connections report Writable once established.
            writable_blocked: outbound,
            peer_closed_sent: false,
            error_sent: false,
            pending: VecDeque::new(),
            wheel_key: None,
            last_activity: now,
            accept_seq: None,
            defer_counted: false,
            progress_mark: 0,
            drain_check_at: None,
        }
    }
}

/// An event-driven multi-connection server host. Implements
/// [`MultiStack`] so it drops into a [`netsim::star`] topology as the
/// hub node.
pub struct Host<S: HostStack> {
    stack: S,
    cfg: HostConfig,
    /// Learned route: peer address → simulator port (from inbound frame
    /// sources; outbound frames are routed by destination address).
    routes: HashMap<u32, PortId>,
    conns: HashMap<S::ConnId, HostConn>,
    /// Frames not matching any connection (SYNs, cookie ACKs, strays).
    listener_q: VecDeque<Vec<u8>>,
    accept_q: VecDeque<S::ConnId>,
    events: VecDeque<HostEvent<S::ConnId>>,
    /// Routed frames ready to transmit.
    out: VecDeque<(PortId, Vec<u8>)>,
    /// When the current ingest batch is due for servicing.
    batch_due: Option<Time>,
    wheel: TimerWheel<S::ConnId>,
    /// Effective memory-pressure tier: max of the local occupancy tier
    /// and the external floor.
    pressure: Pressure,
    /// Tier derived from this host's own budget occupancy (`Nominal`
    /// with no budget).
    own_pressure: Pressure,
    /// Externally imposed minimum tier — the second level of the
    /// degradation ladder. A sharded front pushes its *global* budget
    /// tier here so every shard degrades together even when no single
    /// shard's local budget is hot.
    pressure_floor: Pressure,
    /// When occupancy was last recomputed (throttled by
    /// [`HostConfig::refresh_every`]).
    last_refresh: Option<Time>,
    /// Quiesce mode: refuse all new flows, let existing ones finish.
    draining: bool,
    /// Monotone admission counter stamped onto accepted connections.
    next_accept_seq: u64,
    /// Bytes across all per-connection ingest queues (kept incrementally
    /// so pressure refresh does not scan every queue).
    pending_bytes: usize,
    pub counters: HostCounters,
}

impl<S: HostStack> Host<S> {
    pub fn new(mut stack: S, cfg: HostConfig) -> Host<S> {
        stack.listen(cfg.listen_port);
        stack.set_max_conns(cfg.max_conns);
        Host {
            stack,
            cfg,
            routes: HashMap::new(),
            conns: HashMap::new(),
            listener_q: VecDeque::new(),
            accept_q: VecDeque::new(),
            events: VecDeque::new(),
            out: VecDeque::new(),
            batch_due: None,
            wheel: TimerWheel::new(),
            pressure: Pressure::Nominal,
            own_pressure: Pressure::Nominal,
            pressure_floor: Pressure::Nominal,
            last_refresh: None,
            draining: false,
            next_accept_seq: 0,
            pending_bytes: 0,
            counters: HostCounters::default(),
        }
    }

    pub fn stack(&self) -> &S {
        &self.stack
    }

    pub fn stack_mut(&mut self) -> &mut S {
        &mut self.stack
    }

    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    pub fn conn_count(&self) -> usize {
        self.stack.conn_count()
    }

    /// Tracked (host-visible) connections.
    pub fn tracked_count(&self) -> usize {
        self.conns.len()
    }

    /// Pin a peer address to a simulator port (normally learned from
    /// inbound traffic; needed before an outbound connect to a peer that
    /// has never sent us anything).
    pub fn set_route(&mut self, addr: u32, port: PortId) {
        self.routes.insert(addr, port);
    }

    /// Current effective memory-pressure tier.
    pub fn pressure(&self) -> Pressure {
        self.pressure
    }

    /// The externally imposed tier floor.
    pub fn pressure_floor(&self) -> Pressure {
        self.pressure_floor
    }

    /// Impose (or lift) an external pressure-tier floor — level two of the
    /// degradation ladder. The effective tier becomes
    /// `max(own occupancy tier, floor)`, so a sharded front's global
    /// budget can force this host to Elevated/High/Critical behavior even
    /// when its local budget (if any) is cold. Works with no local budget
    /// configured.
    pub fn set_pressure_floor(&mut self, now: Time, floor: Pressure) {
        if floor != self.pressure_floor {
            self.pressure_floor = floor;
            self.refresh_pressure(now);
        }
    }

    /// Resample the occupancy-derived gauges (`conns_open`, `conns_peak`,
    /// `bytes_per_conn`, `shard_occupancy`, `mem_used`). Unthrottled and
    /// O(connections) — call at snapshot/report points, not per frame.
    pub fn sample_gauges(&mut self) {
        let open = self.conns.len() as u64;
        let used = self.stack.buffered_bytes().saturating_add(self.pending_bytes) as u64;
        self.counters.mem_used = used;
        self.counters.mem_peak = self.counters.mem_peak.max(used);
        self.counters.conns_open = open;
        self.counters.conns_peak = self.counters.conns_peak.max(open);
        self.counters.bytes_per_conn = used.checked_div(open).unwrap_or(0);
        self.counters.shard_occupancy = if self.cfg.max_conns == 0 {
            0
        } else {
            open.saturating_mul(100) / self.cfg.max_conns as u64
        };
    }

    /// Enter quiesce mode: all new inbound flows are refused (both at the
    /// host's admission check and statelessly in the transport), existing
    /// connections run to completion. There is no un-drain.
    pub fn drain(&mut self) {
        self.draining = true;
        self.stack.gate_new_flows(true);
    }

    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// Has a drain completed — no connection left in the transport or the
    /// host's tracking table?
    pub fn is_drained(&self) -> bool {
        self.conns.is_empty() && self.stack.conn_count() == 0
    }

    /// Recompute memory occupancy against the budget, push the resulting
    /// pressure tier into the transport, and run the shed-idle pass when
    /// pressure is High or worse. Called after batched ingest and on every
    /// tick; a no-op when no budget is configured.
    fn refresh_pressure(&mut self, now: Time) {
        if !self.cfg.budget.active()
            && self.pressure_floor == Pressure::Nominal
            && self.pressure == Pressure::Nominal
        {
            return;
        }
        if self.cfg.budget.active() {
            // Throttled occupancy scan: between refreshes the host acts on
            // the cached tier (bounded staleness, the Overload model's
            // `lag`).
            let fresh_needed = match self.last_refresh {
                Some(last) if self.cfg.refresh_every > Dur::ZERO => {
                    now.since(last) >= self.cfg.refresh_every
                }
                Some(_) => true,
                None => true,
            };
            if fresh_needed {
                self.last_refresh = Some(now);
                let used = self.stack.buffered_bytes().saturating_add(self.pending_bytes);
                self.counters.mem_used = used as u64;
                self.counters.mem_peak = self.counters.mem_peak.max(used as u64);
                self.own_pressure =
                    Pressure::from_occupancy(used as u64, self.cfg.budget.max_bytes as u64);
            }
        }
        let p = self.own_pressure.max(self.pressure_floor);
        if p != self.pressure {
            self.pressure = p;
            self.stack.set_pressure(p);
            self.stack.gate_new_flows(self.draining || p.refuses_new_flows());
        }
        if p == Pressure::Nominal && !self.draining {
            // Pressure receded: admit deferred connections — but only a
            // few per refresh. Releasing the whole backlog at once would
            // start that many services in one burst and blow straight
            // through the budget the deferral protected.
            const RELEASE_QUANTUM: usize = 4;
            let mut deferred: Vec<S::ConnId> = self
                .conns
                .iter()
                .filter(|(_, hc)| !hc.accepted)
                .map(|(&id, _)| id)
                .collect();
            deferred.sort();
            deferred.truncate(RELEASE_QUANTUM);
            for id in deferred {
                self.update(now, id);
            }
        }
        if p.paces_acks() {
            self.shed_idle(now);
        }
    }

    /// Shed-idle-LIFO: at High pressure, reset accepted inbound
    /// connections that hold no bytes in either direction and have been
    /// idle past the grace period — most recently accepted first, so the
    /// oldest established work survives. Connections with buffered data
    /// are never shed (they are either progressing or will be caught by
    /// the slow-drain check), so a shed can never starve an active
    /// transfer.
    fn shed_idle(&mut self, now: Time) {
        let grace = self.cfg.budget.shed_idle_grace;
        let mut candidates: Vec<(u64, S::ConnId)> = self
            .conns
            .iter()
            .filter(|&(&id, hc)| {
                hc.accept_seq.is_some()
                    && hc.pending.is_empty()
                    && now.since(hc.last_activity) >= grace
                    && self.stack.readable_len(id) == 0
                    && self.stack.conn_buffered(id) == 0
                    && !self.stack.is_closed(id)
            })
            .map(|(&id, hc)| (hc.accept_seq.unwrap_or(0), id))
            .collect();
        candidates.sort();
        for (_, id) in candidates.into_iter().rev() {
            self.counters.sheds = self.counters.sheds.saturating_add(1);
            self.stack.abort(now, id);
            self.update(now, id);
        }
    }

    /// Pop the next readiness event.
    pub fn poll_event(&mut self) -> Option<HostEvent<S::ConnId>> {
        let ev = self.events.pop_front();
        if ev.is_some() {
            self.counters.events_dispatched =
                self.counters.events_dispatched.saturating_add(1);
        }
        ev
    }

    /// Pop one established connection from the bounded accept queue.
    pub fn accept(&mut self) -> Option<S::ConnId> {
        self.accept_q.pop_front()
    }

    /// Active open with an ephemeral port (route the peer's address with
    /// [`Host::set_route`] first).
    pub fn connect(
        &mut self,
        now: Time,
        remote: Endpoint,
    ) -> Result<S::ConnId, TransportError> {
        let id = self.stack.try_connect_ephemeral(now, remote)?;
        self.conns.insert(id, HostConn::new(now, true));
        self.note_conn_opened();
        self.stack.pump_conn(now, id);
        self.update(now, id);
        Ok(id)
    }

    /// Drain received bytes; re-arms the `Readable` edge.
    pub fn recv(&mut self, now: Time, id: S::ConnId) -> Vec<u8> {
        let data = self.stack.recv(id);
        if let Some(hc) = self.conns.get_mut(&id) {
            hc.readable_flagged = false;
            if !data.is_empty() {
                hc.last_activity = now;
            }
        }
        // The window may have reopened; let the ACK out.
        self.stack.pump_conn(now, id);
        self.update(now, id);
        // Reads free budget; recompute so pressure can recede promptly.
        self.refresh_pressure(now);
        data
    }

    /// Queue data; a short count arms the `Writable` edge for when
    /// capacity returns.
    pub fn send(&mut self, now: Time, id: S::ConnId, data: &[u8]) -> usize {
        let n = self.stack.send(id, data);
        if let Some(hc) = self.conns.get_mut(&id) {
            if n < data.len() {
                hc.writable_blocked = true;
            }
            if n > 0 {
                hc.last_activity = now;
            }
        }
        self.stack.pump_conn(now, id);
        self.update(now, id);
        n
    }

    /// Graceful close.
    pub fn close(&mut self, now: Time, id: S::ConnId) {
        self.stack.close(id);
        self.stack.pump_conn(now, id);
        self.update(now, id);
    }

    /// Hard reset.
    pub fn abort(&mut self, now: Time, id: S::ConnId) {
        self.stack.abort(now, id);
        self.update(now, id);
    }

    fn track_inbound(&mut self, now: Time, id: S::ConnId) {
        if let std::collections::hash_map::Entry::Vacant(v) = self.conns.entry(id) {
            v.insert(HostConn::new(now, false));
            self.note_conn_opened();
        }
    }

    /// Keep the live/peak connection gauges current without scanning.
    fn note_conn_opened(&mut self) {
        self.counters.conns_open = self.conns.len() as u64;
        self.counters.conns_peak = self.counters.conns_peak.max(self.counters.conns_open);
    }

    /// Ingest queued frames: listener-queue first (handshakes create
    /// connections), then round-robin over per-connection queues,
    /// `quantum` frames per connection per pass.
    fn service_ingress(&mut self, now: Time) {
        self.batch_due = None;
        let mut touched: Vec<S::ConnId> = Vec::new();
        while let Some(frame) = self.listener_q.pop_front() {
            self.stack.on_frame(now, &frame);
            if let Some(meta) = S::classify_frame(&frame) {
                if let Some(id) = self.stack.conn_for_tuple(&meta.tuple_at_dst()) {
                    self.track_inbound(now, id);
                    touched.push(id);
                }
            }
        }
        let mut busy: Vec<S::ConnId> = self
            .conns
            .iter()
            .filter(|(_, hc)| !hc.pending.is_empty())
            .map(|(&id, _)| id)
            .collect();
        busy.sort();
        while !busy.is_empty() {
            busy.retain(|&id| {
                for _ in 0..self.cfg.quantum {
                    let frame = {
                        let Some(hc) = self.conns.get_mut(&id) else { return false };
                        let Some(frame) = hc.pending.pop_front() else { return false };
                        hc.last_activity = now;
                        frame
                    };
                    self.pending_bytes = self.pending_bytes.saturating_sub(frame.len());
                    self.stack.on_frame(now, &frame);
                    touched.push(id);
                }
                self.conns.get(&id).is_some_and(|hc| !hc.pending.is_empty())
            });
        }
        touched.sort();
        touched.dedup();
        for id in touched {
            self.stack.pump_conn(now, id);
            self.update(now, id);
        }
        self.refresh_pressure(now);
    }

    /// Reconcile one connection's host-visible state after any stack
    /// activity: emit edge-triggered events, enforce the accept backlog,
    /// re-arm its wheel entry, and drop it once fully closed.
    fn update(&mut self, now: Time, id: S::ConnId) {
        let Some(hc) = self.conns.get_mut(&id) else { return };

        if let Some(e) = self.stack.conn_error(id) {
            if !hc.error_sent {
                hc.error_sent = true;
                self.events.push_back(HostEvent::Error(id, e));
            }
        }
        if !hc.accepted && self.stack.is_established(id) {
            // Pressure-tiered admission: refuse outright while draining
            // or at Critical, hold (defer) at Elevated/High until
            // pressure recedes, admit at Nominal.
            if self.draining || self.pressure.refuses_new_flows() {
                self.counters.pressure_refusals =
                    self.counters.pressure_refusals.saturating_add(1);
                self.stack.abort(now, id);
            } else if self.pressure != Pressure::Nominal {
                if !hc.defer_counted {
                    hc.defer_counted = true;
                    self.counters.accept_deferrals =
                        self.counters.accept_deferrals.saturating_add(1);
                }
            } else if self.accept_q.len() < self.cfg.backlog {
                hc.accepted = true;
                hc.accept_seq = Some(self.next_accept_seq);
                self.next_accept_seq += 1;
                self.accept_q.push_back(id);
                self.counters.accepts = self.counters.accepts.saturating_add(1);
                self.events.push_back(HostEvent::Accepted(id));
            } else {
                self.counters.accept_refusals =
                    self.counters.accept_refusals.saturating_add(1);
                self.stack.abort(now, id);
            }
        }
        let Some(hc) = self.conns.get_mut(&id) else {
            self.counters.lookup_misses = self.counters.lookup_misses.saturating_add(1);
            return;
        };
        if !hc.readable_flagged && self.stack.readable_len(id) > 0 {
            hc.readable_flagged = true;
            self.events.push_back(HostEvent::Readable(id));
        }
        if hc.writable_blocked
            && self.stack.is_established(id)
            && self.stack.send_capacity(id) > 0
        {
            hc.writable_blocked = false;
            self.events.push_back(HostEvent::Writable(id));
        }
        if !hc.peer_closed_sent && self.stack.peer_closed(id) {
            hc.peer_closed_sent = true;
            self.events.push_back(HostEvent::PeerClosed(id));
        }
        // Slow-drain bookkeeping: with a budget configured, an *accepted*
        // connection holding buffered bytes keeps a progress checkpoint
        // armed; `fire` evicts it if the counter stalls across an
        // interval. This is deliberately independent of the current
        // pressure tier — a slowloris peer pins memory whether or not the
        // total occupancy crosses a threshold, and tier-gating the check
        // would let an attack that stays just under it hold its buffers
        // forever. Unaccepted connections are excluded: their buffered
        // bytes (a request waiting out an admission deferral) are bounded
        // by the ingress cap, and evicting them would punish the victims
        // of pressure rather than its cause.
        let held = self.stack.conn_buffered(id)
            + hc.pending.iter().map(Vec::len).sum::<usize>();
        if !self.cfg.budget.active() || !hc.accepted || held == 0 {
            hc.drain_check_at = None;
        } else if hc.drain_check_at.is_none() {
            hc.progress_mark = self.stack.conn_progress(id);
            hc.drain_check_at = Some(now + self.cfg.budget.drain_check);
        }
        if self.stack.is_closed(id) {
            if let Some(hc) = self.conns.remove(&id) {
                self.counters.conns_open = self.conns.len() as u64;
                let leftover: usize = hc.pending.iter().map(Vec::len).sum();
                self.pending_bytes = self.pending_bytes.saturating_sub(leftover);
                if let Some((key, _)) = hc.wheel_key {
                    self.wheel.cancel(key);
                }
                self.accept_q.retain(|&q| q != id);
                if !hc.error_sent {
                    self.events.push_back(HostEvent::Closed(id));
                }
            }
            return;
        }
        if self.cfg.timer_mode == TimerMode::Wheel {
            self.rearm(now, id);
        }
    }

    /// Deadline the host tracks for one connection: the stack's own
    /// timers plus the host-level idle eviction.
    fn deadline_for(&self, now: Time, id: S::ConnId, hc: &HostConn) -> Option<Time> {
        let idle = self.cfg.idle_timeout.map(|t| hc.last_activity + t);
        [self.stack.conn_deadline(now, id), idle, hc.drain_check_at]
            .into_iter()
            .flatten()
            .min()
    }

    fn rearm(&mut self, now: Time, id: S::ConnId) {
        let Some(hc) = self.conns.get(&id) else { return };
        let want = self.deadline_for(now, id, hc);
        let have = hc.wheel_key.map(|(_, at)| at);
        if want == have {
            return;
        }
        let Some(hc) = self.conns.get_mut(&id) else {
            self.counters.lookup_misses = self.counters.lookup_misses.saturating_add(1);
            return;
        };
        if let Some((key, _)) = hc.wheel_key.take() {
            self.wheel.cancel(key);
        }
        if let Some(at) = want {
            let key = self.wheel.arm(at, id);
            if let Some(hc) = self.conns.get_mut(&id) {
                hc.wheel_key = Some((key, at));
            } else {
                self.wheel.cancel(key);
                self.counters.lookup_misses =
                    self.counters.lookup_misses.saturating_add(1);
            }
        }
    }

    /// Advance one connection whose timer fired (or, in naive mode, every
    /// connection on every tick).
    fn fire(&mut self, now: Time, id: S::ConnId) {
        self.stack.tick_conn(now, id);
        if let Some(timeout) = self.cfg.idle_timeout {
            let idle = self
                .conns
                .get(&id)
                .is_some_and(|hc| now.since(hc.last_activity) >= timeout);
            if idle && !self.stack.is_closed(id) {
                self.counters.evictions = self.counters.evictions.saturating_add(1);
                self.stack.abort(now, id);
            }
        }
        // Slow-drain (slowloris) eviction: a connection that held buffered
        // bytes across a whole check interval without making at least
        // `min_drain_bytes` of progress is deliberately reading slowly —
        // reset it and reclaim its buffers.
        let checkpoint = self
            .conns
            .get(&id)
            .and_then(|hc| hc.drain_check_at.map(|at| (at, hc.progress_mark)));
        if let Some((at, mark)) = checkpoint {
            if now >= at && !self.stack.is_closed(id) {
                let progressed = self.stack.conn_progress(id).saturating_sub(mark);
                if progressed < self.cfg.budget.min_drain_bytes {
                    self.counters.slow_drain_evictions =
                        self.counters.slow_drain_evictions.saturating_add(1);
                    self.stack.abort(now, id);
                } else if let Some(hc) = self.conns.get_mut(&id) {
                    hc.progress_mark = self.stack.conn_progress(id);
                    hc.drain_check_at = Some(now + self.cfg.budget.drain_check);
                }
            }
        }
        self.stack.pump_conn(now, id);
        self.update(now, id);
    }
}

impl<S: HostStack> MultiStack for Host<S> {
    fn on_frame(&mut self, now: Time, port: PortId, frame: &[u8]) {
        self.counters.frames_in = self.counters.frames_in.saturating_add(1);
        match S::classify_frame(frame) {
            Some(meta) => {
                self.routes.insert(meta.src.addr, port);
                let tuple = meta.tuple_at_dst();
                match self.stack.conn_for_tuple(&tuple) {
                    Some(id) => {
                        self.track_inbound(now, id);
                        let Some(hc) = self.conns.get_mut(&id) else {
                            // track_inbound just inserted it; a miss here
                            // means the table is in an unexpected state —
                            // count it and drop the frame rather than
                            // panicking the ingest path.
                            self.counters.lookup_misses =
                                self.counters.lookup_misses.saturating_add(1);
                            return;
                        };
                        if hc.pending.len() < self.cfg.ingress_cap {
                            self.pending_bytes =
                                self.pending_bytes.saturating_add(frame.len());
                            hc.pending.push_back(frame.to_vec());
                        }
                        // else: drop; retransmission recovers.
                    }
                    None => self.listener_q.push_back(frame.to_vec()),
                }
            }
            // Unparseable: hand it to the stack's own error accounting.
            None => self.listener_q.push_back(frame.to_vec()),
        }
        if self.batch_due.is_none() {
            self.batch_due = Some(now + self.cfg.batch_window);
        }
    }

    fn poll_transmit(&mut self, now: Time) -> Option<(PortId, Vec<u8>)> {
        if self.batch_due.is_some_and(|due| now >= due) {
            self.service_ingress(now);
        }
        loop {
            if let Some(out) = self.out.pop_front() {
                self.counters.frames_out = self.counters.frames_out.saturating_add(1);
                return Some(out);
            }
            let frame = self.stack.take_frame()?;
            let port = S::classify_frame(&frame)
                .and_then(|meta| self.routes.get(&meta.dst.addr).copied())
                .unwrap_or(0);
            self.out.push_back((port, frame));
        }
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        let timers = match self.cfg.timer_mode {
            TimerMode::Wheel => self.wheel.next_deadline(),
            TimerMode::NaiveScan => self
                .conns
                .iter()
                .filter_map(|(&id, hc)| self.deadline_for(now, id, hc))
                .min(),
        };
        [self.batch_due, timers].into_iter().flatten().min()
    }

    fn on_tick(&mut self, now: Time) {
        self.counters.ticks = self.counters.ticks.saturating_add(1);
        if self.batch_due.is_some_and(|due| now >= due) {
            self.service_ingress(now);
        }
        match self.cfg.timer_mode {
            TimerMode::Wheel => {
                for (_, id) in self.wheel.advance(now) {
                    // The fired entry is consumed; forget the stale key so
                    // rearm doesn't cancel a later timer by accident.
                    if let Some(hc) = self.conns.get_mut(&id) {
                        hc.wheel_key = None;
                    }
                    self.counters.timer_fires = self.counters.timer_fires.saturating_add(1);
                    self.fire(now, id);
                }
                self.counters.timer_touches = self.wheel.touches;
            }
            TimerMode::NaiveScan => {
                let mut ids: Vec<S::ConnId> = self.conns.keys().copied().collect();
                ids.sort();
                self.counters.timer_touches =
                    self.counters.timer_touches.saturating_add(ids.len() as u64);
                for id in ids {
                    if self.conns.contains_key(&id) {
                        self.counters.timer_fires =
                            self.counters.timer_fires.saturating_add(1);
                        self.fire(now, id);
                    }
                }
            }
        }
        self.refresh_pressure(now);
    }
}

/// An application driving a [`Host`]: gets every readiness event and may
/// call back into the host (recv, send, close, accept).
pub trait HostApp<S: HostStack>: 'static {
    fn on_event(&mut self, now: Time, host: &mut Host<S>, ev: HostEvent<S::ConnId>);
}

/// A [`Host`] bundled with its [`HostApp`], dispatching events inline so
/// the pair drops into the simulator as one node.
pub struct ServedHost<S: HostStack, A: HostApp<S>> {
    pub host: Host<S>,
    pub app: A,
}

impl<S: HostStack, A: HostApp<S>> ServedHost<S, A> {
    pub fn new(host: Host<S>, app: A) -> Self {
        ServedHost { host, app }
    }

    fn dispatch(&mut self, now: Time) {
        while let Some(ev) = self.host.poll_event() {
            self.app.on_event(now, &mut self.host, ev);
        }
    }
}

impl<S: HostStack, A: HostApp<S>> MultiStack for ServedHost<S, A> {
    fn on_frame(&mut self, now: Time, port: PortId, frame: &[u8]) {
        self.host.on_frame(now, port, frame);
    }

    fn poll_transmit(&mut self, now: Time) -> Option<(PortId, Vec<u8>)> {
        // Service ingest, let the app react, then drain what it produced.
        let ready = self.host.poll_transmit(now);
        if ready.is_some() {
            return ready;
        }
        self.dispatch(now);
        self.host.poll_transmit(now)
    }

    fn poll_deadline(&self, now: Time) -> Option<Time> {
        self.host.poll_deadline(now)
    }

    fn on_tick(&mut self, now: Time) {
        self.host.on_tick(now);
        self.dispatch(now);
    }
}
