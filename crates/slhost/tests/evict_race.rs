//! Property coverage for the race between host-level eviction (idle
//! timeout, shed-idle, slow-drain) and a pending timer-wheel deadline.
//!
//! The host cancels a connection's armed wheel entry when it evicts the
//! connection; the wheel may concurrently be advancing toward that very
//! deadline. Both halves of the race must be harmless:
//!
//! - **evict-then-fire**: once evicted, the connection's entry never
//!   fires, no matter how far the wheel advances;
//! - **fire-then-evict**: once fired, the stale key held by the host is
//!   a no-op to cancel — it must never cancel a later timer that reused
//!   the slab slot.

use netsim::Time;
use proptest::{collection, prop_assert, prop_assert_eq, proptest};
use slhost::{TimerKey, TimerWheel};
use std::collections::HashMap;

proptest! {
    #[test]
    fn eviction_racing_a_deadline_is_harmless_both_ways(
        ops in collection::vec((0u8..4, proptest::num::u64::ANY), 0..120),
    ) {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        // Live connections with an armed deadline.
        let mut armed: HashMap<u64, (TimerKey, u64)> = HashMap::new();
        // Keys whose timer already fired (held stale by the "host").
        let mut fired_keys: Vec<(TimerKey, u64)> = Vec::new();
        let mut evicted: Vec<u64> = Vec::new();
        let mut next_conn = 0u64;
        let mut now = 0u64;

        for &(op, x) in &ops {
            match op {
                // A new connection arms a deadline up to ~2 s out.
                0 => {
                    let deadline = now + x % 2_000_000_000;
                    let key = wheel.arm(Time(deadline), next_conn);
                    armed.insert(next_conn, (key, deadline));
                    next_conn += 1;
                }
                // Evict a live connection before its deadline: the cancel
                // must hit, and hitting it twice must be a no-op.
                1 => {
                    if !armed.is_empty() {
                        let mut ids: Vec<u64> = armed.keys().copied().collect();
                        ids.sort_unstable();
                        let id = ids[(x as usize) % ids.len()];
                        let (key, _) = armed.remove(&id).unwrap();
                        prop_assert_eq!(wheel.cancel(key), Some(id));
                        prop_assert_eq!(wheel.cancel(key), None, "double evict");
                        evicted.push(id);
                    }
                }
                // Evict a connection whose timer already fired: the host
                // still holds the old key; cancelling must be a no-op and
                // must not disturb any live timer (key reuse).
                2 => {
                    if !fired_keys.is_empty() {
                        let i = (x as usize) % fired_keys.len();
                        let (key, _) = fired_keys[i];
                        prop_assert_eq!(
                            wheel.cancel(key),
                            None,
                            "a fired entry's key must be stale"
                        );
                    }
                }
                // Advance: everything that fires must be live (never an
                // evicted connection) and actually due.
                _ => {
                    now += x % 700_000_000;
                    for (at, id) in wheel.advance(Time(now)) {
                        prop_assert!(
                            !evicted.contains(&id),
                            "evicted connection fired"
                        );
                        let entry = armed.remove(&id);
                        prop_assert!(entry.is_some(), "unknown connection fired");
                        let (key, deadline) = entry.unwrap();
                        prop_assert_eq!(at.nanos(), deadline);
                        prop_assert!(deadline <= now, "fired early");
                        fired_keys.push((key, id));
                    }
                }
            }
        }

        // Drain: exactly the still-live connections fire, nothing evicted.
        now += 3_000_000_000;
        let mut drained: Vec<u64> = wheel
            .advance(Time(now))
            .into_iter()
            .map(|(_, id)| id)
            .collect();
        drained.sort_unstable();
        let mut expect: Vec<u64> = armed.keys().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(drained, expect);
        prop_assert!(wheel.is_empty());
    }
}
