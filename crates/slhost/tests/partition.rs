//! Partition-survival regressions for both transports, pinned through the
//! [`HostStack`] parity surface.
//!
//! Two guarantees, each checked against the sublayered stack and the
//! monolithic baseline:
//!
//! 1. **Bounded retransmit memory** — a sender stuck behind a partitioned
//!    link holds its retransmit queue flat (`RTX_BYTES_CAP` for the
//!    sublayered RD, `SND_BUF_CAP` for the monolith) no matter how long
//!    the outage lasts and how eagerly the application keeps writing. The
//!    10 000-tick soak below is the regression the cap was added for.
//! 2. **Keepalive yields to the RTO budget** — while data is in flight,
//!    liveness belongs to the retransmission retry budget; keepalive
//!    probes may keep firing, but exhausting the (much smaller) probe
//!    budget must not abort `PeerVanished` mid-retransmit. A 25 s
//!    partition outlives the 10 s + 5×2 s keepalive window but not the
//!    RTO budget, so the transfer must complete after the link heals.

use netsim::{two_party, AdminOp, Dur, LinkParams, StackNode, Time};
use slhost::HostStack;
use sublayer_core::{KeepaliveConfig, SlConfig, SlTcpStack};
use tcp_mono::stack::{Keepalive, TcpStack};
use tcp_mono::wire::Endpoint;

const A: u32 = 1;
const B: u32 = 2;
const TICK: Dur = Dur(10_000_000); // 10 ms

fn t(ms: u64) -> Time {
    Time::ZERO + Dur::from_millis(ms)
}

/// Drive a transfer generically over the parity surface: connect, feed
/// `payload` as capacity allows, drain the server, step the simulator.
/// Returns (delivered bytes, max rtx-queue bytes seen, max unacked age).
struct SoakResult {
    delivered: usize,
    max_rtx: usize,
    max_age: Dur,
    client_error: Option<netsim::TransportError>,
}

fn soak<S: HostStack>(
    client: S,
    server: S,
    payload: &[u8],
    ops: &[(Time, AdminOp)],
    ticks: u64,
) -> SoakResult {
    let mut c = client;
    let s = server;
    let conn = c.try_connect(Time::ZERO, 5000, Endpoint::new(B, 80)).unwrap();
    // Rate-limited so a multi-megabyte payload is still mid-flight when
    // the admin schedule partitions the link.
    let params = LinkParams::delay_only(Dur::from_millis(5)).with_rate(2_000_000);
    let (mut net, nc, ns) = two_party(7, c, s, params);
    for (at, op) in ops {
        net.schedule_admin(*at, op.clone());
    }
    net.poll_all();
    net.run_until(t(500));

    let mut sent = 0usize;
    let mut got: Vec<u8> = Vec::new();
    let mut sconn = None;
    let mut max_rtx = 0usize;
    let mut max_age = Dur::ZERO;
    for _ in 0..ticks {
        let step = net.now() + TICK;
        net.run_until(step);
        let now = net.now();
        {
            let st = &mut net.node_mut::<StackNode<S>>(nc).stack;
            if sent < payload.len() {
                sent += HostStack::send(st, conn, &payload[sent..]);
            }
            max_rtx = max_rtx.max(st.conn_rtx_bytes(conn));
            if let Some(age) = st.conn_oldest_unacked(conn, now) {
                max_age = max_age.max(age);
            }
        }
        {
            let st = &mut net.node_mut::<StackNode<S>>(ns).stack;
            if sconn.is_none() {
                sconn = HostStack::established(st).first().copied();
            }
            if let Some(id) = sconn {
                got.extend(HostStack::recv(st, id));
            }
        }
        net.poll_all();
        if got.len() >= payload.len() {
            break;
        }
    }
    let client_error = net.node::<StackNode<S>>(nc).stack.conn_error(conn);
    SoakResult { delivered: got.len(), max_rtx, max_age, client_error }
}

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % 251) as u8).collect()
}

/// Keepalive (when given) goes on the **client only**: the sender is the
/// side whose keepalive *abort* must defer to the RTO budget while data
/// is in flight (its probes still fire as liveness chatter). A pure
/// receiver has nothing outstanding, so its keepalive
/// legitimately owns liveness and would (correctly) kill a silent peer —
/// which is a different guarantee than the one pinned here.
fn mono_pair(ka: Option<Keepalive>) -> (TcpStack, TcpStack) {
    let mut c = TcpStack::new(A, slmetrics::shared());
    let mut s = TcpStack::new(B, slmetrics::shared());
    if let Some(ka) = ka {
        c.set_keepalive(ka);
    }
    HostStack::listen(&mut s, 80);
    (c, s)
}

fn sub_pair(ka: Option<KeepaliveConfig>) -> (SlTcpStack, SlTcpStack) {
    let ccfg = SlConfig { keepalive: ka, ..SlConfig::default() };
    let c = SlTcpStack::new(A, ccfg, slmetrics::shared());
    let mut s = SlTcpStack::new(B, SlConfig::default(), slmetrics::shared());
    HostStack::listen(&mut s, 80);
    (c, s)
}

/// The partition starts at t=2 s and never heals; the app writes as fast
/// as the stack accepts for 10 000 ticks (100 s simulated).
fn long_partition() -> Vec<(Time, AdminOp)> {
    vec![(t(2_000), AdminOp::LinkDown(0))]
}

#[test]
fn partition_cannot_blow_the_rtx_queue_sub() {
    let (c, s) = sub_pair(None);
    let out = soak(c, s, &payload(4_000_000), &long_partition(), 10_000);
    // One segment may straddle the cap (admission is checked before the
    // push), so allow a single MSS of slack above it.
    let cap = sublayer_core::rd::RTX_BYTES_CAP + 1_500;
    assert!(
        out.max_rtx <= cap,
        "sublayered rtx queue grew to {} bytes (cap {})",
        out.max_rtx,
        cap
    );
    // The partition-age signal must have seen the outage.
    assert!(
        out.max_age >= Dur::from_secs(20),
        "oldest-unacked age only reached {:?}",
        out.max_age
    );
    assert!(out.delivered < 4_000_000, "partitioned transfer cannot complete");
}

#[test]
fn partition_cannot_blow_the_rtx_queue_mono() {
    let (c, s) = mono_pair(None);
    let out = soak(c, s, &payload(4_000_000), &long_partition(), 10_000);
    let cap = tcp_mono::stack::SND_BUF_CAP;
    assert!(
        out.max_rtx <= cap,
        "monolithic rtx queue grew to {} bytes (cap {})",
        out.max_rtx,
        cap
    );
    assert!(
        out.max_age >= Dur::from_secs(20),
        "oldest-unacked age only reached {:?}",
        out.max_age
    );
    assert!(out.delivered < 4_000_000, "partitioned transfer cannot complete");
}

/// 25 s outage: longer than the keepalive window (10 s idle + 5 probes ×
/// 2 s = 20 s) but shorter than the RTO retry budget. Keepalive must stay
/// out of the way while data is in flight and the transfer must finish.
fn healing_partition() -> Vec<(Time, AdminOp)> {
    vec![(t(2_000), AdminOp::LinkDown(0)), (t(27_000), AdminOp::LinkUp(0))]
}

#[test]
fn keepalive_defers_to_rto_across_a_partition_sub() {
    let ka = KeepaliveConfig {
        idle: Dur::from_secs(10),
        interval: Dur::from_secs(2),
        max_probes: 5,
    };
    let (c, s) = sub_pair(Some(ka));
    let n = 1_000_000;
    let out = soak(c, s, &payload(n), &healing_partition(), 20_000);
    assert_eq!(
        out.client_error, None,
        "keepalive aborted a connection the RTO budget would have saved"
    );
    assert_eq!(out.delivered, n, "transfer must complete after the link heals");
}

#[test]
fn keepalive_defers_to_rto_across_a_partition_mono() {
    let ka = Keepalive {
        idle: Dur::from_secs(10),
        interval: Dur::from_secs(2),
        max_probes: 5,
    };
    let (c, s) = mono_pair(Some(ka));
    let n = 1_000_000;
    let out = soak(c, s, &payload(n), &healing_partition(), 20_000);
    assert_eq!(
        out.client_error, None,
        "keepalive aborted a connection the RTO budget would have saved"
    );
    assert_eq!(out.delivered, n, "transfer must complete after the link heals");
}
