//! API-parity: both transports expose the same host-facing surface with
//! the same semantics. One scripted scenario — connect, request/echo,
//! peer close, full teardown — runs against `Host<SlTcpStack>` and
//! `Host<TcpStack>` through the identical generic driver, and the
//! observable traces (per-connection event sequence, delivered bytes,
//! terminal states, accept counters) must match exactly.
//!
//! A second scenario checks refusal parity: a zero-backlog host resets
//! the connection and the client observes a typed error on both stacks.

use netsim::{MultiStack, Stack, Time, TransportError};
use slhost::{EchoApp, Host, HostConfig, HostEvent, HostStack, ServedHost, TimerMode};
use sublayer_core::{SlConfig, SlTcpStack};
use tcp_mono::wire::Endpoint;
use tcp_mono::TcpStack;

const SERVER_ADDR: u32 = 0x0A00_0001;
const CLIENT_ADDR: u32 = 0x0A00_0002;
const PORT: u16 = 80;

/// Conn-agnostic event label (ids differ between stacks by type).
fn label<C>(ev: &HostEvent<C>) -> String {
    match ev {
        HostEvent::Accepted(_) => "accepted".into(),
        HostEvent::Readable(_) => "readable".into(),
        HostEvent::Writable(_) => "writable".into(),
        HostEvent::PeerClosed(_) => "peer_closed".into(),
        HostEvent::Closed(_) => "closed".into(),
        HostEvent::Error(_, e) => format!("error:{e:?}"),
    }
}

/// What one scenario run exposes to the parity assertion.
#[derive(Debug, PartialEq, Eq)]
struct Trace {
    server_events: Vec<String>,
    echo: Vec<u8>,
    client_error: Option<TransportError>,
    accepts: u64,
    accept_refusals: u64,
}

/// Echo server that also records every event it sees.
struct Recorder {
    inner: EchoApp,
    seen: Vec<String>,
}

impl<S: HostStack> slhost::HostApp<S> for Recorder {
    fn on_event(&mut self, now: Time, host: &mut Host<S>, ev: HostEvent<S::ConnId>) {
        self.seen.push(label(&ev));
        <EchoApp as slhost::HostApp<S>>::on_event(&mut self.inner, now, host, ev);
    }
}

/// Drive one client stack against a served host until both go quiet,
/// moving frames directly (zero-delay full-duplex link) and advancing the
/// virtual clock to the earliest pending deadline between steps.
fn run_scenario<S: HostStack>(stack: S, client: &mut S, backlog: usize) -> Trace {
    run_scenario_mode(stack, client, backlog, TimerMode::Wheel)
}

fn run_scenario_mode<S: HostStack>(
    stack: S,
    client: &mut S,
    backlog: usize,
    timer_mode: TimerMode,
) -> Trace {
    let cfg = HostConfig { listen_port: PORT, backlog, timer_mode, ..HostConfig::default() };
    let mut server = ServedHost::new(
        Host::new(stack, cfg),
        Recorder { inner: EchoApp::default(), seen: Vec::new() },
    );

    let mut now = Time::ZERO;
    let msg = b"hello from the parity scenario".to_vec();
    let conn = client.try_connect(now, 5000, Endpoint::new(SERVER_ADDR, PORT)).unwrap();
    let mut echo = Vec::new();
    let mut sent = false;
    let mut closed = false;

    for _ in 0..200_000 {
        let mut moved = false;
        while let Some(f) = Stack::poll_transmit(client, now) {
            server.on_frame(now, 0, &f);
            moved = true;
        }
        while let Some((_, f)) = server.poll_transmit(now) {
            Stack::on_frame(client, now, &f);
            moved = true;
        }

        if !sent && client.is_established(conn) {
            client.send(conn, &msg);
            sent = true;
            moved = true;
        }
        if sent && !closed {
            let got = client.recv(conn);
            if !got.is_empty() {
                echo.extend_from_slice(&got);
                moved = true;
            }
            if echo.len() >= msg.len() {
                client.close(conn);
                closed = true;
            }
        }
        if moved {
            continue;
        }

        let next = [Stack::poll_deadline(client, now), server.poll_deadline(now)]
            .into_iter()
            .flatten()
            .min();
        match next {
            Some(t) => {
                now = if t > now { t } else { Time(now.nanos() + 1) };
                Stack::on_tick(client, now);
                server.on_tick(now);
            }
            None => break,
        }
        // Teardown complete on both ends?
        if closed && client.is_closed(conn) && server.host.tracked_count() == 0 {
            break;
        }
    }

    Trace {
        server_events: server.app.seen,
        echo,
        client_error: client.conn_error(conn),
        accepts: server.host.counters.accepts,
        accept_refusals: server.host.counters.accept_refusals,
    }
}

fn sub_stack(addr: u32) -> SlTcpStack {
    SlTcpStack::new(addr, SlConfig::default(), slmetrics::shared())
}

fn mono_stack(addr: u32) -> TcpStack {
    TcpStack::new(addr, slmetrics::shared())
}

#[test]
fn echo_scenario_traces_match_across_stacks() {
    let mut sub_client = sub_stack(CLIENT_ADDR);
    let sub = run_scenario(sub_stack(SERVER_ADDR), &mut sub_client, 128);

    let mut mono_client = mono_stack(CLIENT_ADDR);
    let mono = run_scenario(mono_stack(SERVER_ADDR), &mut mono_client, 128);

    assert_eq!(sub.echo, b"hello from the parity scenario".to_vec());
    assert_eq!(sub, mono, "host-facing behaviour must be stack-agnostic");
    assert_eq!(sub.accepts, 1);
    assert_eq!(sub.client_error, None);
    // The full lifecycle surfaced through events, in the same order.
    assert_eq!(sub.server_events[0], "accepted");
    assert!(sub.server_events.contains(&"readable".to_string()));
    assert!(sub.server_events.contains(&"peer_closed".to_string()));
}

#[test]
fn refusal_scenario_traces_match_across_stacks() {
    let mut sub_client = sub_stack(CLIENT_ADDR);
    let sub = run_scenario(sub_stack(SERVER_ADDR), &mut sub_client, 0);

    let mut mono_client = mono_stack(CLIENT_ADDR);
    let mono = run_scenario(mono_stack(SERVER_ADDR), &mut mono_client, 0);

    assert_eq!(sub.accept_refusals, 1, "zero backlog refuses the connection");
    assert_eq!(sub.accept_refusals, mono.accept_refusals);
    assert_eq!(sub.accepts, 0);
    assert_eq!(sub.accepts, mono.accepts);
    assert_eq!(sub.client_error, Some(TransportError::Reset));
    assert_eq!(sub.client_error, mono.client_error);
}

/// The timer wheel is an optimization, not a behaviour change: the same
/// scenario under `Wheel` and `NaiveScan` yields identical traces.
#[test]
fn wheel_and_naive_scan_are_behaviourally_identical() {
    let mut c1 = sub_stack(CLIENT_ADDR);
    let wheel = run_scenario_mode(sub_stack(SERVER_ADDR), &mut c1, 128, TimerMode::Wheel);
    let mut c2 = sub_stack(CLIENT_ADDR);
    let naive =
        run_scenario_mode(sub_stack(SERVER_ADDR), &mut c2, 128, TimerMode::NaiveScan);
    assert_eq!(wheel, naive);

    let mut c3 = mono_stack(CLIENT_ADDR);
    let wheel = run_scenario_mode(mono_stack(SERVER_ADDR), &mut c3, 128, TimerMode::Wheel);
    let mut c4 = mono_stack(CLIENT_ADDR);
    let naive =
        run_scenario_mode(mono_stack(SERVER_ADDR), &mut c4, 128, TimerMode::NaiveScan);
    assert_eq!(wheel, naive);
}

/// Both stacks report the same typed errors at the same capacity edges —
/// the host-facing error surface is part of the parity contract.
#[test]
fn capacity_errors_match_across_stacks() {
    let now = Time::ZERO;
    let remote = Endpoint::new(SERVER_ADDR, PORT);

    let mut sub = sub_stack(CLIENT_ADDR);
    HostStack::set_max_conns(&mut sub, 0);
    let mut mono = mono_stack(CLIENT_ADDR);
    HostStack::set_max_conns(&mut mono, 0);
    assert_eq!(
        HostStack::try_connect(&mut sub, now, 5000, remote).unwrap_err(),
        HostStack::try_connect(&mut mono, now, 5000, remote).unwrap_err(),
    );
    assert_eq!(
        HostStack::try_connect_ephemeral(&mut sub, now, remote).unwrap_err(),
        TransportError::ConnTableFull,
    );
    assert_eq!(
        HostStack::try_connect_ephemeral(&mut mono, now, remote).unwrap_err(),
        TransportError::ConnTableFull,
    );
}
