//! Deterministic host-level coverage for the overload-control mechanisms,
//! run identically against both transport stacks:
//!
//! - **shed-idle-LIFO**: at High pressure, idle-and-empty accepted
//!   connections are reset most-recently-accepted first, while a
//!   connection holding bytes is untouchable;
//! - **deferral / release**: a connection establishing under pressure is
//!   held un-accepted, then admitted once occupancy recedes;
//! - **slow-drain eviction**: an accepted connection whose buffered bytes
//!   stall past the check interval is reset and its memory reclaimed;
//! - **drain / quiesce**: after [`Host::drain`] new flows are refused
//!   statelessly while existing ones run to completion, ending with
//!   [`Host::is_drained`].
//!
//! The scenarios drive the host directly over a zero-delay full-duplex
//! frame exchange (no simulator), so every assertion is exact: which
//! connection died, in which order, and what every counter reads.

use netsim::{Dur, MultiStack, Stack, Time, TransportError};
use slhost::{
    Host, HostApp, HostConfig, HostEvent, HostStack, ResourceBudget, ServedHost,
};
use slmetrics::Pressure;
use sublayer_core::{SlConfig, SlTcpStack};
use tcp_mono::wire::Endpoint;
use tcp_mono::TcpStack;

const SERVER_ADDR: u32 = 0x0A00_0001;
const CLIENT_BASE: u32 = 0x0A00_0100;
const PORT: u16 = 80;

fn sub_stack(addr: u32) -> SlTcpStack {
    SlTcpStack::new(addr, SlConfig::default(), slmetrics::shared())
}

fn mono_stack(addr: u32) -> TcpStack {
    TcpStack::new(addr, slmetrics::shared())
}

/// Records every event; accepts everything; reads (and optionally echoes)
/// only when `auto_read` is set, so a test can pin server memory by
/// simply not reading.
struct RecApp<S: HostStack> {
    auto_read: bool,
    echo: bool,
    events: Vec<(&'static str, S::ConnId)>,
}

impl<S: HostStack> RecApp<S> {
    fn new(auto_read: bool, echo: bool) -> Self {
        RecApp { auto_read, echo, events: Vec::new() }
    }

    fn ids(&self, label: &str) -> Vec<S::ConnId> {
        self.events
            .iter()
            .filter(|(l, _)| *l == label)
            .map(|&(_, id)| id)
            .collect()
    }
}

impl<S: HostStack> HostApp<S> for RecApp<S> {
    fn on_event(&mut self, now: Time, host: &mut Host<S>, ev: HostEvent<S::ConnId>) {
        match ev {
            HostEvent::Accepted(id) => {
                host.accept();
                self.events.push(("accepted", id));
            }
            HostEvent::Readable(id) => {
                self.events.push(("readable", id));
                if self.auto_read {
                    let data = host.recv(now, id);
                    if self.echo && !data.is_empty() {
                        host.send(now, id, &data);
                    }
                }
            }
            HostEvent::Writable(id) => self.events.push(("writable", id)),
            HostEvent::PeerClosed(id) => {
                self.events.push(("peer_closed", id));
                host.close(now, id);
            }
            HostEvent::Closed(id) => self.events.push(("closed", id)),
            HostEvent::Error(id, _) => self.events.push(("error", id)),
        }
    }
}

/// N client stacks wired straight to one served host; client `i` is the
/// host's simulator port `i`.
struct Rig<S: HostStack> {
    server: ServedHost<S, RecApp<S>>,
    clients: Vec<S>,
    now: Time,
}

impl<S: HostStack> Rig<S> {
    fn new(server: S, cfg: HostConfig, app: RecApp<S>, clients: Vec<S>) -> Self {
        Rig { server: ServedHost::new(Host::new(server, cfg), app), clients, now: Time::ZERO }
    }

    fn connect(&mut self, i: usize) -> S::ConnId {
        let now = self.now;
        self.clients[i]
            .try_connect(now, 5000, Endpoint::new(SERVER_ADDR, PORT))
            .expect("client connect")
    }

    /// Exchange frames until both sides go quiet at the current instant.
    fn pump(&mut self) {
        loop {
            let mut moved = false;
            for (i, c) in self.clients.iter_mut().enumerate() {
                while let Some(f) = Stack::poll_transmit(c, self.now) {
                    self.server.on_frame(self.now, i, &f);
                    moved = true;
                }
            }
            while let Some((port, f)) = self.server.poll_transmit(self.now) {
                Stack::on_frame(&mut self.clients[port], self.now, &f);
                moved = true;
            }
            if !moved {
                return;
            }
        }
    }

    /// Pump and tick through every deadline up to (and including) `target`.
    fn run_until(&mut self, target: Time) {
        for _ in 0..100_000 {
            self.pump();
            let next = self
                .clients
                .iter()
                .map(|c| Stack::poll_deadline(c, self.now))
                .chain(std::iter::once(self.server.poll_deadline(self.now)))
                .flatten()
                .min()
                .filter(|&t| t <= target);
            let Some(t) = next else { break };
            self.now = if t > self.now { t } else { Time(self.now.nanos() + 1) };
            let now = self.now;
            for c in self.clients.iter_mut() {
                Stack::on_tick(c, now);
            }
            self.server.on_tick(now);
        }
        self.now = target;
        let now = self.now;
        for c in self.clients.iter_mut() {
            Stack::on_tick(c, now);
        }
        self.server.on_tick(now);
        self.pump();
    }
}

/// 64 KB budget: Elevated at 32 KB, High at 48 KB, Critical at ~57 KB.
fn tight_budget() -> ResourceBudget {
    ResourceBudget {
        max_bytes: 64 * 1024,
        // Long check / zero floor: slow-drain eviction stays out of the
        // way of the scenarios that are not about it.
        drain_check: Dur::from_secs(30),
        min_drain_bytes: 0,
        shed_idle_grace: Dur::from_millis(500),
    }
}

fn shed_scenario<S: HostStack>(mk: impl Fn(u32) -> S) {
    let cfg = HostConfig {
        listen_port: PORT,
        budget: tight_budget(),
        ..HostConfig::default()
    };
    let mut rig = Rig::new(
        mk(SERVER_ADDR),
        cfg,
        RecApp::new(/*auto_read=*/ false, false),
        (0..3).map(|i| mk(CLIENT_BASE + i as u32)).collect(),
    );

    // Clients 0 and 1 establish, then sit idle-and-empty past the grace.
    let c0 = rig.connect(0);
    rig.run_until(Time(1_000_000));
    let c1 = rig.connect(1);
    rig.run_until(Time(600_000_000));
    assert_eq!(rig.server.host.counters.accepts, 2);
    assert_eq!(rig.server.host.pressure(), Pressure::Nominal);

    // Client 2 pushes 50 KB the app never reads: occupancy crosses High
    // and the shed pass runs.
    let c2 = rig.connect(2);
    rig.run_until(Time(700_000_000));
    rig.clients[2].send(c2, &vec![0x42u8; 50 * 1024]);
    rig.run_until(Time(1_200_000_000));

    let k = &rig.server.host.counters;
    assert_eq!(k.sheds, 2, "both idle connections shed");
    assert_eq!(rig.clients[0].conn_error(c0), Some(TransportError::Reset));
    assert_eq!(rig.clients[1].conn_error(c1), Some(TransportError::Reset));
    // The buffer-holding connection is untouchable by the shed pass.
    assert_eq!(rig.clients[2].conn_error(c2), None);

    // LIFO: the most recently accepted idle connection died first.
    let accepted = rig.server.app.ids("accepted");
    let errors = rig.server.app.ids("error");
    assert_eq!(errors.len(), 2);
    assert_eq!(errors[0], accepted[1], "newest idle connection shed first");
    assert_eq!(errors[1], accepted[0]);
}

fn deferral_scenario<S: HostStack>(mk: impl Fn(u32) -> S) {
    let cfg = HostConfig {
        listen_port: PORT,
        budget: tight_budget(),
        ..HostConfig::default()
    };
    let mut rig = Rig::new(
        mk(SERVER_ADDR),
        cfg,
        RecApp::new(false, false),
        (0..2).map(|i| mk(CLIENT_BASE + i as u32)).collect(),
    );

    // Client 0 pins 40 KB of unread data: Elevated (62% of budget).
    let c0 = rig.connect(0);
    rig.run_until(Time(1_000_000));
    rig.clients[0].send(c0, &vec![7u8; 40 * 1024]);
    rig.run_until(Time(100_000_000));
    assert_eq!(rig.server.host.pressure(), Pressure::Elevated);

    // Client 1 establishes under pressure: held un-accepted, not refused.
    let c1 = rig.connect(1);
    rig.run_until(Time(200_000_000));
    assert!(rig.clients[1].is_established(c1), "deferred, not refused");
    assert_eq!(rig.clients[1].conn_error(c1), None);
    assert_eq!(rig.server.host.counters.accepts, 1);
    assert_eq!(rig.server.host.counters.accept_deferrals, 1);

    // The app finally reads: occupancy drops, pressure recedes, and the
    // deferred connection is admitted.
    let accepted = rig.server.app.ids("accepted");
    let got = rig.server.host.recv(rig.now, accepted[0]);
    assert_eq!(got.len(), 40 * 1024);
    rig.run_until(Time(300_000_000));
    assert_eq!(rig.server.host.pressure(), Pressure::Nominal);
    assert_eq!(rig.server.host.counters.accepts, 2, "deferred conn admitted");
    assert_eq!(rig.clients[1].conn_error(c1), None);
}

fn slow_drain_scenario<S: HostStack>(mk: impl Fn(u32) -> S) {
    let cfg = HostConfig {
        listen_port: PORT,
        budget: ResourceBudget {
            max_bytes: 64 * 1024,
            drain_check: Dur::from_millis(200),
            min_drain_bytes: 1024,
            shed_idle_grace: Dur::from_secs(30),
        },
        ..HostConfig::default()
    };
    let mut rig = Rig::new(
        mk(SERVER_ADDR),
        cfg,
        RecApp::new(false, false),
        vec![mk(CLIENT_BASE)],
    );

    // 40 KB arrives and then stalls (the app never reads, the peer sends
    // nothing more): two check intervals later the connection is evicted
    // and its memory reclaimed.
    let c0 = rig.connect(0);
    rig.run_until(Time(1_000_000));
    rig.clients[0].send(c0, &vec![9u8; 40 * 1024]);
    rig.run_until(Time(100_000_000));
    assert!(rig.server.host.counters.mem_used >= 40 * 1024);

    rig.run_until(Time(1_000_000_000));
    let k = &rig.server.host.counters;
    assert_eq!(k.slow_drain_evictions, 1, "stalled connection evicted");
    assert_eq!(rig.clients[0].conn_error(c0), Some(TransportError::Reset));
    assert_eq!(k.mem_used, 0, "evicted connection's memory reclaimed");
    assert_eq!(rig.server.host.tracked_count(), 0);
}

fn drain_scenario<S: HostStack>(mk: impl Fn(u32) -> S) {
    // No budget: drain/quiesce works independently of overload control.
    let cfg = HostConfig { listen_port: PORT, ..HostConfig::default() };
    let mut rig = Rig::new(
        mk(SERVER_ADDR),
        cfg,
        RecApp::new(/*auto_read=*/ true, /*echo=*/ true),
        (0..2).map(|i| mk(CLIENT_BASE + i as u32)).collect(),
    );

    let c0 = rig.connect(0);
    rig.run_until(Time(100_000_000));
    rig.clients[0].send(c0, b"request before the drain");
    rig.run_until(Time(200_000_000));

    rig.server.host.drain();
    assert!(rig.server.host.is_draining());
    assert!(!rig.server.host.is_drained(), "c0 still live");

    // A post-drain connect is refused statelessly: typed error on the
    // client, a stack-level refusal counter on the server, no host state.
    let c1 = rig.connect(1);
    rig.run_until(Time(300_000_000));
    assert_eq!(rig.clients[1].conn_error(c1), Some(TransportError::Reset));
    assert!(!rig.clients[1].is_established(c1));
    assert!(rig.server.host.stack().stack_pressure_refusals() >= 1);

    // The pre-drain connection finishes its echo untouched and closes.
    let echo = rig.clients[0].recv(c0);
    assert_eq!(echo, b"request before the drain".to_vec());
    assert_eq!(rig.clients[0].conn_error(c0), None);
    rig.clients[0].close(c0);
    // Outlast the sublayered stack's 10 s TIME_WAIT (it holds both
    // closers there).
    rig.run_until(Time(12_000_000_000));
    assert!(rig.clients[0].is_closed(c0));
    assert!(rig.server.host.is_drained(), "all connections gone after drain");
}

#[test]
fn shed_idle_lifo_both_stacks() {
    shed_scenario(sub_stack);
    shed_scenario(mono_stack);
}

#[test]
fn deferral_and_release_both_stacks() {
    deferral_scenario(sub_stack);
    deferral_scenario(mono_stack);
}

#[test]
fn slow_drain_eviction_both_stacks() {
    slow_drain_scenario(sub_stack);
    slow_drain_scenario(mono_stack);
}

#[test]
fn drain_quiesce_both_stacks() {
    drain_scenario(sub_stack);
    drain_scenario(mono_stack);
}
