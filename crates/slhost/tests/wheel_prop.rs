//! Property coverage for the hierarchical timer wheel: every armed timer
//! fires exactly once, in `(deadline, arm-order)` order, and never fires
//! after cancellation — across arbitrary interleavings of arm / cancel /
//! rearm / advance, including wheel-level rollovers (offsets up to ~35 s
//! cross the level-0 horizon at ~268 ms and the level-1 horizon at ~17 s).

use std::collections::HashMap;

use netsim::Time;
use proptest::{collection, prop_assert, prop_assert_eq, proptest};
use slhost::{TimerKey, TimerWheel};

/// Model entry mirroring one `arm` call.
struct Model {
    key: TimerKey,
    deadline: u64,
    seq: u64,
    live: bool,
}

/// Timers the model says must fire once `now` is reached, in wheel order.
fn due(model: &mut [Model], now: u64) -> Vec<(u64, u64)> {
    let mut exp: Vec<(u64, u64)> = model
        .iter()
        .filter(|m| m.live && m.deadline <= now)
        .map(|m| (m.deadline, m.seq))
        .collect();
    exp.sort_unstable();
    for m in model.iter_mut() {
        if m.live && m.deadline <= now {
            m.live = false;
        }
    }
    exp
}

proptest! {
    #[test]
    fn fires_exactly_once_in_order_under_arbitrary_ops(
        ops in collection::vec((0u8..4, proptest::num::u64::ANY), 0..80),
    ) {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut model: Vec<Model> = Vec::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for &(op, x) in &ops {
            match op {
                // Arm: deadline up to ~35 s out (crosses L0 and L1 spans).
                0 => {
                    let deadline = now + x % 35_000_000_000;
                    let key = wheel.arm(Time(deadline), seq);
                    model.push(Model { key, deadline, seq, live: true });
                    seq += 1;
                }
                // Cancel an arbitrary (possibly dead) handle.
                1 => {
                    if !model.is_empty() {
                        let i = (x as usize) % model.len();
                        let m = &mut model[i];
                        let got = wheel.cancel(m.key);
                        prop_assert_eq!(
                            got.is_some(),
                            m.live,
                            "cancel must succeed iff the timer is live"
                        );
                        m.live = false;
                    }
                }
                // Rearm: cancel + arm at a fresh deadline.
                2 => {
                    if !model.is_empty() {
                        let i = (x as usize) % model.len();
                        let was_live = model[i].live;
                        prop_assert_eq!(wheel.cancel(model[i].key).is_some(), was_live);
                        model[i].live = false;
                        let deadline = now + (x >> 8) % 35_000_000_000;
                        let key = wheel.arm(Time(deadline), seq);
                        model.push(Model { key, deadline, seq, live: true });
                        seq += 1;
                    }
                }
                // Advance: up to 2 s per step.
                _ => {
                    now += x % 2_000_000_000;
                    let fired: Vec<(u64, u64)> = wheel
                        .advance(Time(now))
                        .into_iter()
                        .map(|(at, s)| (at.nanos(), s))
                        .collect();
                    prop_assert_eq!(fired, due(&mut model, now));
                }
            }
        }
        // Drain: everything still live must fire, and nothing else.
        now += 40_000_000_000;
        let fired: Vec<(u64, u64)> = wheel
            .advance(Time(now))
            .into_iter()
            .map(|(at, s)| (at.nanos(), s))
            .collect();
        prop_assert_eq!(fired, due(&mut model, now));
        prop_assert!(wheel.is_empty(), "no timer may remain after the drain");
    }

    /// Following `next_deadline` exactly, every timer fires at precisely
    /// its own deadline — the wheel is never late (a checkpoint cascade
    /// always surfaces upper-level entries before they are due).
    #[test]
    fn marching_next_deadline_fires_at_exact_deadlines(
        offsets in collection::vec(0u64..35_000_000_000, 1..40),
    ) {
        let mut wheel: TimerWheel<usize> = TimerWheel::new();
        for (i, &o) in offsets.iter().enumerate() {
            wheel.arm(Time(o), i);
        }
        let mut fired: Vec<(u64, usize)> = Vec::new();
        let mut now = Time::ZERO;
        let mut steps = 0u32;
        while let Some(next) = wheel.next_deadline() {
            steps += 1;
            prop_assert!(steps < 100_000, "march must terminate");
            prop_assert!(next >= now, "deadlines never move backwards");
            now = next;
            for (at, p) in wheel.advance(now) {
                prop_assert_eq!(at, now, "a timer fires exactly at its deadline");
                fired.push((at.nanos(), p));
            }
        }
        let mut expect: Vec<(u64, usize)> =
            offsets.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        expect.sort_unstable();
        prop_assert_eq!(fired, expect);
    }

    /// Conformance-driven case: an RTO-style retransmit schedule — per-flow
    /// deadlines armed at `now + rto`, doubled on expiry (backoff), reset on
    /// ack — fires identically under the hierarchical wheel and a naive
    /// scan-and-sort list. Same discipline as slconform's differential
    /// harness: one script, two implementations, identical firing order.
    #[test]
    fn retransmit_schedule_matches_naive_scan(
        script in collection::vec((0u8..3, 0usize..4, 1u64..2_000), 1..60),
    ) {
        const BASE_RTO: u64 = 200_000_000; // 200 ms
        const MAX_RTO: u64 = 8_000_000_000; // backoff cap
        const FLOWS: usize = 4;

        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        // Naive mode: flat arm list, filtered and sorted on every advance.
        let mut naive: Vec<(u64, u64)> = Vec::new(); // (deadline, seq)
        let mut flow_of: HashMap<u64, usize> = HashMap::new();
        let mut key_of: [Option<(TimerKey, u64)>; FLOWS] = [None; FLOWS];
        let mut rto = [BASE_RTO; FLOWS];
        let mut now = 0u64;
        let mut seq = 0u64;

        for &(op, f, x) in &script {
            match op {
                // Data sent on an idle flow: start its retransmit timer.
                0 => {
                    if key_of[f].is_none() {
                        let dl = now + rto[f];
                        let key = wheel.arm(Time(dl), seq);
                        naive.push((dl, seq));
                        flow_of.insert(seq, f);
                        key_of[f] = Some((key, seq));
                        seq += 1;
                    }
                }
                // Ack arrived: cancel the pending retransmit, reset backoff.
                1 => {
                    if let Some((key, s)) = key_of[f].take() {
                        prop_assert!(
                            wheel.cancel(key).is_some(),
                            "a tracked retransmit timer must be live"
                        );
                        naive.retain(|&(_, ns)| ns != s);
                        rto[f] = BASE_RTO;
                    }
                }
                // Time passes: both modes fire; expired flows back off
                // and rearm, exactly like a retransmission.
                _ => {
                    now += x * 10_000_000; // up to ~20 s per step
                    let fired: Vec<(u64, u64)> = wheel
                        .advance(Time(now))
                        .into_iter()
                        .map(|(at, s)| (at.nanos(), s))
                        .collect();
                    let mut exp: Vec<(u64, u64)> =
                        naive.iter().copied().filter(|&(dl, _)| dl <= now).collect();
                    exp.sort_unstable();
                    naive.retain(|&(dl, _)| dl > now);
                    prop_assert_eq!(
                        &fired, &exp,
                        "wheel and naive scan disagree on retransmit deadlines"
                    );
                    for &(_, s) in &fired {
                        let f = flow_of[&s];
                        rto[f] = (rto[f] * 2).min(MAX_RTO);
                        let dl = now + rto[f];
                        let key = wheel.arm(Time(dl), seq);
                        naive.push((dl, seq));
                        flow_of.insert(seq, f);
                        key_of[f] = Some((key, seq));
                        seq += 1;
                    }
                }
            }
        }
        // Drain past the backoff cap: every outstanding retransmit is due,
        // and both modes must agree one last time.
        now += 2 * MAX_RTO;
        let fired: Vec<(u64, u64)> = wheel
            .advance(Time(now))
            .into_iter()
            .map(|(at, s)| (at.nanos(), s))
            .collect();
        let mut exp: Vec<(u64, u64)> = naive;
        exp.sort_unstable();
        prop_assert_eq!(fired, exp);
        prop_assert!(wheel.is_empty(), "drain must leave the wheel empty");
    }
}
