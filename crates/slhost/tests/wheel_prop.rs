//! Property coverage for the hierarchical timer wheel: every armed timer
//! fires exactly once, in `(deadline, arm-order)` order, and never fires
//! after cancellation — across arbitrary interleavings of arm / cancel /
//! rearm / advance, including wheel-level rollovers (offsets up to ~35 s
//! cross the level-0 horizon at ~268 ms and the level-1 horizon at ~17 s).

use netsim::Time;
use proptest::{collection, prop_assert, prop_assert_eq, proptest};
use slhost::{TimerKey, TimerWheel};

/// Model entry mirroring one `arm` call.
struct Model {
    key: TimerKey,
    deadline: u64,
    seq: u64,
    live: bool,
}

/// Timers the model says must fire once `now` is reached, in wheel order.
fn due(model: &mut [Model], now: u64) -> Vec<(u64, u64)> {
    let mut exp: Vec<(u64, u64)> = model
        .iter()
        .filter(|m| m.live && m.deadline <= now)
        .map(|m| (m.deadline, m.seq))
        .collect();
    exp.sort_unstable();
    for m in model.iter_mut() {
        if m.live && m.deadline <= now {
            m.live = false;
        }
    }
    exp
}

proptest! {
    #[test]
    fn fires_exactly_once_in_order_under_arbitrary_ops(
        ops in collection::vec((0u8..4, proptest::num::u64::ANY), 0..80),
    ) {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        let mut model: Vec<Model> = Vec::new();
        let mut now = 0u64;
        let mut seq = 0u64;
        for &(op, x) in &ops {
            match op {
                // Arm: deadline up to ~35 s out (crosses L0 and L1 spans).
                0 => {
                    let deadline = now + x % 35_000_000_000;
                    let key = wheel.arm(Time(deadline), seq);
                    model.push(Model { key, deadline, seq, live: true });
                    seq += 1;
                }
                // Cancel an arbitrary (possibly dead) handle.
                1 => {
                    if !model.is_empty() {
                        let i = (x as usize) % model.len();
                        let m = &mut model[i];
                        let got = wheel.cancel(m.key);
                        prop_assert_eq!(
                            got.is_some(),
                            m.live,
                            "cancel must succeed iff the timer is live"
                        );
                        m.live = false;
                    }
                }
                // Rearm: cancel + arm at a fresh deadline.
                2 => {
                    if !model.is_empty() {
                        let i = (x as usize) % model.len();
                        let was_live = model[i].live;
                        prop_assert_eq!(wheel.cancel(model[i].key).is_some(), was_live);
                        model[i].live = false;
                        let deadline = now + (x >> 8) % 35_000_000_000;
                        let key = wheel.arm(Time(deadline), seq);
                        model.push(Model { key, deadline, seq, live: true });
                        seq += 1;
                    }
                }
                // Advance: up to 2 s per step.
                _ => {
                    now += x % 2_000_000_000;
                    let fired: Vec<(u64, u64)> = wheel
                        .advance(Time(now))
                        .into_iter()
                        .map(|(at, s)| (at.nanos(), s))
                        .collect();
                    prop_assert_eq!(fired, due(&mut model, now));
                }
            }
        }
        // Drain: everything still live must fire, and nothing else.
        now += 40_000_000_000;
        let fired: Vec<(u64, u64)> = wheel
            .advance(Time(now))
            .into_iter()
            .map(|(at, s)| (at.nanos(), s))
            .collect();
        prop_assert_eq!(fired, due(&mut model, now));
        prop_assert!(wheel.is_empty(), "no timer may remain after the drain");
    }

    /// Following `next_deadline` exactly, every timer fires at precisely
    /// its own deadline — the wheel is never late (a checkpoint cascade
    /// always surfaces upper-level entries before they are due).
    #[test]
    fn marching_next_deadline_fires_at_exact_deadlines(
        offsets in collection::vec(0u64..35_000_000_000, 1..40),
    ) {
        let mut wheel: TimerWheel<usize> = TimerWheel::new();
        for (i, &o) in offsets.iter().enumerate() {
            wheel.arm(Time(o), i);
        }
        let mut fired: Vec<(u64, usize)> = Vec::new();
        let mut now = Time::ZERO;
        let mut steps = 0u32;
        while let Some(next) = wheel.next_deadline() {
            steps += 1;
            prop_assert!(steps < 100_000, "march must terminate");
            prop_assert!(next >= now, "deadlines never move backwards");
            now = next;
            for (at, p) in wheel.advance(now) {
                prop_assert_eq!(at, now, "a timer fires exactly at its deadline");
                fired.push((at.nanos(), p));
            }
        }
        let mut expect: Vec<(u64, usize)> =
            offsets.iter().enumerate().map(|(i, &o)| (o, i)).collect();
        expect.sort_unstable();
        prop_assert_eq!(fired, expect);
    }
}
