//! # slmetrics — state-entanglement measurement (paper §2.3 / §4.2)
//!
//! The paper's central argument against monolithic transports is that
//! their subfunctions "share and mutate the same state (encapsulated in
//! the PCB block)", so "reasoning about the correctness of a single
//! function now requires reasoning about its interactions with all other
//! functions via operations on the shared state" — the O(N²) interactions
//! of §4.2.
//!
//! This crate *measures* that. Both TCP implementations in this workspace
//! annotate their state accesses with the subfunction ("context") doing
//! the access and the state field touched. From the resulting
//! [`AccessLog`], [`InteractionMatrix`] computes which fields are shared
//! between which subfunctions and an aggregate entanglement score.
//! Experiment E6 runs identical workloads through the monolithic and
//! sublayered stacks and compares the matrices: the monolithic PCB fields
//! are touched by many subfunctions; the sublayered stack's fields each
//! stay within one sublayer.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

/// Host memory-pressure tier, derived from budget occupancy. Shared by
/// both stacks so the overload experiment (E16) compares the sublayered
/// and monolithic backpressure plumbing like for like: the *tier* and its
/// thresholds are policy owned by the host; how each stack reacts to it
/// (window clamp, ACK pacing, accept gating) is the mechanism under test.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pressure {
    /// Under half the budget: no intervention.
    #[default]
    Nominal,
    /// Over 1/2 of budget: defer new accepts, halve advertised windows.
    Elevated,
    /// Over 3/4 of budget: shed idle connections, clamp windows to a
    /// quarter, pace pure ACKs.
    High,
    /// Over 9/10 of budget: refuse new flows outright.
    Critical,
}

impl Pressure {
    /// Tier for `used` bytes against `budget` (0 = unlimited ⇒ Nominal).
    pub fn from_occupancy(used: u64, budget: u64) -> Pressure {
        if budget == 0 {
            return Pressure::Nominal;
        }
        // Integer thresholds: >=90%, >=75%, >=50% of budget.
        if used.saturating_mul(10) >= budget.saturating_mul(9) {
            Pressure::Critical
        } else if used.saturating_mul(4) >= budget.saturating_mul(3) {
            Pressure::High
        } else if used.saturating_mul(2) >= budget {
            Pressure::Elevated
        } else {
            Pressure::Nominal
        }
    }

    /// Right-shift applied to the advertised receive window at this tier
    /// (window = free-space >> shift): deeper pressure, smaller windows,
    /// slower inbound byte growth.
    pub fn wnd_shift(self) -> u32 {
        match self {
            Pressure::Nominal => 0,
            Pressure::Elevated => 1,
            Pressure::High => 2,
            Pressure::Critical => 3,
        }
    }

    /// Should pure ACKs be paced (delayed/coalesced) at this tier?
    pub fn paces_acks(self) -> bool {
        self >= Pressure::High
    }

    /// Should brand-new inbound flows be refused at this tier?
    pub fn refuses_new_flows(self) -> bool {
        self >= Pressure::Critical
    }

    /// Stable label for reports/JSON.
    pub fn label(self) -> &'static str {
        match self {
            Pressure::Nominal => "nominal",
            Pressure::Elevated => "elevated",
            Pressure::High => "high",
            Pressure::Critical => "critical",
        }
    }
}

/// Read or write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    Read,
    Write,
}

/// Per-(context, field) access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    pub reads: u64,
    pub writes: u64,
}

/// A log of annotated state accesses.
#[derive(Clone, Debug, Default)]
pub struct AccessLog {
    counts: BTreeMap<(String, String), Counts>,
    /// When set, [`AccessLog::rec`] is a no-op. Entanglement measurement
    /// costs two string allocations plus a map probe per state access —
    /// fine for protocol experiments, ruinous at 100k connections. The
    /// scale/shard campaigns run muted; correctness paths never consult
    /// the log, so behavior is identical either way.
    muted: bool,
}

/// Shared handle: the stack owns one log; every subfunction/sublayer holds
/// a clone of the handle.
pub type SharedLog = Rc<RefCell<AccessLog>>;

/// A fresh shared log.
pub fn shared() -> SharedLog {
    Rc::new(RefCell::new(AccessLog::default()))
}

/// A shared log that discards all accesses (scale benches: no per-access
/// allocation on the hot path).
pub fn muted() -> SharedLog {
    Rc::new(RefCell::new(AccessLog { muted: true, ..AccessLog::default() }))
}

impl AccessLog {
    /// Record an access to `field` from subfunction `ctx`.
    pub fn rec(&mut self, ctx: &str, field: &str, kind: AccessKind) {
        if self.muted {
            return;
        }
        let c = self.counts.entry((ctx.to_string(), field.to_string())).or_default();
        // Saturating so marathon campaigns can never overflow-panic in
        // debug builds.
        match kind {
            AccessKind::Read => c.reads = c.reads.saturating_add(1),
            AccessKind::Write => c.writes = c.writes.saturating_add(1),
        }
    }

    /// Shorthand: record a read.
    pub fn r(&mut self, ctx: &str, field: &str) {
        self.rec(ctx, field, AccessKind::Read);
    }

    /// Shorthand: record a write.
    pub fn w(&mut self, ctx: &str, field: &str) {
        self.rec(ctx, field, AccessKind::Write);
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// All distinct contexts seen.
    pub fn contexts(&self) -> BTreeSet<&str> {
        self.counts.keys().map(|(c, _)| c.as_str()).collect()
    }

    /// All distinct fields seen.
    pub fn fields(&self) -> BTreeSet<&str> {
        self.counts.keys().map(|(_, f)| f.as_str()).collect()
    }

    pub fn counts(&self) -> &BTreeMap<(String, String), Counts> {
        &self.counts
    }
}

/// Aggregate attack/defense counters for one endpoint of an adversarial
/// campaign (experiment E14). Both stacks expose the underlying numbers
/// in their own stats; the campaign harness folds them into this shared
/// shape so the two stacks' robustness is compared like for like.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttackCounters {
    /// Segments the attacker put on the wire beyond honest forwarding
    /// (forged RST/SYN/data, replays, mutations, flood SYNs).
    pub forged_segments: u64,
    /// RFC 5961 challenge ACKs the victim issued instead of obeying an
    /// in-window RST or SYN.
    pub challenge_acks: u64,
    /// Stateless SYN cookies sent while the half-open queue was full.
    pub syn_cookies_sent: u64,
    /// Connections established by a returning valid cookie.
    pub syn_cookies_validated: u64,
    /// Stale half-open connections evicted to absorb a flood.
    pub half_open_evictions: u64,
    /// Frames rejected by the hardened wire decoder.
    pub bad_frames_rejected: u64,
    /// Out-of-order data dropped by receive-buffer caps.
    pub overflow_drops: u64,
    /// Segments dropped for carrying a sequence (or ack) far outside any
    /// plausible window — blind injection noise (RFC 793 acceptability /
    /// RFC 5961 §5).
    pub invalid_seq_drops: u64,
}

impl AttackCounters {
    /// Merge another endpoint's counters into this one (saturating: long
    /// campaigns must never overflow-panic in debug builds).
    pub fn absorb(&mut self, other: &AttackCounters) {
        self.forged_segments = self.forged_segments.saturating_add(other.forged_segments);
        self.challenge_acks = self.challenge_acks.saturating_add(other.challenge_acks);
        self.syn_cookies_sent = self.syn_cookies_sent.saturating_add(other.syn_cookies_sent);
        self.syn_cookies_validated =
            self.syn_cookies_validated.saturating_add(other.syn_cookies_validated);
        self.half_open_evictions =
            self.half_open_evictions.saturating_add(other.half_open_evictions);
        self.bad_frames_rejected =
            self.bad_frames_rejected.saturating_add(other.bad_frames_rejected);
        self.overflow_drops = self.overflow_drops.saturating_add(other.overflow_drops);
        self.invalid_seq_drops =
            self.invalid_seq_drops.saturating_add(other.invalid_seq_drops);
    }
}

/// Per-host event-loop counters for the multi-connection server host
/// (`slhost`): how much accept, timer and readiness work the host did.
/// Shared shape across both stacks so the scale experiments compare the
/// hosts like for like.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostCounters {
    /// Connections admitted through the accept path.
    pub accepts: u64,
    /// Connections refused at the bounded accept backlog or table cap.
    pub accept_refusals: u64,
    /// Connections evicted (idle eviction or forced teardown).
    pub evictions: u64,
    /// Timer entries that fired (per-connection deadlines reached).
    pub timer_fires: u64,
    /// Timer entries touched per tick, summed — with a wheel this stays
    /// proportional to *due* timers; a naive scan pays one touch per live
    /// connection per tick.
    pub timer_touches: u64,
    /// Host ticks processed (denominator for work-per-tick).
    pub ticks: u64,
    /// Readiness events dispatched to the application.
    pub events_dispatched: u64,
    /// Inbound frames ingested (batched segment ingest).
    pub frames_in: u64,
    /// Frames transmitted.
    pub frames_out: u64,
    /// Accepts deferred under Elevated pressure (retried once pressure
    /// drops; not a refusal).
    pub accept_deferrals: u64,
    /// Accepted-but-idle connections shed (LIFO) under High pressure.
    pub sheds: u64,
    /// Connections evicted by the slow-drain (slowloris) detector.
    pub slow_drain_evictions: u64,
    /// New connections refused outright under Critical pressure or while
    /// draining.
    pub pressure_refusals: u64,
    /// Host-tracked state lookups that missed (a connection vanished
    /// between classification and use — surfaced, never a panic).
    pub lookup_misses: u64,
    /// Last sampled buffered-bytes occupancy (gauge).
    pub mem_used: u64,
    /// Peak buffered-bytes occupancy seen (gauge; the budget invariant).
    pub mem_peak: u64,
    /// Live connections in the table (gauge, maintained incrementally).
    pub conns_open: u64,
    /// Peak live connections seen (gauge).
    pub conns_peak: u64,
    /// Buffered bytes per live connection at the last sample (gauge) —
    /// the memory/conn number the scale reports quote, measured rather
    /// than guessed.
    pub bytes_per_conn: u64,
    /// Connection-table occupancy in percent of `max_conns` at the last
    /// sample (gauge). On a sharded host this is per shard; the aggregate
    /// keeps the *worst* shard, which is the number capacity planning
    /// needs.
    pub shard_occupancy: u64,
    /// Oldest shard heartbeat in the fleet, in consecutive missed logical
    /// rounds (gauge; 0 = every shard serving). Set by the shard
    /// coordinator's supervisor, not by individual hosts.
    pub heartbeat_age: u64,
    /// Supervised shard restarts performed.
    pub shard_restarts: u64,
    /// Connections aborted because their shard died (failover blast
    /// radius, in connections).
    pub failover_aborts: u64,
    /// Frame sends abandoned because a shard's command ring stayed full
    /// past the bounded wait (slow-shard backpressure instead of a
    /// blocked fleet).
    pub ring_stalls: u64,
}

impl HostCounters {
    /// Merge another host's counters into this one (saturating: long
    /// campaigns must never overflow-panic in debug builds). Gauges merge
    /// by sum (`mem_used`) and max (`mem_peak`).
    pub fn absorb(&mut self, other: &HostCounters) {
        self.accepts = self.accepts.saturating_add(other.accepts);
        self.accept_refusals = self.accept_refusals.saturating_add(other.accept_refusals);
        self.evictions = self.evictions.saturating_add(other.evictions);
        self.timer_fires = self.timer_fires.saturating_add(other.timer_fires);
        self.timer_touches = self.timer_touches.saturating_add(other.timer_touches);
        self.ticks = self.ticks.saturating_add(other.ticks);
        self.events_dispatched =
            self.events_dispatched.saturating_add(other.events_dispatched);
        self.frames_in = self.frames_in.saturating_add(other.frames_in);
        self.frames_out = self.frames_out.saturating_add(other.frames_out);
        self.accept_deferrals =
            self.accept_deferrals.saturating_add(other.accept_deferrals);
        self.sheds = self.sheds.saturating_add(other.sheds);
        self.slow_drain_evictions =
            self.slow_drain_evictions.saturating_add(other.slow_drain_evictions);
        self.pressure_refusals =
            self.pressure_refusals.saturating_add(other.pressure_refusals);
        self.lookup_misses = self.lookup_misses.saturating_add(other.lookup_misses);
        self.mem_used = self.mem_used.saturating_add(other.mem_used);
        self.mem_peak = self.mem_peak.max(other.mem_peak);
        self.conns_open = self.conns_open.saturating_add(other.conns_open);
        self.conns_peak = self.conns_peak.saturating_add(other.conns_peak);
        // Derived gauge: recompute from the merged sums so the aggregate
        // is bytes-per-conn across every absorbed shard, not an average
        // of averages.
        self.bytes_per_conn = self.mem_used.checked_div(self.conns_open).unwrap_or(0);
        self.shard_occupancy = self.shard_occupancy.max(other.shard_occupancy);
        // Fleet-health gauges: the oldest heartbeat is the binding one;
        // restart/abort/stall totals sum.
        self.heartbeat_age = self.heartbeat_age.max(other.heartbeat_age);
        self.shard_restarts = self.shard_restarts.saturating_add(other.shard_restarts);
        self.failover_aborts = self.failover_aborts.saturating_add(other.failover_aborts);
        self.ring_stalls = self.ring_stalls.saturating_add(other.ring_stalls);
    }

    /// Average timer entries touched per tick (the wheel-vs-naive metric).
    pub fn timer_work_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.timer_touches as f64 / self.ticks as f64
        }
    }
}

/// Congestion-control observability for one connection — window samples
/// plus loss/recovery event counts. Both stacks fill the same shape from
/// the shared `slcc` signal feed (OSR in the sublayered stack, the pcb
/// ack path in `tcp-mono`), so CC behavior is compared like for like
/// across stacks and controllers (experiment E19).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CcCounters {
    /// Window samples taken (one per signal delivery; the denominator
    /// for [`CcCounters::cwnd_mean`]).
    pub samples: u64,
    /// Last sampled allowance in bytes (gauge).
    pub cwnd_last: u64,
    /// Peak sampled allowance (gauge; absorbed by max).
    pub cwnd_peak: u64,
    /// Sum of sampled allowances.
    pub cwnd_sum: u64,
    /// Last sampled slow-start threshold (0 for controllers that keep
    /// none, e.g. rate-based).
    pub ssthresh_last: u64,
    /// Losses inferred from the dup-ack threshold (fast retransmit
    /// fired).
    pub dupack_losses: u64,
    /// Fast-recovery episodes the controller actually entered.
    pub fast_recoveries: u64,
    /// Partial acks processed while a recovery episode was open.
    pub partial_acks: u64,
    /// Losses inferred from retransmission timeout (window reset).
    pub rto_resets: u64,
    /// ECN congestion echoes fed to the controller.
    pub ecn_signals: u64,
}

impl CcCounters {
    /// Record one window sample after a signal delivery.
    pub fn sample(&mut self, allowance: u64, ssthresh: Option<u64>) {
        self.samples = self.samples.saturating_add(1);
        self.cwnd_last = allowance;
        self.cwnd_peak = self.cwnd_peak.max(allowance);
        self.cwnd_sum = self.cwnd_sum.saturating_add(allowance);
        self.ssthresh_last = ssthresh.unwrap_or(0);
    }

    /// Mean sampled allowance in bytes.
    pub fn cwnd_mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.cwnd_sum as f64 / self.samples as f64
        }
    }

    /// Merge another connection's counters into this one (saturating:
    /// long campaigns must never overflow-panic in debug builds). Gauges
    /// absorb by max (`cwnd_peak`) or by whichever side sampled last
    /// (`cwnd_last`, `ssthresh_last` — `other` wins when it has samples).
    pub fn absorb(&mut self, other: &CcCounters) {
        self.samples = self.samples.saturating_add(other.samples);
        if other.samples > 0 {
            self.cwnd_last = other.cwnd_last;
            self.ssthresh_last = other.ssthresh_last;
        }
        self.cwnd_peak = self.cwnd_peak.max(other.cwnd_peak);
        self.cwnd_sum = self.cwnd_sum.saturating_add(other.cwnd_sum);
        self.dupack_losses = self.dupack_losses.saturating_add(other.dupack_losses);
        self.fast_recoveries = self.fast_recoveries.saturating_add(other.fast_recoveries);
        self.partial_acks = self.partial_acks.saturating_add(other.partial_acks);
        self.rto_resets = self.rto_resets.saturating_add(other.rto_resets);
        self.ecn_signals = self.ecn_signals.saturating_add(other.ecn_signals);
    }
}

/// The field-sharing structure derived from an [`AccessLog`].
#[derive(Clone, Debug)]
pub struct InteractionMatrix {
    /// field -> contexts touching it.
    pub field_contexts: BTreeMap<String, BTreeSet<String>>,
    /// field -> contexts *writing* it.
    pub field_writers: BTreeMap<String, BTreeSet<String>>,
    /// Unordered context pairs -> number of fields they share.
    pub pair_shared: BTreeMap<(String, String), usize>,
}

impl InteractionMatrix {
    pub fn from_log(log: &AccessLog) -> InteractionMatrix {
        let mut field_contexts: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut field_writers: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for ((ctx, field), c) in log.counts() {
            field_contexts.entry(field.clone()).or_default().insert(ctx.clone());
            if c.writes > 0 {
                field_writers.entry(field.clone()).or_default().insert(ctx.clone());
            }
        }
        let mut pair_shared: BTreeMap<(String, String), usize> = BTreeMap::new();
        for ctxs in field_contexts.values() {
            let v: Vec<&String> = ctxs.iter().collect();
            for i in 0..v.len() {
                for j in i + 1..v.len() {
                    *pair_shared.entry((v[i].clone(), v[j].clone())).or_default() += 1;
                }
            }
        }
        InteractionMatrix { field_contexts, field_writers, pair_shared }
    }

    /// Fields touched by more than one context (the entangled state).
    pub fn shared_fields(&self) -> Vec<(&str, usize)> {
        self.field_contexts
            .iter()
            .filter(|(_, c)| c.len() > 1)
            .map(|(f, c)| (f.as_str(), c.len()))
            .collect()
    }

    /// Σ over fields of (contexts − 1): the total number of "extra owners"
    /// a verifier must reason about. Zero means perfect state segregation.
    pub fn entanglement_score(&self) -> usize {
        self.field_contexts.values().map(|c| c.len() - 1).sum()
    }

    /// Like [`InteractionMatrix::entanglement_score`] but counting only
    /// contexts that *write* — read-sharing is cheaper to reason about.
    pub fn write_entanglement_score(&self) -> usize {
        self.field_writers.values().map(|c| c.len().saturating_sub(1)).sum()
    }

    /// Number of context pairs that interact through at least one field —
    /// the paper's O(N²) interaction count.
    pub fn interacting_pairs(&self) -> usize {
        self.pair_shared.len()
    }

    /// A markdown report used by experiment E6.
    pub fn render_markdown(&self, title: &str) -> String {
        let mut out = format!("### {title}\n\n");
        out.push_str(&format!(
            "- fields: {}\n- shared fields: {}\n- entanglement score: {}\n- write entanglement: {}\n- interacting context pairs: {}\n\n",
            self.field_contexts.len(),
            self.shared_fields().len(),
            self.entanglement_score(),
            self.write_entanglement_score(),
            self.interacting_pairs(),
        ));
        if !self.pair_shared.is_empty() {
            out.push_str("| context A | context B | shared fields |\n|---|---|---|\n");
            for ((a, b), n) in &self.pair_shared {
                out.push_str(&format!("| {a} | {b} | {n} |\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessLog {
        let mut log = AccessLog::default();
        // Two functions share `wnd`; `buf` is private to recv.
        log.r("send", "wnd");
        log.w("send", "wnd");
        log.w("recv", "wnd");
        log.r("recv", "buf");
        log.w("recv", "buf");
        log.r("cc", "wnd");
        log.r("cc", "cwnd");
        log.w("cc", "cwnd");
        log
    }

    #[test]
    fn log_counts_accumulate() {
        let log = sample();
        let c = log.counts().get(&("send".into(), "wnd".into())).copied().unwrap();
        assert_eq!(c, Counts { reads: 1, writes: 1 });
        assert_eq!(log.contexts().len(), 3);
        assert_eq!(log.fields().len(), 3);
    }

    #[test]
    fn matrix_identifies_shared_fields() {
        let m = InteractionMatrix::from_log(&sample());
        let shared = m.shared_fields();
        assert_eq!(shared, vec![("wnd", 3)]);
        // wnd has 3 contexts -> score 2; others owned singly.
        assert_eq!(m.entanglement_score(), 2);
        // wnd written by send and recv (cc only reads) -> write score 1.
        assert_eq!(m.write_entanglement_score(), 1);
        // Pairs interacting through wnd: (cc,send), (cc,recv), (recv,send).
        assert_eq!(m.interacting_pairs(), 3);
    }

    #[test]
    fn segregated_state_scores_zero() {
        let mut log = AccessLog::default();
        log.w("dm", "ports");
        log.w("cm", "isn");
        log.w("rd", "snd_una");
        log.w("osr", "cwnd");
        let m = InteractionMatrix::from_log(&log);
        assert_eq!(m.entanglement_score(), 0);
        assert_eq!(m.interacting_pairs(), 0);
        assert!(m.shared_fields().is_empty());
    }

    #[test]
    fn shared_handle_accumulates_across_clones() {
        let log = shared();
        let h2 = log.clone();
        log.borrow_mut().r("a", "x");
        h2.borrow_mut().w("b", "x");
        let m = InteractionMatrix::from_log(&log.borrow());
        assert_eq!(m.entanglement_score(), 1);
    }

    #[test]
    fn markdown_report_mentions_scores() {
        let m = InteractionMatrix::from_log(&sample());
        let md = m.render_markdown("mono");
        assert!(md.contains("entanglement score: 2"));
        assert!(md.contains("| cc | send | 1 |"));
    }

    #[test]
    fn empty_log_renders() {
        let m = InteractionMatrix::from_log(&AccessLog::default());
        assert_eq!(m.entanglement_score(), 0);
        assert!(m.render_markdown("empty").contains("fields: 0"));
    }

    #[test]
    fn pressure_tiers_from_occupancy() {
        let b = 1000;
        assert_eq!(Pressure::from_occupancy(0, b), Pressure::Nominal);
        assert_eq!(Pressure::from_occupancy(499, b), Pressure::Nominal);
        assert_eq!(Pressure::from_occupancy(500, b), Pressure::Elevated);
        assert_eq!(Pressure::from_occupancy(749, b), Pressure::Elevated);
        assert_eq!(Pressure::from_occupancy(750, b), Pressure::High);
        assert_eq!(Pressure::from_occupancy(899, b), Pressure::High);
        assert_eq!(Pressure::from_occupancy(900, b), Pressure::Critical);
        assert_eq!(Pressure::from_occupancy(5000, b), Pressure::Critical);
        // No budget = no pressure, ever.
        assert_eq!(Pressure::from_occupancy(u64::MAX, 0), Pressure::Nominal);
    }

    #[test]
    fn pressure_tiers_order_and_policies() {
        assert!(Pressure::Nominal < Pressure::Elevated);
        assert!(Pressure::Elevated < Pressure::High);
        assert!(Pressure::High < Pressure::Critical);
        assert_eq!(Pressure::Nominal.wnd_shift(), 0);
        assert_eq!(Pressure::Critical.wnd_shift(), 3);
        assert!(!Pressure::Elevated.paces_acks());
        assert!(Pressure::High.paces_acks());
        assert!(!Pressure::High.refuses_new_flows());
        assert!(Pressure::Critical.refuses_new_flows());
    }

    #[test]
    fn counter_absorb_saturates() {
        let mut a = HostCounters { accepts: u64::MAX - 1, mem_peak: 10, ..Default::default() };
        let b = HostCounters { accepts: 5, mem_peak: 7, ..Default::default() };
        a.absorb(&b);
        assert_eq!(a.accepts, u64::MAX);
        assert_eq!(a.mem_peak, 10, "peak merges by max");

        let mut x = AttackCounters { forged_segments: u64::MAX, ..Default::default() };
        x.absorb(&AttackCounters { forged_segments: 9, ..Default::default() });
        assert_eq!(x.forged_segments, u64::MAX);
    }

    #[test]
    fn host_gauges_absorb_across_shards() {
        let mut a = HostCounters {
            mem_used: 3000,
            conns_open: 10,
            conns_peak: 12,
            shard_occupancy: 40,
            ..Default::default()
        };
        let b = HostCounters {
            mem_used: 1000,
            conns_open: 10,
            conns_peak: 11,
            shard_occupancy: 55,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.conns_open, 20, "live conns sum across shards");
        assert_eq!(a.conns_peak, 23, "peaks sum (upper bound on global peak)");
        assert_eq!(a.bytes_per_conn, 200, "recomputed from merged sums, not averaged");
        assert_eq!(a.shard_occupancy, 55, "keeps the worst shard");
        let mut empty = HostCounters::default();
        empty.absorb(&HostCounters::default());
        assert_eq!(empty.bytes_per_conn, 0, "no division by zero conns");
    }

    #[test]
    fn fleet_health_gauges_absorb() {
        let mut a = HostCounters {
            heartbeat_age: 2,
            shard_restarts: 1,
            failover_aborts: 3,
            ring_stalls: 4,
            ..Default::default()
        };
        a.absorb(&HostCounters {
            heartbeat_age: 5,
            shard_restarts: 2,
            failover_aborts: 1,
            ring_stalls: 1,
            ..Default::default()
        });
        assert_eq!(a.heartbeat_age, 5, "oldest heartbeat is the binding gauge");
        assert_eq!(a.shard_restarts, 3);
        assert_eq!(a.failover_aborts, 4);
        assert_eq!(a.ring_stalls, 5);
    }

    #[test]
    fn muted_log_records_nothing() {
        let log = muted();
        log.borrow_mut().r("dm", "conn_table");
        log.borrow_mut().w("rd", "snd_una");
        assert!(log.borrow().is_empty());
        // An unmuted log still records.
        let live = shared();
        live.borrow_mut().r("dm", "conn_table");
        assert!(!live.borrow().is_empty());
    }

    #[test]
    fn cc_counters_sample_and_mean() {
        let mut c = CcCounters::default();
        c.sample(2000, Some(64 * 1024));
        c.sample(4000, Some(64 * 1024));
        assert_eq!(c.samples, 2);
        assert_eq!(c.cwnd_last, 4000);
        assert_eq!(c.cwnd_peak, 4000);
        assert_eq!(c.cwnd_mean(), 3000.0);
        assert_eq!(c.ssthresh_last, 64 * 1024);
        // A rate-based controller reports no threshold.
        c.sample(5000, None);
        assert_eq!(c.ssthresh_last, 0);
    }

    #[test]
    fn cc_counters_absorb_merges_gauges_sensibly() {
        let mut a = CcCounters::default();
        a.sample(8000, Some(4000));
        a.dupack_losses = 2;
        let mut b = CcCounters::default();
        b.sample(3000, Some(2000));
        b.rto_resets = 1;
        a.absorb(&b);
        assert_eq!(a.samples, 2);
        assert_eq!(a.cwnd_last, 3000, "other side sampled last");
        assert_eq!(a.cwnd_peak, 8000, "peak keeps the max");
        assert_eq!(a.dupack_losses, 2);
        assert_eq!(a.rto_resets, 1);
        // Absorbing an empty side leaves the gauges alone.
        a.absorb(&CcCounters::default());
        assert_eq!(a.cwnd_last, 3000);
    }
}
