//! Per-format network knowledge for the multi-hop fabric: address peeks
//! for `netlayer`'s [`StaticRouter`](netlayer::StaticRouter) ingress and
//! [`NatCodec`] implementations for its [`NatBox`](netlayer::NatBox).
//!
//! `netlayer` deliberately knows neither transport's wire format; the
//! router reads addresses through an [`AddrPeek`] function pointer and the
//! NAT rewrites endpoints through a boxed codec. Both live here, next to
//! the formats they understand. Every rewrite round-trips through the
//! real `Segment`/`Packet` codecs, so checksums are re-sealed and a
//! mangled frame comes out as `None` (the middlebox drops it as
//! malformed) rather than as garbage on the wire.

use netlayer::{AddrPeek, NatCodec};
use sublayer_core::wire::Packet;
use tcp_mono::wire::{Endpoint, Segment};

use crate::wire::Wire;
use crate::Kind;

/// [`AddrPeek`] for the monolithic RFC 793 format (8-byte address header).
pub fn peek_mono(frame: &[u8]) -> Option<(u32, u32)> {
    if frame.len() < 28 {
        return None;
    }
    let src = u32::from_be_bytes(frame.get(0..4)?.try_into().ok()?);
    let dst = u32::from_be_bytes(frame.get(4..8)?.try_into().ok()?);
    Some((src, dst))
}

/// [`AddrPeek`] for the sublayered native format (magic byte, then addrs).
pub fn peek_sub(frame: &[u8]) -> Option<(u32, u32)> {
    if frame.len() < 36 || frame[0] != 0x5B {
        return None;
    }
    let src = u32::from_be_bytes(frame.get(1..5)?.try_into().ok()?);
    let dst = u32::from_be_bytes(frame.get(5..9)?.try_into().ok()?);
    Some((src, dst))
}

/// The peek matching a stack kind.
pub fn peek_for(kind: Kind) -> AddrPeek {
    match kind {
        Kind::Mono => peek_mono,
        Kind::Sub => peek_sub,
    }
}

/// The NAT codec matching a stack kind.
pub fn nat_codec(kind: Kind) -> Box<dyn NatCodec> {
    match kind {
        Kind::Mono => Box::new(MonoNatCodec),
        Kind::Sub => Box::new(SubNatCodec),
    }
}

/// [`NatCodec`] over the monolithic RFC 793 wire format.
pub struct MonoNatCodec;

impl NatCodec for MonoNatCodec {
    fn tuple(&self, frame: &[u8]) -> Option<((u32, u16), (u32, u16))> {
        let s = Segment::decode(frame).ok()?;
        Some(((s.src.addr, s.src.port), (s.dst.addr, s.dst.port)))
    }

    fn rewrite_src(&self, frame: &[u8], addr: u32, port: u16) -> Option<Vec<u8>> {
        let mut s = Segment::decode(frame).ok()?;
        s.src = Endpoint::new(addr, port);
        Some(s.encode())
    }

    fn rewrite_dst(&self, frame: &[u8], addr: u32, port: u16) -> Option<Vec<u8>> {
        let mut s = Segment::decode(frame).ok()?;
        s.dst = Endpoint::new(addr, port);
        Some(s.encode())
    }

    fn shift_seq(&self, frame: &[u8], delta: u32) -> Option<Vec<u8>> {
        let mut s = Segment::decode(frame).ok()?;
        if s.payload.is_empty() {
            return None; // pure acks pass untouched
        }
        s.seq = s.seq.wrapping_add(delta);
        Some(s.encode())
    }

    fn forge_rst_reply(&self, frame: &[u8]) -> Option<Vec<u8>> {
        let s = Segment::decode(frame).ok()?;
        if s.rst() {
            return None; // never answer a RST with a RST
        }
        // RFC 793: a stateless host answering a stray ACK-bearing segment
        // sends RST with seq = the segment's ack; that lands exactly at
        // the sender's snd_nxt, so the reset is accepted.
        let seq = if s.ack_flag() { s.ack } else { 0 };
        Some(Wire::Mono.forge_rst(s.dst, s.src, seq))
    }
}

/// [`NatCodec`] over the sublayered native wire format.
pub struct SubNatCodec;

impl NatCodec for SubNatCodec {
    fn tuple(&self, frame: &[u8]) -> Option<((u32, u16), (u32, u16))> {
        let p = Packet::decode(frame).ok()?;
        Some(((p.src_addr, p.dm.src_port), (p.dst_addr, p.dm.dst_port)))
    }

    fn rewrite_src(&self, frame: &[u8], addr: u32, port: u16) -> Option<Vec<u8>> {
        let mut p = Packet::decode(frame).ok()?;
        p.src_addr = addr;
        p.dm.src_port = port;
        Some(p.encode())
    }

    fn rewrite_dst(&self, frame: &[u8], addr: u32, port: u16) -> Option<Vec<u8>> {
        let mut p = Packet::decode(frame).ok()?;
        p.dst_addr = addr;
        p.dm.dst_port = port;
        Some(p.encode())
    }

    fn shift_seq(&self, frame: &[u8], delta: u32) -> Option<Vec<u8>> {
        let mut p = Packet::decode(frame).ok()?;
        if p.payload.is_empty() {
            return None;
        }
        p.rd.seq = p.rd.seq.wrapping_add(delta);
        Some(p.encode())
    }

    fn forge_rst_reply(&self, frame: &[u8]) -> Option<Vec<u8>> {
        let p = Packet::decode(frame).ok()?;
        if p.cm.flags.rst {
            return None;
        }
        let seq = if p.rd.has_ack { p.rd.ack } else { 0 };
        Some(Wire::Sub.forge_rst(p.dst(), p.src(), seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_mono::wire::ACK;

    const C: Endpoint = Endpoint { addr: 0x0A000001, port: 5000 };
    const S: Endpoint = Endpoint { addr: 0x0A000002, port: 80 };

    fn mono_data(payload: &[u8]) -> Vec<u8> {
        Segment {
            src: C,
            dst: S,
            seq: 1000,
            ack: 2000,
            flags: ACK,
            wnd: 512,
            mss: None,
            payload: payload.to_vec(),
        }
        .encode()
    }

    fn sub_data(payload: &[u8]) -> Vec<u8> {
        let mut p = Packet {
            src_addr: C.addr,
            dst_addr: S.addr,
            dm: sublayer_core::wire::DmHeader { src_port: C.port, dst_port: S.port },
            cm: sublayer_core::wire::CmHeader::default(),
            rd: sublayer_core::wire::RdHeader::default(),
            osr: sublayer_core::wire::OsrHeader { ecn_echo: false, rcv_wnd: 512 },
            payload: payload.to_vec(),
        };
        p.rd.seq = 1000;
        p.rd.ack = 2000;
        p.rd.has_ack = true;
        p.encode()
    }

    #[test]
    fn peeks_read_addresses_and_reject_the_other_format() {
        let m = mono_data(b"hi");
        let s = sub_data(b"hi");
        assert_eq!(peek_mono(&m), Some((C.addr, S.addr)));
        assert_eq!(peek_sub(&s), Some((C.addr, S.addr)));
        assert_eq!(peek_sub(&m), None, "mono frame must not peek as sub");
        // The mono peek has no magic byte; it may read garbage addresses
        // off a sub frame, but in a single-format topology that is moot.
        assert!(peek_mono(&[0u8; 8]).is_none(), "short frames are rejected");
    }

    #[test]
    fn rewrites_reseal_the_checksum_in_both_formats() {
        for (frame, codec) in [
            (mono_data(b"abc"), &MonoNatCodec as &dyn NatCodec),
            (sub_data(b"abc"), &SubNatCodec as &dyn NatCodec),
        ] {
            let out = codec.rewrite_src(&frame, 0xC0A80001, 40000).expect("rewrite");
            let ((sa, sp), (da, dp)) = codec.tuple(&out).expect("rewritten frame decodes");
            assert_eq!((sa, sp), (0xC0A80001, 40000));
            assert_eq!((da, dp), (S.addr, S.port));
            let back = codec.rewrite_dst(&out, C.addr, C.port).expect("rewrite back");
            let ((_, _), (da2, dp2)) = codec.tuple(&back).unwrap();
            assert_eq!((da2, dp2), (C.addr, C.port));
        }
    }

    #[test]
    fn shift_seq_skips_pure_acks() {
        for (data, pure, codec) in [
            (mono_data(b"xyz"), mono_data(b""), &MonoNatCodec as &dyn NatCodec),
            (sub_data(b"xyz"), sub_data(b""), &SubNatCodec as &dyn NatCodec),
        ] {
            assert!(codec.shift_seq(&data, 7).is_some(), "data frames shift");
            assert!(codec.shift_seq(&pure, 7).is_none(), "pure acks must not");
        }
    }

    #[test]
    fn forged_rst_replies_answer_at_the_senders_expected_seq() {
        let m = MonoNatCodec.forge_rst_reply(&mono_data(b"hi")).expect("rst");
        let seg = Wire::Mono.decode(&m).unwrap();
        assert!(seg.rst);
        assert_eq!(seg.seq, 2000, "RST seq = the offending frame's ack");
        let s = SubNatCodec.forge_rst_reply(&sub_data(b"hi")).expect("rst");
        let seg = Wire::Sub.decode(&s).unwrap();
        assert!(seg.rst);
        assert_eq!(seg.seq, 2000);
        // A RST never begets another RST.
        assert!(MonoNatCodec.forge_rst_reply(&m).is_none());
        assert!(SubNatCodec.forge_rst_reply(&s).is_none());
    }
}
