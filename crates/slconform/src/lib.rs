//! # slconform — differential conformance harness (tentpole of PR 5)
//!
//! Drives **both** stacks — the sublayered `sublayer-core` and the
//! monolithic `tcp-mono` — in lockstep through the same deterministic
//! `netsim` scenarios and checks every run three ways:
//!
//! 1. **against an RFC-793/5961 oracle**: each endpoint's captured wire
//!    trace must obey sequence/ack-window arithmetic, handshake ordering,
//!    window discipline and the RFC 5961 response classes — the response
//!    relation is imported from `slverify::relation`, the *same*
//!    definition the model checker explores;
//! 2. **against the other stack**: outcomes (establishment, delivered
//!    bytes, terminal errors, close/peer-close state) must match across
//!    kinds, with benign divergences going through a documented
//!    allowlist, never a loosened oracle;
//! 3. **against golden traces** (`golden/`, regenerate with `BLESS=1`).
//!
//! The wire formats themselves carry their own proof: [`codec_equiv`]
//! walks a product automaton over both codecs' abstract segment alphabet
//! and certifies they are field-for-field equivalent (the paper's §3.1
//! isomorphism claim) through the same [`wire`] taps the harness uses on
//! live traffic.
//!
//! On any divergence the harness shrinks the scenario's event script to a
//! minimal reproducer (`shrink`) and emits a byte-replayable artifact
//! (`artifact`) that re-executes the endpoint sans-IO and compares its
//! transmissions byte-for-byte.

pub mod absseg;
pub mod artifact;
pub mod codec_equiv;
pub mod diff;
pub mod driver;
pub mod golden;
pub mod multihop;
pub mod natcodec;
pub mod oracle;
pub mod scenario;
pub mod shrink;
pub mod wire;

pub use absseg::{normalize, AbsSeg};
pub use codec_equiv::{certify, AbsWord, CodecCert, CodecEquiv, ALPHABET};
pub use diff::{allowlist, check_scenario, check_scenario_mutated, Allow, Divergence, Report};
pub use oracle::check_endpoint;
pub use shrink::{shrink, Shrunk};
pub use driver::{
    pattern, run_kind, run_scenario, run_scenario_mutated, AppOp, BugStack, ConformStack,
    EndpointOut, Kind, Mutation, RunOut,
};
pub use multihop::{diff_multihop, run_multihop, MhOut, MhScenario};
pub use natcodec::{nat_codec, peek_for, peek_mono, peek_sub, MonoNatCodec, SubNatCodec};
pub use scenario::{corpus, Ev, FaultKind, LinkSpec, RstOff, Scenario, Side};
pub use wire::{RawSeg, Wire};
