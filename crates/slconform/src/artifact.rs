//! Byte-replayable trace artifacts.
//!
//! An artifact pins *one endpoint* of a run: every application operation
//! and every received frame, each with its simulated timestamp, plus the
//! transmissions the endpoint produced. [`replay`] rebuilds a fresh stack
//! of the same kind, feeds it the recorded inputs at the recorded times
//! (firing its own deadlines in between, exactly like the simulator's
//! `StackNode` pump), and compares its transmissions byte-for-byte and
//! time-for-time against the recording — proving the endpoint is a pure
//! function of its sans-IO inputs and making any divergence portable as a
//! single text file.

use crate::driver::{
    AppOp, BugStack, ConformStack, EndpointOut, Kind, Mutation, RunOut, A_ADDR, B_ADDR,
    CLIENT_PORT, SERVER_PORT,
};
use crate::scenario::Side;
use netsim::{Dur, Stack, TapDir, Time};
use sublayer_core::SlTcpStack;
use tcp_mono::wire::{Endpoint, FourTuple};
use tcp_mono::TcpStack;

fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn unhex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd hex length".into());
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).map_err(|e| e.to_string()))
        .collect()
}

/// Render one endpoint of a run as a self-contained replayable artifact.
pub fn render(scenario: &str, run: &RunOut, side: Side, mutation: Mutation) -> String {
    let ep: &EndpointOut = match side {
        Side::Client => &run.client,
        Side::Server => &run.server,
    };
    let mut out = String::new();
    out.push_str("slconform-trace v1\n");
    out.push_str(&format!("scenario {scenario}\n"));
    out.push_str(&format!("seed {}\n", run.seed));
    out.push_str(&format!("kind {}\n", run.kind.label()));
    out.push_str(&format!("side {}\n", side.label()));
    let mut_str = match mutation {
        Mutation::None => "none".to_string(),
        Mutation::AckFuture { delta } => format!("ack_future:{delta}"),
        Mutation::DropPureAcks => "drop_pure_acks".to_string(),
    };
    out.push_str(&format!("mutation {mut_str}\n"));
    for (at, op) in &ep.app {
        let line = match op {
            AppOp::Listen => "listen".to_string(),
            AppOp::Connect => "connect".to_string(),
            AppOp::Send(b) => format!("send {}", hex(b)),
            AppOp::Recv => "recv".to_string(),
            AppOp::Close => "close".to_string(),
            AppOp::Abort => "abort".to_string(),
            AppOp::Inject(b) => format!("inject {}", hex(b)),
        };
        out.push_str(&format!("app {at} {line}\n"));
    }
    for ev in &ep.raw {
        let tag = match ev.dir {
            TapDir::Rx => "rx",
            TapDir::Tx => "tx",
        };
        out.push_str(&format!("{tag} {} {}\n", ev.at.nanos(), hex(&ev.bytes)));
    }
    out
}

/// One parsed input or expectation from an artifact.
enum Item {
    App(AppOp),
    Rx(Vec<u8>),
}

struct Parsed {
    kind: Kind,
    side: Side,
    mutation: Mutation,
    /// Inputs in delivery order: `(at_ns, item)`.
    inputs: Vec<(u64, Item)>,
    /// Expected transmissions: `(at_ns, frame)`.
    expect_tx: Vec<(u64, Vec<u8>)>,
}

fn parse(text: &str) -> Result<Parsed, String> {
    let mut lines = text.lines();
    if lines.next() != Some("slconform-trace v1") {
        return Err("bad header".into());
    }
    let mut kind = None;
    let mut side = None;
    let mut mutation = Mutation::None;
    let mut inputs: Vec<(u64, Item)> = Vec::new();
    let mut expect_tx = Vec::new();
    for line in lines {
        let mut parts = line.splitn(3, ' ');
        let tag = parts.next().unwrap_or("");
        match tag {
            "scenario" | "seed" => {}
            "kind" => {
                kind = match parts.next() {
                    Some("sub") => Some(Kind::Sub),
                    Some("mono") => Some(Kind::Mono),
                    other => return Err(format!("bad kind {other:?}")),
                }
            }
            "side" => {
                side = match parts.next() {
                    Some("client") => Some(Side::Client),
                    Some("server") => Some(Side::Server),
                    other => return Err(format!("bad side {other:?}")),
                }
            }
            "mutation" => {
                let m = parts.next().unwrap_or("none");
                mutation = if m == "none" {
                    Mutation::None
                } else if m == "drop_pure_acks" {
                    Mutation::DropPureAcks
                } else if let Some(d) = m.strip_prefix("ack_future:") {
                    Mutation::AckFuture { delta: d.parse().map_err(|_| "bad delta")? }
                } else {
                    return Err(format!("bad mutation {m}"));
                };
            }
            "app" => {
                let at: u64 =
                    parts.next().ok_or("missing time")?.parse().map_err(|_| "bad time")?;
                let rest = parts.next().ok_or("missing op")?;
                let mut op_parts = rest.splitn(2, ' ');
                let op = match (op_parts.next().unwrap_or(""), op_parts.next()) {
                    ("listen", _) => AppOp::Listen,
                    ("connect", _) => AppOp::Connect,
                    ("send", Some(h)) => AppOp::Send(unhex(h)?),
                    ("recv", _) => AppOp::Recv,
                    ("close", _) => AppOp::Close,
                    ("abort", _) => AppOp::Abort,
                    ("inject", Some(h)) => AppOp::Inject(unhex(h)?),
                    (o, _) => return Err(format!("bad app op {o}")),
                };
                inputs.push((at, Item::App(op)));
            }
            "rx" => {
                let at: u64 =
                    parts.next().ok_or("missing time")?.parse().map_err(|_| "bad time")?;
                inputs.push((at, Item::Rx(unhex(parts.next().ok_or("missing frame")?)?)));
            }
            "tx" => {
                let at: u64 =
                    parts.next().ok_or("missing time")?.parse().map_err(|_| "bad time")?;
                expect_tx.push((at, unhex(parts.next().ok_or("missing frame")?)?));
            }
            "" => {}
            other => return Err(format!("bad line tag {other}")),
        }
    }
    // Inputs must be replayed in global capture order: rx frames were
    // delivered by the simulator before same-instant app ops ran.
    inputs.sort_by_key(|(at, item)| (*at, matches!(item, Item::App(_)) as u8));
    Ok(Parsed {
        kind: kind.ok_or("missing kind")?,
        side: side.ok_or("missing side")?,
        mutation,
        inputs,
        expect_tx,
    })
}

fn t_ns(ns: u64) -> Time {
    Time::ZERO + Dur::from_nanos(ns)
}

/// Replay an artifact against a fresh stack; returns the number of
/// transmissions matched, or a description of the first mismatch.
pub fn replay(text: &str) -> Result<usize, String> {
    let parsed = parse(text)?;
    match parsed.kind {
        Kind::Sub => replay_as::<SlTcpStack>(&parsed),
        Kind::Mono => replay_as::<TcpStack>(&parsed),
    }
}

fn replay_as<H: ConformStack>(parsed: &Parsed) -> Result<usize, String> {
    let (addr, local_port, remote) = match parsed.side {
        Side::Client => (A_ADDR, CLIENT_PORT, Endpoint::new(B_ADDR, SERVER_PORT)),
        Side::Server => (B_ADDR, SERVER_PORT, Endpoint::new(A_ADDR, CLIENT_PORT)),
    };
    let local = Endpoint::new(addr, local_port);
    let tuple = FourTuple { local, remote };
    let mut stack = BugStack::new(H::mk(addr), parsed.kind.wire(), parsed.mutation);
    let mut conn: Option<<H as slhost::HostStack>::ConnId> = None;
    let mut got_tx: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut now = Time::ZERO;

    // Mirror of `StackNode::pump` + the timer loop: drain transmissions,
    // then fire every due deadline before advancing past it.
    fn drain<S: Stack>(stack: &mut S, now: Time, got: &mut Vec<(u64, Vec<u8>)>) {
        while let Some(frame) = stack.poll_transmit(now) {
            got.push((now.nanos(), frame));
        }
    }

    for (at, item) in &parsed.inputs {
        let target = t_ns(*at);
        // Fire deadlines strictly before the next input's instant.
        while let Some(d) = stack.poll_deadline(now) {
            let d = d.max(now);
            if d >= target {
                break;
            }
            now = d;
            stack.on_tick(now);
            drain(&mut stack, now, &mut got_tx);
        }
        now = target.max(now);
        match item {
            Item::Rx(frame) => {
                stack.on_frame(now, frame);
            }
            Item::App(op) => {
                if conn.is_none() {
                    conn = stack.inner.conn_for_tuple(&tuple);
                }
                match op {
                    AppOp::Listen => stack.inner.listen(local_port),
                    AppOp::Connect => {
                        conn = stack.inner.try_connect(now, local_port, remote).ok();
                    }
                    AppOp::Send(bytes) => {
                        if let Some(id) = conn {
                            stack.inner.send(id, bytes);
                        }
                    }
                    AppOp::Recv => {
                        if let Some(id) = conn {
                            stack.inner.recv(id);
                        }
                    }
                    AppOp::Close => {
                        if let Some(id) = conn {
                            stack.inner.close(id);
                        }
                    }
                    AppOp::Abort => {
                        if let Some(id) = conn {
                            stack.inner.abort(now, id);
                        }
                    }
                    // The forged frame is already present in the rx
                    // stream (the tap recorded its delivery); feeding it
                    // here again would double it.
                    AppOp::Inject(_) => {}
                }
            }
        }
        drain(&mut stack, now, &mut got_tx);
    }
    // Run out the clock to the last expected transmission.
    if let Some(last) = parsed.expect_tx.last().map(|(at, _)| *at) {
        let end = t_ns(last);
        while let Some(d) = stack.poll_deadline(now) {
            let d = d.max(now);
            if d > end {
                break;
            }
            now = d;
            stack.on_tick(now);
            drain(&mut stack, now, &mut got_tx);
        }
    }

    for (i, want) in parsed.expect_tx.iter().enumerate() {
        match got_tx.get(i) {
            None => {
                return Err(format!(
                    "replay produced {} transmissions, recording has {} (first missing at {}ns)",
                    got_tx.len(),
                    parsed.expect_tx.len(),
                    want.0
                ))
            }
            Some(got) if got != want => {
                return Err(format!(
                    "transmission {i} differs: recorded {}ns {} bytes, replayed {}ns {} bytes",
                    want.0,
                    want.1.len(),
                    got.0,
                    got.1.len()
                ))
            }
            Some(_) => {}
        }
    }
    if got_tx.len() > parsed.expect_tx.len() {
        return Err(format!(
            "replay produced {} extra transmissions past the recorded {}",
            got_tx.len() - parsed.expect_tx.len(),
            parsed.expect_tx.len()
        ));
    }
    Ok(got_tx.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_kind;
    use crate::scenario::corpus;

    #[test]
    fn roundtrip_hex() {
        let b = vec![0x00, 0x5b, 0xff, 0x10];
        assert_eq!(unhex(&hex(&b)).unwrap(), b);
    }

    #[test]
    fn replay_matches_recording_byte_for_byte() {
        let all = corpus();
        for name in ["handshake_client_close", "data_c2s_small", "rst_in_window_client"] {
            let sc = all.iter().find(|s| s.name == name).unwrap();
            for kind in [Kind::Sub, Kind::Mono] {
                let run = run_kind(kind, sc, 1, Mutation::None);
                for side in [Side::Client, Side::Server] {
                    let art = render(sc.name, &run, side, Mutation::None);
                    let n = replay(&art).unwrap_or_else(|e| {
                        panic!("{name} {} {}: {e}", kind.label(), side.label())
                    });
                    assert!(n > 0, "{name}: no transmissions replayed");
                }
            }
        }
    }

    #[test]
    fn mutated_run_replays_with_its_mutation() {
        let sc = corpus().into_iter().find(|s| s.name == "data_c2s_small").unwrap();
        let m = Mutation::AckFuture { delta: 7 };
        let run = run_kind(Kind::Sub, &sc, 1, m);
        let art = render(sc.name, &run, Side::Client, m);
        replay(&art).expect("mutated replay must still be deterministic");
    }
}
