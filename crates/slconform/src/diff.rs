//! The differential layer: run both stacks, judge both traces with the
//! oracle, compare outcomes across stacks, and filter *documented* benign
//! divergences through the allowlist.
//!
//! The allowlist discipline (conformance audit): a divergence is either
//! **fixed** (the stacks are aligned — e.g. the monolith's CLOSE_WAIT now
//! reads as established through the parity surface, matching the
//! sublayered CM's half-close model) or **registered here with a written
//! rationale**. The oracle itself is never loosened to make a stack pass.

use crate::driver::{run_kind, Kind, Mutation, RunOut};
use crate::scenario::Scenario;

/// One detected divergence: a stable machine-checkable code plus a
/// human-readable detail line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Divergence {
    pub code: String,
    pub detail: String,
}

/// A documented benign divergence.
pub struct Allow {
    pub id: &'static str,
    /// Divergence codes this entry absorbs (prefix match).
    pub code_prefix: &'static str,
    /// Restrict to scenarios whose name starts with this (`None` = any).
    pub scenario: Option<&'static str>,
    /// Only applies when the scenario impairs the link (fault profile or
    /// a scripted outage) — a clean-link hit is still a failure.
    pub only_impaired: bool,
    pub rationale: &'static str,
}

/// Does the scenario impair frame delivery at all?
fn impaired(sc: &Scenario) -> bool {
    sc.link.fault != crate::scenario::FaultKind::None
        || sc.events.iter().any(|(_, e)| matches!(e, crate::scenario::Ev::LinkDown))
}

/// The registered allowlist. Every entry documents *why* the divergence
/// is benign; `exp_conform` reports per-entry hit counts so dead entries
/// are visible.
pub fn allowlist() -> &'static [Allow] {
    &[
        Allow {
            id: "AL-1-progress-under-impairment",
            code_prefix: "delivered.len:",
            scenario: None,
            only_impaired: true,
            rationale: "Loss/reorder/duplication are applied per frame by the \
                        deterministic fault injector; the two stacks emit different \
                        frame sequences (segmentation, ack cadence, RTO schedule), so \
                        the same impairment rate kills different frames. Delivered-byte \
                        *content* must still agree as a common prefix and integrity \
                        must hold — only the progress count at the observation instant \
                        may differ, and only on impaired links.",
        },
        Allow {
            id: "AL-2-err-class-under-outage",
            code_prefix: "outcome.error:",
            scenario: Some("handshake_timeout"),
            only_impaired: true,
            rationale: "When the link never comes back, both stacks must abort the \
                        half-open attempt; RFC 793 does not fix the error taxonomy. \
                        The sublayered stack's CM reports HandshakeFailed, the \
                        monolith folds SYN-retry exhaustion into RetriesExhausted. \
                        Both are clean local aborts with no wire traffic, so the \
                        class difference is surfaced, documented, and accepted.",
        },
        Allow {
            id: "AL-3-sws-fill-level",
            code_prefix: "delivered.len:",
            scenario: Some("zero_window"),
            only_impaired: false,
            rationale: "When the advertised window shrinks below one segment the \
                        sublayered sender waits for it to reopen (sender-side SWS \
                        avoidance, RFC 9293 \u{a7}3.8.6.2.1 lets it) while the monolith \
                        segments down to fill the window exactly. Receive buffers \
                        therefore sit a few hundred bytes apart at every zero-window \
                        stall, and the scenario cuts the transfer off mid-flight, so \
                        the delivered *count* differs by the sum of those fill gaps. \
                        Content prefix, integrity and window discipline (probe slack \
                        of one byte) are still enforced.",
        },
    ]
}

/// Everything learned from one differential scenario run.
#[derive(Debug)]
pub struct Report {
    pub scenario: String,
    pub seed: u64,
    pub sub: RunOut,
    pub mono: RunOut,
    /// Divergences not covered by the allowlist — conformance failures.
    pub unexplained: Vec<Divergence>,
    /// Divergences absorbed by an allowlist entry: `(allow id, detail)`.
    pub allowlisted: Vec<(&'static str, String)>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.unexplained.is_empty()
    }
}

/// Compare one field across kinds.
fn cmp<T: PartialEq + std::fmt::Debug>(
    out: &mut Vec<Divergence>,
    code: &str,
    sub: T,
    mono: T,
) {
    if sub != mono {
        out.push(Divergence {
            code: code.to_string(),
            detail: format!("{code} sub={sub:?} mono={mono:?}"),
        });
    }
}

fn compare_runs(sc: &Scenario, sub: &RunOut, mono: &RunOut) -> Vec<Divergence> {
    let mut d = Vec::new();
    for (side, s, m) in [
        ("client", &sub.client, &mono.client),
        ("server", &sub.server, &mono.server),
    ] {
        cmp(&mut d, &format!("outcome.established:{side}"), s.obs.established, m.obs.established);
        cmp(&mut d, &format!("outcome.closed:{side}"), s.obs.closed, m.obs.closed);
        cmp(&mut d, &format!("outcome.peer_closed:{side}"), s.obs.peer_closed, m.obs.peer_closed);
        cmp(&mut d, &format!("outcome.error:{side}"), s.obs.error, m.obs.error);
        cmp(&mut d, &format!("outcome.est_ever:{side}"), s.established_ever, m.established_ever);
        cmp(&mut d, &format!("outcome.conn_known:{side}"), s.conn_known, m.conn_known);
        cmp(&mut d, &format!("connect_err:{side}"), s.connect_err, m.connect_err);
        cmp(&mut d, &format!("delivered.len:{side}"), s.delivered.len(), m.delivered.len());
        // Whatever both delivered must agree byte-for-byte.
        let common = s.delivered.len().min(m.delivered.len());
        if s.delivered[..common] != m.delivered[..common] {
            d.push(Divergence {
                code: format!("delivered.bytes:{side}"),
                detail: format!("delivered.bytes:{side} first {common} bytes differ across stacks"),
            });
        }
    }
    let _ = sc;
    d
}

/// Per-run integrity: delivered bytes must be a prefix of what the peer's
/// application queued (no corruption, reordering, or invention).
fn integrity(run: &RunOut) -> Vec<Divergence> {
    let mut d = Vec::new();
    let kind = run.kind.label();
    for (side, ep, peer) in [
        ("client", &run.client, &run.server),
        ("server", &run.server, &run.client),
    ] {
        let got = &ep.delivered;
        let sent = &peer.queued;
        let ok = got.len() <= sent.len() && *got.as_slice() == sent[..got.len()];
        if !ok {
            d.push(Divergence {
                code: format!("integrity:{kind}:{side}"),
                detail: format!(
                    "integrity:{kind}:{side} delivered {} bytes that are not a prefix of the {} queued",
                    got.len(),
                    sent.len()
                ),
            });
        }
    }
    d
}

fn oracle_judgments(sc: &Scenario, run: &RunOut) -> Vec<Divergence> {
    let kind = run.kind.label();
    let mut d = Vec::new();
    for (side, ep, active) in [
        ("client", &run.client, true),
        ("server", &run.server, sc.server_connects),
    ] {
        for msg in crate::oracle::check_endpoint(ep, active, &format!("{kind}:{side}")) {
            d.push(Divergence { code: format!("oracle:{kind}:{side}"), detail: msg });
        }
    }
    d
}

fn apply_allowlist(
    sc: &Scenario,
    found: Vec<Divergence>,
) -> (Vec<Divergence>, Vec<(&'static str, String)>) {
    let mut unexplained = Vec::new();
    let mut allowed = Vec::new();
    'next: for div in found {
        for a in allowlist() {
            let scen_ok = a.scenario.is_none_or(|s| sc.name.starts_with(s));
            let impair_ok = !a.only_impaired || impaired(sc);
            if scen_ok && impair_ok && div.code.starts_with(a.code_prefix) {
                allowed.push((a.id, div.detail));
                continue 'next;
            }
        }
        unexplained.push(div);
    }
    (unexplained, allowed)
}

/// Run `sc` against both stacks with the same seed and judge everything.
pub fn check_scenario(sc: &Scenario, seed: u64) -> Report {
    check_scenario_mutated(sc, seed, Kind::Sub, Mutation::None)
}

/// Same, with a seeded client-side mutation applied to `mut_kind`'s run —
/// the harness's own mutation tests use this to prove divergences are
/// caught and shrink.
pub fn check_scenario_mutated(
    sc: &Scenario,
    seed: u64,
    mut_kind: Kind,
    mutation: Mutation,
) -> Report {
    let sub = run_kind(
        Kind::Sub,
        sc,
        seed,
        if mut_kind == Kind::Sub { mutation } else { Mutation::None },
    );
    let mono = run_kind(
        Kind::Mono,
        sc,
        seed,
        if mut_kind == Kind::Mono { mutation } else { Mutation::None },
    );
    let mut found = Vec::new();
    found.extend(oracle_judgments(sc, &sub));
    found.extend(oracle_judgments(sc, &mono));
    found.extend(integrity(&sub));
    found.extend(integrity(&mono));
    found.extend(compare_runs(sc, &sub, &mono));
    let (unexplained, allowlisted) = apply_allowlist(sc, found);
    Report {
        scenario: sc.name.to_string(),
        seed,
        sub,
        mono,
        unexplained,
        allowlisted,
    }
}
