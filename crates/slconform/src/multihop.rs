//! Multi-hop conformance: both stacks behind the `netlayer` fabric.
//!
//! The point-to-point corpus (`scenario`) checks protocol conformance on
//! a single wire; these scenarios put each stack behind a routed
//! [`netlayer::BoxTopo`] — multiple hops, a scripted reroute, a NAT
//! middlebox that forgets its translations — and check that the two
//! stacks agree at the *outcome* level:
//!
//! * [`MhScenario::RerouteMidTransfer`] — a diamond topology loses its
//!   primary path mid-transfer; the surviving path is an order of
//!   magnitude slower (an RTT step change) and frames in flight on the
//!   old path arrive late (ECMP-style reordering). Both stacks must
//!   absorb the switch and finish, with no spurious abort.
//! * [`MhScenario::NatRestart`] — the client sits behind a NAT that wipes
//!   its translation table mid-transfer. Retransmits re-map onto fresh
//!   public ports, the far end answers with a stateless RST, and both
//!   stacks must surface a **typed** abort — after which a fresh
//!   connection through the same NAT must work (reconnect-or-typed-abort).
//! * [`MhScenario::FaninBottleneck`] — three clients funnel through one
//!   rate-limited backbone edge into one server; all three streams must
//!   arrive complete and uncorrupted on both stacks.
//!
//! A *divergence* is an outcome-level disagreement between the stacks
//! (completion, typed-error presence, reconnect success). Per-run
//! invariant failures (corruption, missing abort, no reroute observed)
//! are *violations*, charged to the run that broke them.

use netlayer::{
    box_host_addr, schedule_nat_wipe, topo_diamond, topo_fanin, topo_nat_gateway, BoxNet,
    NatBox, NAT_INSIDE, NAT_OUTSIDE,
};
use netsim::{Dur, LinkParams, NodeId, SimNet, StackNode, Time, TransportError};
use sublayer_core::SlTcpStack;
use tcp_mono::wire::Endpoint;
use tcp_mono::TcpStack;

use crate::driver::{ConformStack, Kind};
use crate::natcodec::{nat_codec, peek_for};

/// Server port for every multi-hop scenario.
pub const MH_SERVER_PORT: u16 = 80;
/// Private (pre-NAT) client address for [`MhScenario::NatRestart`].
pub const MH_PRIVATE_ADDR: u32 = 0xC0A8_0001;

const TICK: Dur = Dur(50_000_000); // 50 ms
const PATIENCE: Dur = Dur(120_000_000_000); // 120 s

fn t(ms: u64) -> Time {
    Time::ZERO + Dur::from_millis(ms)
}

/// The multi-hop scenario set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MhScenario {
    RerouteMidTransfer,
    NatRestart,
    FaninBottleneck,
}

impl MhScenario {
    pub fn all() -> [MhScenario; 3] {
        [MhScenario::RerouteMidTransfer, MhScenario::NatRestart, MhScenario::FaninBottleneck]
    }

    pub fn name(&self) -> &'static str {
        match self {
            MhScenario::RerouteMidTransfer => "reroute_mid_transfer",
            MhScenario::NatRestart => "nat_restart",
            MhScenario::FaninBottleneck => "fanin_bottleneck",
        }
    }
}

/// Outcome of one multi-hop run against one stack kind.
#[derive(Clone, Debug)]
pub struct MhOut {
    pub scenario: &'static str,
    pub kind: Kind,
    pub seed: u64,
    /// Per-stream payload length.
    pub payload: usize,
    /// Per-stream bytes delivered at the server, stream-order.
    pub delivered: Vec<usize>,
    /// Every stream arrived in full.
    pub complete: bool,
    /// Per-stream terminal error at the client.
    pub client_errors: Vec<Option<TransportError>>,
    /// `NatRestart` only: the post-abort reconnect delivered its bytes.
    pub reconnect_ok: Option<bool>,
    /// Sum of router table installs after build (reroutes/heals).
    pub reroutes: u64,
    /// Invariant failures charged to this run.
    pub violations: Vec<String>,
}

impl MhOut {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Deterministic per-stream payload; distinct salts make cross-stream
/// misdelivery (not just truncation) detectable.
pub fn mh_pattern(stream: usize, len: usize) -> Vec<u8> {
    let salt = (stream as u8).wrapping_mul(53).wrapping_add(11);
    (0..len).map(|i| ((i % 251) as u8).wrapping_add(salt)).collect()
}

/// Run one scenario against one stack kind.
pub fn run_multihop(kind: Kind, sc: MhScenario, seed: u64) -> MhOut {
    match kind {
        Kind::Sub => run_h::<SlTcpStack>(sc, seed),
        Kind::Mono => run_h::<TcpStack>(sc, seed),
    }
}

/// Run one scenario against both stacks and compare outcomes. Returns the
/// two runs plus the divergence list (empty = the stacks agree).
pub fn diff_multihop(sc: MhScenario, seed: u64) -> (MhOut, MhOut, Vec<String>) {
    let sub = run_multihop(Kind::Sub, sc, seed);
    let mono = run_multihop(Kind::Mono, sc, seed);
    let mut d = Vec::new();
    if sub.complete != mono.complete {
        d.push(format!(
            "completion diverges: sub={} mono={}",
            sub.complete, mono.complete
        ));
    }
    for (i, (se, me)) in sub.client_errors.iter().zip(&mono.client_errors).enumerate() {
        if se.is_some() != me.is_some() {
            d.push(format!(
                "stream {i} typed-error presence diverges: sub={se:?} mono={me:?}"
            ));
        }
    }
    if sub.reconnect_ok != mono.reconnect_ok {
        d.push(format!(
            "reconnect outcome diverges: sub={:?} mono={:?}",
            sub.reconnect_ok, mono.reconnect_ok
        ));
    }
    (sub, mono, d)
}

// ---------------------------------------------------------------------------
// The generic runner
// ---------------------------------------------------------------------------

fn attach_host<H: ConformStack>(
    net: &mut SimNet,
    bn: &BoxNet,
    site: usize,
    stack: H,
    access: LinkParams,
) -> NodeId {
    let id = net.add_node(Box::new(StackNode::new(stack)));
    let (router, port) = bn.host_ports[site];
    net.connect(id, 0, router, port, access);
    id
}

fn stack_mut<H: ConformStack>(net: &mut SimNet, id: NodeId) -> &mut H {
    &mut net.node_mut::<StackNode<H>>(id).stack
}

/// Feed each client its unsent tail, drain the server, step the clock.
/// Stops when every stream is complete, every client has a terminal
/// error, or patience runs out.
fn pump<H: ConformStack>(
    net: &mut SimNet,
    clients: &[(NodeId, H::ConnId)],
    payloads: &[Vec<u8>],
    server: NodeId,
    got: &mut [Vec<u8>],
    sconns: &mut [Option<H::ConnId>],
) {
    let deadline = net.now() + PATIENCE;
    let mut sent = vec![0usize; clients.len()];
    while net.now() < deadline {
        let step = net.now() + TICK;
        net.run_until(step);
        for (i, &(node, conn)) in clients.iter().enumerate() {
            if sent[i] < payloads[i].len() {
                sent[i] += stack_mut::<H>(net, node).send(conn, &payloads[i][sent[i]..]);
            }
        }
        {
            let st = stack_mut::<H>(net, server);
            // Streams appear asynchronously; adopt new server conns in
            // arrival order (attribution happens by salt at the end).
            for id in st.established() {
                if !sconns.contains(&Some(id)) {
                    if let Some(slot) = sconns.iter_mut().find(|s| s.is_none()) {
                        *slot = Some(id);
                    }
                }
            }
            for (i, s) in sconns.iter().enumerate() {
                if let Some(id) = *s {
                    got[i].extend(st.recv(id));
                }
            }
        }
        net.poll_all();
        let done: usize = got.iter().map(Vec::len).sum();
        let want: usize = payloads.iter().map(Vec::len).sum();
        if done >= want {
            break;
        }
        let all_dead = clients
            .iter()
            .all(|&(node, conn)| stack_mut::<H>(net, node).conn_error(conn).is_some());
        if all_dead {
            // Let the fabric and far side settle, then stop.
            let settle = net.now() + Dur::from_secs(30);
            net.run_until(settle);
            break;
        }
    }
}

/// Check every server stream is an intact prefix of exactly one client
/// pattern, and return delivered counts in *stream* order.
fn attribute(
    got: &[Vec<u8>],
    payloads: &[Vec<u8>],
    violations: &mut Vec<String>,
) -> Vec<usize> {
    let mut delivered = vec![0usize; payloads.len()];
    let mut claimed = vec![false; payloads.len()];
    for (slot, bytes) in got.iter().enumerate() {
        if bytes.is_empty() {
            continue;
        }
        let hit = payloads.iter().enumerate().position(|(i, p)| {
            !claimed[i] && bytes.len() <= p.len() && p[..bytes.len()] == bytes[..]
        });
        match hit {
            Some(i) => {
                claimed[i] = true;
                delivered[i] = bytes.len();
            }
            None => violations.push(format!(
                "integrity: server stream {slot} ({} bytes) matches no client pattern",
                bytes.len()
            )),
        }
    }
    delivered
}

fn run_h<H: ConformStack>(sc: MhScenario, seed: u64) -> MhOut {
    match sc {
        MhScenario::RerouteMidTransfer => reroute_run::<H>(seed),
        MhScenario::NatRestart => nat_run::<H>(seed),
        MhScenario::FaninBottleneck => fanin_run::<H>(seed),
    }
}

fn base_out(sc: MhScenario, kind: Kind, seed: u64, payload: usize, streams: usize) -> MhOut {
    MhOut {
        scenario: sc.name(),
        kind,
        seed,
        payload,
        delivered: vec![0; streams],
        complete: false,
        client_errors: vec![None; streams],
        reconnect_ok: None,
        reroutes: 0,
        violations: Vec::new(),
    }
}

fn reroute_run<H: ConformStack>(seed: u64) -> MhOut {
    let mut out = base_out(MhScenario::RerouteMidTransfer, H::KIND, seed, 1_000_000, 1);
    let mut net = SimNet::new(seed);
    let bn: BoxNet = topo_diamond().build(&mut net, peek_for(H::KIND));
    let caddr = box_host_addr(0);
    let saddr = box_host_addr(1);
    let mut client = H::mk(caddr);
    let mut server = H::mk(saddr);
    server.listen(MH_SERVER_PORT);
    let conn = client
        .try_connect(Time::ZERO, 5000, Endpoint::new(saddr, MH_SERVER_PORT))
        .expect("client connect");
    // Rate-limit the client's access link so the transfer is still in
    // flight when the primary path dies.
    let access = LinkParams::delay_only(Dur::from_millis(1)).with_rate(4_000_000);
    let nc = attach_host(&mut net, &bn, 0, client, access);
    let ns = attach_host(&mut net, &bn, 1, server, LinkParams::delay_only(Dur::from_millis(1)));
    // Kill the primary's first hop at t=1.5 s; the control plane installs
    // the (15 ms-per-hop) backup tables 50 ms later.
    bn.schedule_reroute(&mut net, 0, t(1_500), Dur::from_millis(50));
    net.poll_all();

    let payloads = vec![mh_pattern(0, out.payload)];
    let mut got = vec![Vec::new()];
    let mut sconns: Vec<Option<H::ConnId>> = vec![None];
    pump::<H>(&mut net, &[(nc, conn)], &payloads, ns, &mut got, &mut sconns);

    out.delivered = attribute(&got, &payloads, &mut out.violations);
    out.complete = out.delivered[0] >= out.payload;
    out.client_errors = vec![stack_mut::<H>(&mut net, nc).conn_error(conn)];
    out.reroutes = bn.router_stats(&mut net, |s| s.reroutes);
    if !out.complete {
        out.violations.push(format!(
            "reroute: transfer stalled at {}/{} (err {:?})",
            out.delivered[0], out.payload, out.client_errors[0]
        ));
    }
    if let Some(e) = out.client_errors[0] {
        out.violations.push(format!("reroute: spurious client abort {e:?}"));
    }
    if out.reroutes == 0 {
        out.violations.push("reroute: no router installed a backup table".into());
    }
    out
}

fn nat_run<H: ConformStack>(seed: u64) -> MhOut {
    let mut out = base_out(MhScenario::NatRestart, H::KIND, seed, 2_000_000, 1);
    let mut net = SimNet::new(seed);
    let bn: BoxNet = topo_nat_gateway().build(&mut net, peek_for(H::KIND));
    let public = box_host_addr(0);
    let saddr = box_host_addr(1);
    let mut client = H::mk(MH_PRIVATE_ADDR);
    let mut server = H::mk(saddr);
    server.listen(MH_SERVER_PORT);
    let conn = client
        .try_connect(Time::ZERO, 5000, Endpoint::new(saddr, MH_SERVER_PORT))
        .expect("client connect");

    let access = LinkParams::delay_only(Dur::from_millis(1)).with_rate(4_000_000);
    let nc = net.add_node(Box::new(StackNode::new(client)));
    let nat = net.add_node(Box::new(NatBox::new(nat_codec(H::KIND), public).rst_on_unknown()));
    net.connect(nc, 0, nat, NAT_INSIDE, access);
    let (r0, p0) = bn.host_ports[0];
    net.connect(nat, NAT_OUTSIDE, r0, p0, LinkParams::delay_only(Dur::from_millis(1)));
    let ns = attach_host(&mut net, &bn, 1, server, LinkParams::delay_only(Dur::from_millis(1)));
    // The middlebox "restarts" (loses every translation) mid-transfer.
    schedule_nat_wipe(&mut net, nat, t(2_000));
    net.poll_all();

    let payloads = vec![mh_pattern(0, out.payload)];
    let mut got = vec![Vec::new()];
    let mut sconns: Vec<Option<H::ConnId>> = vec![None];
    pump::<H>(&mut net, &[(nc, conn)], &payloads, ns, &mut got, &mut sconns);

    out.delivered = attribute(&got, &payloads, &mut out.violations);
    out.complete = out.delivered[0] >= out.payload;
    out.client_errors = vec![stack_mut::<H>(&mut net, nc).conn_error(conn)];
    let wipes = net.node_mut::<NatBox>(nat).stats.table_wipes;
    if out.complete {
        out.violations.push("nat_restart: transfer survived a table wipe".into());
    }
    if out.client_errors[0].is_none() {
        out.violations.push(
            "nat_restart: no typed abort after the NAT dropped the flow".into(),
        );
    }
    if wipes != 1 {
        out.violations.push(format!("nat_restart: expected 1 wipe, saw {wipes}"));
    }

    // Reconnect-or-typed-abort, second half: a *fresh* connection through
    // the restarted NAT must establish and deliver.
    let now = net.now();
    let re_payload = mh_pattern(7, 10_000);
    let reconnect = stack_mut::<H>(&mut net, nc).try_connect(
        now,
        5001,
        Endpoint::new(saddr, MH_SERVER_PORT),
    );
    let mut re_ok = false;
    if let Ok(rconn) = reconnect {
        net.poll_all();
        let mut re_sent = 0usize;
        let mut re_got: Vec<u8> = Vec::new();
        let mut re_sconn: Option<H::ConnId> = None;
        let deadline = net.now() + Dur::from_secs(30);
        while net.now() < deadline && re_got.len() < re_payload.len() {
            let step = net.now() + TICK;
            net.run_until(step);
            if re_sent < re_payload.len() {
                re_sent += stack_mut::<H>(&mut net, nc).send(rconn, &re_payload[re_sent..]);
            }
            {
                let st = stack_mut::<H>(&mut net, ns);
                if re_sconn.is_none() {
                    re_sconn = st
                        .established()
                        .into_iter()
                        .find(|id| !sconns.contains(&Some(*id)));
                }
                if let Some(id) = re_sconn {
                    re_got.extend(st.recv(id));
                }
            }
            net.poll_all();
        }
        re_ok = re_got == re_payload;
    }
    out.reconnect_ok = Some(re_ok);
    if !re_ok {
        out.violations.push("nat_restart: post-abort reconnect failed".into());
    }
    out
}

fn fanin_run<H: ConformStack>(seed: u64) -> MhOut {
    let n_clients = 3;
    let mut out = base_out(MhScenario::FaninBottleneck, H::KIND, seed, 150_000, n_clients);
    let mut net = SimNet::new(seed);
    let bn: BoxNet = topo_fanin().build(&mut net, peek_for(H::KIND));
    let saddr = box_host_addr(3);
    let mut server = H::mk(saddr);
    server.listen(MH_SERVER_PORT);

    let mut clients = Vec::new();
    for i in 0..n_clients {
        let addr = box_host_addr(i);
        let mut c = H::mk(addr);
        let conn = c
            .try_connect(Time::ZERO, 5000 + i as u16, Endpoint::new(saddr, MH_SERVER_PORT))
            .expect("client connect");
        let id = attach_host(&mut net, &bn, i, c, LinkParams::delay_only(Dur::from_millis(1)));
        clients.push((id, conn));
    }
    let ns = attach_host(&mut net, &bn, 3, server, LinkParams::delay_only(Dur::from_millis(1)));
    net.poll_all();

    let payloads: Vec<Vec<u8>> = (0..n_clients).map(|i| mh_pattern(i, out.payload)).collect();
    let mut got = vec![Vec::new(); n_clients];
    let mut sconns: Vec<Option<H::ConnId>> = vec![None; n_clients];
    pump::<H>(&mut net, &clients, &payloads, ns, &mut got, &mut sconns);

    out.delivered = attribute(&got, &payloads, &mut out.violations);
    out.complete = out.delivered.iter().all(|&d| d >= out.payload);
    out.client_errors = clients
        .iter()
        .map(|&(node, conn)| stack_mut::<H>(&mut net, node).conn_error(conn))
        .collect();
    if !out.complete {
        out.violations.push(format!(
            "fanin: streams delivered {:?} of {} each",
            out.delivered, out.payload
        ));
    }
    for (i, e) in out.client_errors.iter().enumerate() {
        if let Some(e) = e {
            out.violations.push(format!("fanin: client {i} aborted {e:?}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reroute_mid_transfer_agrees_across_stacks() {
        let (sub, mono, d) = diff_multihop(MhScenario::RerouteMidTransfer, 1);
        assert!(sub.ok(), "sub violations: {:?}", sub.violations);
        assert!(mono.ok(), "mono violations: {:?}", mono.violations);
        assert!(d.is_empty(), "divergences: {d:?}");
    }

    #[test]
    fn nat_restart_agrees_across_stacks() {
        let (sub, mono, d) = diff_multihop(MhScenario::NatRestart, 1);
        assert!(sub.ok(), "sub violations: {:?}", sub.violations);
        assert!(mono.ok(), "mono violations: {:?}", mono.violations);
        assert!(d.is_empty(), "divergences: {d:?}");
    }

    #[test]
    fn fanin_bottleneck_agrees_across_stacks() {
        let (sub, mono, d) = diff_multihop(MhScenario::FaninBottleneck, 1);
        assert!(sub.ok(), "sub violations: {:?}", sub.violations);
        assert!(mono.ok(), "mono violations: {:?}", mono.violations);
        assert!(d.is_empty(), "divergences: {d:?}");
    }
}
