//! The endpoint-local RFC-793/5961 conformance oracle.
//!
//! Judges one endpoint's captured trace — every transmitted segment and
//! every obligation incurred by a received one — against the standard's
//! state machine and sequence arithmetic. The RFC 5961 response classes
//! come from [`slverify::relation`], the *same* transition relation the
//! bounded model checker explores: the oracle is the runtime consumer,
//! the `RstAttack` model the verification-time consumer, and the
//! cross-check test in `tests/cross_check.rs` pins them together.
//!
//! The oracle checks **safety** (nothing on the wire that RFC 793/5961
//! forbids, every mandated response eventually produced); **progress
//! equivalence** (did both stacks deliver the same bytes?) is the
//! differential layer's job (`diff`), because progress at the observation
//! instant legitimately depends on RTO schedules the RFCs leave open.

use crate::driver::EndpointOut;
use netsim::{TapDir, TransportError};
use slverify::{classify_seq, rfc5961_response, RespClass, SegClass};

/// Merged, sorted coverage of received sequence space.
#[derive(Default)]
struct Coverage {
    ranges: Vec<(u32, u32)>,
}

impl Coverage {
    fn insert(&mut self, start: u32, end: u32) {
        if start >= end {
            return;
        }
        self.ranges.push((start, end));
        self.ranges.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(self.ranges.len());
        for &(s, e) in &self.ranges {
            match merged.last_mut() {
                Some((_, le)) if s <= *le => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        self.ranges = merged;
    }

    /// Contiguous frontier from 0 — the endpoint's justified `rcv_nxt`.
    fn frontier(&self) -> u32 {
        match self.ranges.first() {
            Some(&(0, e)) => e,
            _ => 0,
        }
    }
}

/// Slack for zero-window probes: a sender may poke one byte past the
/// advertised limit to provoke a window update (RFC 9293 §3.8.6.1).
const PROBE_SLACK: u64 = 1;

/// Judge one endpoint's run. `active` is true for the connecting side
/// (and for both sides of a simultaneous open). Returns violations;
/// empty means conformant.
pub fn check_endpoint(ep: &EndpointOut, active: bool, label: &str) -> Vec<String> {
    let mut v: Vec<String> = Vec::new();
    let mut sent_syn = false;
    let mut got_syn = false;
    // Highest sequence-space end we have transmitted (SYN = [0,1)).
    let mut tx_high: u32 = 0;
    let mut cov = Coverage::default();
    let mut max_ack_rx: u32 = 0; // peer's highest ack of our data
    let mut peer_limit: u64 = 0; // max(rel_ack + wnd) over received acks
    let mut our_wnd: u32 = 65_535; // last window we advertised
    let mut challenge_pending: Option<usize> = None;
    let mut die_required = false;
    let mut legit_kill = false;
    let mut fin_rx_end: Option<u32> = None;

    let mut flag = |msg: String| v.push(format!("{label}: {msg}"));

    for (i, s) in ep.abs.iter().enumerate() {
        let synced = sent_syn && got_syn && max_ack_rx >= 1 && cov.frontier() >= 1;
        match s.dir {
            TapDir::Tx => {
                if die_required && !s.rst {
                    flag(format!(
                        "frame {i}: transmission after an exact-sequence RST required teardown ({})",
                        s.flags_label()
                    ));
                }
                if s.rst {
                    let provoked = ep.aborted_by_app
                        || ep.closed_by_app
                        || die_required
                        || !synced;
                    if !provoked {
                        flag(format!("frame {i}: RST from a healthy established endpoint"));
                    }
                } else if s.syn {
                    if s.rel_known && s.rel_seq != 0 {
                        flag(format!("frame {i}: SYN at nonzero relative seq {}", s.rel_seq));
                    }
                    if !active && !got_syn {
                        flag(format!("frame {i}: passive endpoint originated a SYN"));
                    }
                    if got_syn && !s.ack {
                        flag(format!("frame {i}: SYN reply without acknowledging peer's SYN"));
                    }
                    sent_syn = true;
                    tx_high = tx_high.max(s.seq_len);
                } else {
                    if s.len > 0 {
                        if !(got_syn && max_ack_rx >= 1) {
                            flag(format!("frame {i}: payload before the handshake completed"));
                        }
                        if s.rel_known {
                            if s.rel_seq < 1 || s.rel_seq > tx_high {
                                flag(format!(
                                    "frame {i}: sequence gap: data at rel {} with send high-water {}",
                                    s.rel_seq, tx_high
                                ));
                            }
                            let end = s.rel_seq as u64 + s.len as u64;
                            if peer_limit > 0 && end > peer_limit + PROBE_SLACK {
                                flag(format!(
                                    "frame {i}: receive-window overrun: data to rel {} past limit {}",
                                    end, peer_limit
                                ));
                            }
                        }
                    }
                    if s.fin && !(ep.closed_by_app || ep.aborted_by_app) {
                        flag(format!("frame {i}: FIN without an application close"));
                    }
                    if s.rel_known {
                        tx_high = tx_high.max(s.rel_seq.wrapping_add(s.seq_len));
                    }
                }
                if s.ack && s.rel_known {
                    let frontier = cov.frontier();
                    if s.rel_ack > frontier {
                        flag(format!(
                            "frame {i}: acked rel {} beyond contiguously received {}",
                            s.rel_ack, frontier
                        ));
                    }
                    if challenge_pending.is_some() && s.pure_ack() && s.rel_ack == frontier {
                        challenge_pending = None;
                    }
                }
                our_wnd = s.wnd.max(1);
            }
            TapDir::Rx => {
                if s.rst {
                    if synced && s.rel_known {
                        let verdict = classify_seq(cov.frontier(), s.rel_seq, our_wnd);
                        match rfc5961_response(true, SegClass::Rst, verdict) {
                            RespClass::Reset => {
                                die_required = true;
                                legit_kill = true;
                            }
                            RespClass::ChallengeAck => {
                                challenge_pending.get_or_insert(i);
                            }
                            RespClass::Drop | RespClass::Deliver => {}
                        }
                    } else {
                        // Pre-synchronization RST (e.g. a stateless
                        // refusal) legitimately kills the attempt.
                        legit_kill = true;
                    }
                } else if s.syn && synced {
                    // RFC 5961 §4: SYN on a synchronized connection —
                    // challenge ACK, never a silent new handshake. (A
                    // retransmitted SYN-ACK lands here too; the re-ack it
                    // elicits has exactly the challenge shape.)
                    challenge_pending.get_or_insert(i);
                    got_syn = true;
                } else {
                    if s.syn {
                        got_syn = true;
                    }
                    if s.rel_known {
                        cov.insert(s.rel_seq, s.rel_seq.wrapping_add(s.seq_len));
                        if s.fin {
                            fin_rx_end = Some(s.rel_seq.wrapping_add(s.seq_len));
                        }
                    }
                }
                if s.ack && s.rel_known {
                    max_ack_rx = max_ack_rx.max(s.rel_ack);
                    peer_limit = peer_limit.max(s.rel_ack as u64 + s.wnd as u64);
                }
            }
        }
    }

    // --- end-of-trace obligations ------------------------------------
    if let Some(at) = challenge_pending {
        v.push(format!(
            "{label}: challenge-ACK obligation from frame {at} never discharged"
        ));
    }
    if die_required && !ep.obs.closed {
        v.push(format!(
            "{label}: survived an exact-sequence RST (obs {:?})",
            ep.obs
        ));
    }
    if ep.obs.error == Some(TransportError::Reset) && !legit_kill && !ep.aborted_by_app {
        v.push(format!(
            "{label}: Reset error without any legitimate RST on the wire"
        ));
    }
    if let Some(end) = fin_rx_end {
        let fin_consumed = cov.frontier() >= end;
        if fin_consumed
            && !die_required
            && !ep.aborted_by_app
            && !ep.closed_by_app
            && !ep.obs.closed
            && ep.obs.error.is_none()
            && ep.conn_known
            && !ep.obs.peer_closed
        {
            v.push(format!("{label}: in-order FIN received but peer_closed never surfaced"));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::absseg::AbsSeg;
    use netsim::TapDir;

    fn seg(dir: TapDir, flags: (bool, bool, bool, bool), rel_seq: u32, seq_len: u32, len: u32, rel_ack: u32) -> AbsSeg {
        let (syn, fin, rst, ack) = flags;
        AbsSeg {
            at_ns: 0,
            dir,
            syn,
            fin,
            rst,
            ack,
            rel_seq,
            seq_len,
            len,
            rel_ack,
            wnd: 65_535,
            rel_known: true,
        }
    }

    fn handshake() -> Vec<AbsSeg> {
        vec![
            seg(TapDir::Tx, (true, false, false, false), 0, 1, 0, 0),
            seg(TapDir::Rx, (true, false, false, true), 0, 1, 0, 1),
            seg(TapDir::Tx, (false, false, false, true), 1, 0, 0, 1),
        ]
    }

    fn ep(abs: Vec<AbsSeg>) -> EndpointOut {
        EndpointOut { abs, conn_known: true, ..EndpointOut::default() }
    }

    #[test]
    fn clean_handshake_passes() {
        assert!(check_endpoint(&ep(handshake()), true, "t").is_empty());
    }

    #[test]
    fn ack_beyond_coverage_is_flagged() {
        let mut abs = handshake();
        abs.push(seg(TapDir::Tx, (false, false, false, true), 1, 0, 0, 500));
        let viol = check_endpoint(&ep(abs), true, "t");
        assert!(
            viol.iter().any(|m| m.contains("beyond contiguously received")),
            "{viol:?}"
        );
    }

    #[test]
    fn undischarged_challenge_is_flagged() {
        let mut abs = handshake();
        // In-window RST arrives; no challenge ACK ever goes out.
        abs.push(seg(TapDir::Rx, (false, false, true, false), 100, 0, 0, 0));
        let viol = check_endpoint(&ep(abs), true, "t");
        assert!(viol.iter().any(|m| m.contains("challenge-ACK")), "{viol:?}");
    }

    #[test]
    fn challenge_ack_discharges_obligation() {
        let mut abs = handshake();
        abs.push(seg(TapDir::Rx, (false, false, true, false), 100, 0, 0, 0));
        abs.push(seg(TapDir::Tx, (false, false, false, true), 1, 0, 0, 1));
        assert!(check_endpoint(&ep(abs), true, "t").is_empty());
    }

    #[test]
    fn sequence_gap_is_flagged() {
        let mut abs = handshake();
        abs.push(seg(TapDir::Tx, (false, false, false, true), 50, 10, 10, 1));
        let viol = check_endpoint(&ep(abs), true, "t");
        assert!(viol.iter().any(|m| m.contains("sequence gap")), "{viol:?}");
    }
}
