//! The scenario DSL and the conformance corpus.
//!
//! A [`Scenario`] is a deterministic script of application-level and
//! network-level events, replayed identically against both stacks (each
//! talking its own wire format to a same-kind peer). Everything is plain
//! data — `Clone + Eq` — so the shrinker can slice event lists and compare
//! scenarios structurally.

/// Which endpoint an event applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    Client,
    Server,
}

impl Side {
    pub fn label(self) -> &'static str {
        match self {
            Side::Client => "client",
            Side::Server => "server",
        }
    }
}

/// Sequence-number placement for an injected RST, relative to the
/// victim's `rcv_nxt` — the RFC 5961 trichotomy, aimed on purpose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RstOff {
    /// Exactly `rcv_nxt`: must tear the connection down.
    Exact,
    /// Inside the receive window but not exact: must elicit a challenge
    /// ACK, never a teardown.
    InWindow,
    /// Far outside the window: must be dropped silently.
    Outside,
}

/// One scripted event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ev {
    /// Client opens to the server (and the server simultaneously opens
    /// back when [`Scenario::server_connects`] is set).
    Connect,
    /// Queue `len` bytes of deterministic payload on one side.
    Send { side: Side, len: u32 },
    /// Drain readable bytes into the side's delivered stream.
    Recv { side: Side },
    /// Graceful close (FIN).
    Close { side: Side },
    /// Hard abort (RST).
    Abort { side: Side },
    /// Forge an off-path RST at the victim, aimed by [`RstOff`] using the
    /// victim stack's own `expected_wire_seq` introspection.
    InjectRst { to: Side, off: RstOff },
    /// Forge a duplicate SYN for the established 4-tuple at the victim
    /// (RFC 5961 §4: must elicit a challenge ACK, not a new handshake).
    InjectSyn { to: Side },
    /// Take the (single) link down / bring it back.
    LinkDown,
    LinkUp,
}

/// Link impairment, as plain comparable data (mapped to a
/// `netsim::FaultProfile` by the driver).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    None,
    /// Uniform loss, in permille.
    LossPm(u32),
    /// Gilbert-Elliott bursty loss.
    Burst,
    /// Reordering (permille, fixed extra delay).
    ReorderPm(u32),
    /// Duplication, in permille.
    DupPm(u32),
}

/// The link both runs use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkSpec {
    pub delay_ms: u64,
    pub fault: FaultKind,
}

impl LinkSpec {
    pub const fn clean(delay_ms: u64) -> LinkSpec {
        LinkSpec { delay_ms, fault: FaultKind::None }
    }
}

/// A full conformance scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    pub name: &'static str,
    /// Server listens on port 80.
    pub listen: bool,
    /// Server also actively opens to the client (simultaneous open).
    pub server_connects: bool,
    pub link: LinkSpec,
    /// `(at_ms, event)`, non-decreasing times.
    pub events: Vec<(u64, Ev)>,
    /// Settle time after the last event before final observation.
    pub quiet_ms: u64,
}

impl Scenario {
    pub fn new(name: &'static str, events: Vec<(u64, Ev)>) -> Scenario {
        Scenario {
            name,
            listen: true,
            server_connects: false,
            link: LinkSpec::clean(5),
            events,
            quiet_ms: 4_000,
        }
    }

    /// Virtual end time of the script (last event time).
    pub fn end_ms(&self) -> u64 {
        self.events.last().map(|(t, _)| *t).unwrap_or(0)
    }
}

use Ev::*;
use RstOff::*;
use Side::{Client, Server};

/// The conformance corpus: every scenario is run against both stacks and
/// at least three seeds by `exp_conform` (and a subset by the golden
/// tests).
pub fn corpus() -> Vec<Scenario> {
    let mut v = vec![Scenario::new("handshake_only", vec![(0, Connect)])];

    // --- handshake and teardown shapes -------------------------------
    v.push(Scenario::new(
        "handshake_client_close",
        vec![(0, Connect), (200, Close { side: Client })],
    ));
    v.push(Scenario::new(
        "handshake_server_close",
        vec![(0, Connect), (200, Close { side: Server })],
    ));
    v.push(Scenario::new(
        "simultaneous_close",
        vec![(0, Connect), (200, Close { side: Client }), (200, Close { side: Server })],
    ));
    v.push(Scenario {
        name: "simultaneous_open",
        listen: false,
        server_connects: true,
        link: LinkSpec::clean(5),
        events: vec![(0, Connect), (400, Close { side: Client })],
        quiet_ms: 4_000,
    });
    v.push(Scenario {
        name: "connect_refused",
        listen: false,
        server_connects: false,
        link: LinkSpec::clean(5),
        events: vec![(0, Connect)],
        quiet_ms: 4_000,
    });
    v.push(Scenario {
        // SYN lost in a link outage; the client must retransmit it once
        // the link returns.
        name: "syn_retransmit",
        listen: true,
        server_connects: false,
        link: LinkSpec::clean(5),
        events: vec![(0, LinkDown), (0, Connect), (700, LinkUp)],
        quiet_ms: 6_000,
    });
    v.push(Scenario {
        // The link never comes back: the handshake must fail cleanly.
        name: "handshake_timeout",
        listen: true,
        server_connects: false,
        link: LinkSpec::clean(5),
        events: vec![(0, LinkDown), (0, Connect)],
        quiet_ms: 90_000,
    });

    // --- data transfer -----------------------------------------------
    v.push(Scenario::new(
        "data_c2s_small",
        vec![
            (0, Connect),
            (200, Send { side: Client, len: 1_000 }),
            (1_000, Recv { side: Server }),
            (1_200, Close { side: Client }),
        ],
    ));
    v.push(Scenario::new(
        "data_s2c_small",
        vec![
            (0, Connect),
            (200, Send { side: Server, len: 1_000 }),
            (1_000, Recv { side: Client }),
            (1_200, Close { side: Server }),
        ],
    ));
    v.push(Scenario::new(
        "data_bidirectional",
        vec![
            (0, Connect),
            (200, Send { side: Client, len: 2_000 }),
            (200, Send { side: Server, len: 3_000 }),
            (1_500, Recv { side: Client }),
            (1_500, Recv { side: Server }),
            (1_700, Close { side: Client }),
            (1_900, Close { side: Server }),
        ],
    ));
    v.push(Scenario::new(
        "data_large_transfer",
        vec![
            (0, Connect),
            (200, Send { side: Client, len: 200_000 }),
            (1_000, Recv { side: Server }),
            (2_000, Recv { side: Server }),
            (4_000, Recv { side: Server }),
            (8_000, Recv { side: Server }),
            (12_000, Recv { side: Server }),
            (14_000, Close { side: Client }),
        ],
    ));
    v.push(Scenario::new(
        "data_interleaved_sends",
        vec![
            (0, Connect),
            (200, Send { side: Client, len: 500 }),
            (400, Send { side: Server, len: 700 }),
            (600, Send { side: Client, len: 900 }),
            (800, Recv { side: Server }),
            (900, Send { side: Server, len: 300 }),
            (1_500, Recv { side: Client }),
            (1_500, Recv { side: Server }),
            (1_800, Close { side: Server }),
        ],
    ));
    v.push(Scenario::new(
        // FIN behind queued data: the peer must still see every byte.
        "close_with_pending_data",
        vec![
            (0, Connect),
            (200, Send { side: Client, len: 30_000 }),
            (210, Close { side: Client }),
            (3_000, Recv { side: Server }),
        ],
    ));
    v.push(Scenario::new(
        // Half-close: server keeps sending after the client's FIN.
        "half_close_server_sends",
        vec![
            (0, Connect),
            (200, Close { side: Client }),
            (400, Send { side: Server, len: 2_000 }),
            (1_500, Recv { side: Client }),
            (1_700, Close { side: Server }),
        ],
    ));

    // --- aborts -------------------------------------------------------
    v.push(Scenario::new(
        "client_abort",
        vec![(0, Connect), (300, Abort { side: Client })],
    ));
    v.push(Scenario::new(
        "server_abort_mid_transfer",
        vec![
            (0, Connect),
            (200, Send { side: Client, len: 50_000 }),
            (400, Abort { side: Server }),
        ],
    ));

    // --- RFC 5961 injections -----------------------------------------
    v.push(Scenario::new(
        "rst_exact_client",
        vec![(0, Connect), (300, InjectRst { to: Client, off: Exact })],
    ));
    v.push(Scenario::new(
        "rst_exact_server",
        vec![(0, Connect), (300, InjectRst { to: Server, off: Exact })],
    ));
    v.push(Scenario::new(
        "rst_in_window_client",
        vec![
            (0, Connect),
            (300, InjectRst { to: Client, off: InWindow }),
            (600, Send { side: Client, len: 1_000 }),
            (1_500, Recv { side: Server }),
        ],
    ));
    v.push(Scenario::new(
        "rst_in_window_server",
        vec![
            (0, Connect),
            (300, InjectRst { to: Server, off: InWindow }),
            (600, Send { side: Server, len: 1_000 }),
            (1_500, Recv { side: Client }),
        ],
    ));
    v.push(Scenario::new(
        "rst_blind_client",
        vec![
            (0, Connect),
            (300, InjectRst { to: Client, off: Outside }),
            (600, Send { side: Client, len: 1_000 }),
            (1_500, Recv { side: Server }),
        ],
    ));
    v.push(Scenario::new(
        "syn_dup_established",
        vec![
            (0, Connect),
            (300, InjectSyn { to: Server }),
            (600, Send { side: Client, len: 500 }),
            (1_500, Recv { side: Server }),
        ],
    ));
    v.push(Scenario::new(
        "rst_during_transfer",
        vec![
            (0, Connect),
            (200, Send { side: Client, len: 20_000 }),
            (400, InjectRst { to: Server, off: InWindow }),
            (3_000, Recv { side: Server }),
            (3_200, Close { side: Client }),
        ],
    ));

    // --- impaired links (netsim fault machinery) ---------------------
    let lossy = |name, pm| Scenario {
        name,
        listen: true,
        server_connects: false,
        link: LinkSpec { delay_ms: 5, fault: FaultKind::LossPm(pm) },
        events: vec![
            (0, Connect),
            (200, Send { side: Client, len: 20_000 }),
            (5_000, Recv { side: Server }),
            (9_000, Recv { side: Server }),
            (9_500, Close { side: Client }),
        ],
        quiet_ms: 20_000,
    };
    v.push(lossy("loss_2pct_transfer", 20));
    v.push(lossy("loss_10pct_transfer", 100));
    v.push(Scenario {
        name: "burst_loss_transfer",
        listen: true,
        server_connects: false,
        link: LinkSpec { delay_ms: 5, fault: FaultKind::Burst },
        events: vec![
            (0, Connect),
            (200, Send { side: Client, len: 20_000 }),
            (6_000, Recv { side: Server }),
            (9_500, Close { side: Client }),
        ],
        quiet_ms: 20_000,
    });
    v.push(Scenario {
        name: "reorder_transfer",
        listen: true,
        server_connects: false,
        link: LinkSpec { delay_ms: 5, fault: FaultKind::ReorderPm(150) },
        events: vec![
            (0, Connect),
            (200, Send { side: Client, len: 20_000 }),
            (5_000, Recv { side: Server }),
            (5_500, Close { side: Client }),
        ],
        quiet_ms: 20_000,
    });
    v.push(Scenario {
        name: "duplicate_transfer",
        listen: true,
        server_connects: false,
        link: LinkSpec { delay_ms: 5, fault: FaultKind::DupPm(100) },
        events: vec![
            (0, Connect),
            (200, Send { side: Client, len: 20_000 }),
            (5_000, Recv { side: Server }),
            (5_500, Close { side: Client }),
        ],
        quiet_ms: 20_000,
    });
    v.push(Scenario {
        // Mid-transfer outage long enough to force RTO backoff, then
        // recovery.
        name: "linkdown_retransmit",
        listen: true,
        server_connects: false,
        link: LinkSpec::clean(5),
        events: vec![
            (0, Connect),
            (200, Send { side: Client, len: 10_000 }),
            (250, LinkDown),
            (2_250, LinkUp),
            (8_000, Recv { side: Server }),
            (8_500, Close { side: Client }),
        ],
        quiet_ms: 20_000,
    });

    v.push(Scenario {
        // Enough uniform loss across a multi-window transfer that triple
        // duplicate acks fire: both stacks must fast-retransmit, handle
        // partial acks, and exit recovery by deflation (E19 loss-recovery
        // conformance; the CC module is the shared slcc NewReno).
        name: "fast_retransmit_recovery",
        listen: true,
        server_connects: false,
        link: LinkSpec { delay_ms: 10, fault: FaultKind::LossPm(30) },
        events: vec![
            (0, Connect),
            (200, Send { side: Client, len: 60_000 }),
            (4_000, Recv { side: Server }),
            (8_000, Recv { side: Server }),
            (12_000, Recv { side: Server }),
            (12_500, Close { side: Client }),
        ],
        quiet_ms: 20_000,
    });
    v.push(Scenario {
        // An outage long enough for RTO backoff, then the transfer
        // *continues*: the controller must come back from its timeout
        // collapse (slow-start restart) and carry a second burst, not
        // stall at the floor (E19).
        name: "rto_then_recover",
        listen: true,
        server_connects: false,
        link: LinkSpec::clean(5),
        events: vec![
            (0, Connect),
            (200, Send { side: Client, len: 20_000 }),
            (300, LinkDown),
            (4_300, LinkUp),
            (10_000, Recv { side: Server }),
            (10_500, Send { side: Client, len: 20_000 }),
            (16_000, Recv { side: Server }),
            (16_500, Close { side: Client }),
        ],
        quiet_ms: 20_000,
    });

    // --- flow control -------------------------------------------------
    v.push(Scenario::new(
        // Receiver never drains: the sender must stall at the window,
        // not overrun it.
        "zero_window_stall",
        vec![(0, Connect), (200, Send { side: Client, len: 400_000 }), (6_000, Recv { side: Server })],
    ));
    v.push(Scenario::new(
        // Close while the peer's window is closed; the FIN has to wait
        // for the window to reopen.
        "zero_window_then_close",
        vec![
            (0, Connect),
            (200, Send { side: Client, len: 400_000 }),
            (4_000, Close { side: Client }),
            (6_000, Recv { side: Server }),
            (7_000, Recv { side: Server }),
            (9_000, Recv { side: Server }),
        ],
    ));

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_large_and_well_formed() {
        let c = corpus();
        assert!(c.len() >= 25, "corpus has {} scenarios, need >= 25", c.len());
        let mut names = std::collections::BTreeSet::new();
        for sc in &c {
            assert!(names.insert(sc.name), "duplicate scenario name {}", sc.name);
            let mut last = 0;
            for (t, _) in &sc.events {
                assert!(*t >= last, "{}: event times must be non-decreasing", sc.name);
                last = *t;
            }
        }
    }
}
