//! Divergence shrinking: reduce a failing scenario's event script to a
//! 1-minimal reproducer.
//!
//! Greedy delta debugging over the event list: repeatedly drop any single
//! event whose removal still reproduces the *same* divergence code, until
//! no single removal does. The preserved code — not just "any failure" —
//! keeps the shrinker from wandering onto a different bug.

use crate::diff::{check_scenario_mutated, Report};
use crate::driver::{Kind, Mutation};
use crate::scenario::Scenario;

/// A minimal reproducer for one divergence.
#[derive(Debug)]
pub struct Shrunk {
    /// The reduced scenario (same name/link/flags, fewer events).
    pub scenario: Scenario,
    /// The divergence code preserved through every reduction step.
    pub code: String,
    /// The report for the reduced scenario.
    pub report: Report,
    /// Event counts before and after.
    pub from_events: usize,
    pub to_events: usize,
}

fn has_code(rep: &Report, code: &str) -> bool {
    rep.unexplained.iter().any(|d| d.code == code)
}

/// Shrink `sc` (run with `mutation` on `mut_kind`'s client) to a minimal
/// script still showing its first divergence. Returns `None` when the
/// scenario has no unexplained divergence to begin with.
pub fn shrink(sc: &Scenario, seed: u64, mut_kind: Kind, mutation: Mutation) -> Option<Shrunk> {
    let first = check_scenario_mutated(sc, seed, mut_kind, mutation);
    let code = first.unexplained.first()?.code.clone();
    let from_events = sc.events.len();
    let mut cur = sc.clone();
    let mut cur_rep = first;
    loop {
        let mut progressed = false;
        let mut i = 0;
        while i < cur.events.len() {
            let mut cand = cur.clone();
            cand.events.remove(i);
            let rep = check_scenario_mutated(&cand, seed, mut_kind, mutation);
            if has_code(&rep, &code) {
                cur = cand;
                cur_rep = rep;
                progressed = true;
                // Same index now holds the next event; retry it.
            } else {
                i += 1;
            }
        }
        if !progressed {
            break;
        }
    }
    let to_events = cur.events.len();
    Some(Shrunk { scenario: cur, code, report: cur_rep, from_events, to_events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{corpus, Ev, Side};

    #[test]
    fn clean_scenario_does_not_shrink() {
        let sc = corpus().into_iter().find(|s| s.name == "handshake_only").unwrap();
        assert!(shrink(&sc, 1, Kind::Sub, Mutation::None).is_none());
    }

    #[test]
    fn shrunk_script_is_one_minimal() {
        // A busy scenario with an acks-into-the-future client must shrink
        // to a script where every remaining event is necessary.
        let sc = corpus().into_iter().find(|s| s.name == "data_bidirectional").unwrap();
        let shrunk = shrink(&sc, 1, Kind::Sub, Mutation::AckFuture { delta: 9_000 })
            .expect("mutation must diverge");
        assert!(shrunk.to_events <= shrunk.from_events);
        // The mutation corrupts acks as soon as any packet flows, so the
        // reproducer needs the connect and nothing obviously redundant
        // like a second data exchange.
        assert!(
            shrunk.scenario.events.iter().any(|(_, e)| matches!(e, Ev::Connect)),
            "reproducer must still connect: {:?}",
            shrunk.scenario.events
        );
        assert!(
            !shrunk.scenario.events.iter().any(|(_, e)| matches!(
                e,
                Ev::Send { side: Side::Server, .. }
            )),
            "server sends are irrelevant to a client ack bug: {:?}",
            shrunk.scenario.events
        );
    }
}
