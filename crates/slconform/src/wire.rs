//! Per-format wire knowledge: decode either stack's frames into one
//! segment shape, and forge byte-precise injections.
//!
//! The two stacks speak different wire formats (the sublayered native
//! header vs RFC 793), so the harness normalizes both into [`RawSeg`] —
//! flags, sequence span, cumulative ack, window — before any comparison
//! or oracle judgment. Forgery mirrors `bench::attack`'s codecs: an RST
//! or duplicate SYN is built in the victim's own format with an honest
//! window field, so only the aimed field is adversarial.

use sublayer_core::wire::{CmFlags, CmHeader, DmHeader, OsrHeader, Packet, RdHeader};
use tcp_mono::wire::{Endpoint, Segment, RST, SYN};

/// Which wire format a run speaks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Wire {
    Mono,
    Sub,
}

/// One decoded frame, format-neutral. Sequence numbers are still in wire
/// space; `absseg` rebases them against the learned ISNs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawSeg {
    pub syn: bool,
    pub fin: bool,
    pub rst: bool,
    /// Carries a meaningful cumulative ack.
    pub ack: bool,
    /// First wire sequence number this segment occupies (the ISN itself
    /// for a SYN).
    pub seq: u32,
    /// Sequence space consumed (payload + SYN + FIN — both formats give
    /// SYN and FIN one sequence number each).
    pub seq_len: u32,
    /// Payload bytes.
    pub len: u32,
    /// Cumulative ack (next expected wire sequence), valid when `ack`.
    pub ack_no: u32,
    /// Advertised receive window.
    pub wnd: u32,
}

impl Wire {
    pub fn label(self) -> &'static str {
        match self {
            Wire::Mono => "mono",
            Wire::Sub => "sub",
        }
    }

    /// Decode one frame; `None` for frames this format cannot parse.
    pub fn decode(self, frame: &[u8]) -> Option<RawSeg> {
        match self {
            Wire::Mono => {
                let s = Segment::decode(frame).ok()?;
                Some(RawSeg {
                    syn: s.syn(),
                    fin: s.fin(),
                    rst: s.rst(),
                    ack: s.ack_flag(),
                    seq: s.seq,
                    seq_len: s.seq_len(),
                    len: s.payload.len() as u32,
                    ack_no: s.ack,
                    wnd: s.wnd as u32,
                })
            }
            Wire::Sub => {
                let p = Packet::decode(frame).ok()?;
                let syn = p.cm.flags.syn;
                // RD acks ride `rd.ack`; pure handshake acks ride the CM
                // subheader as `ack_isn` (acknowledging the peer's ISN,
                // i.e. next expected = isn + 1).
                let (ack, ack_no) = if p.rd.has_ack {
                    (true, p.rd.ack)
                } else if p.cm.flags.cm_ack {
                    (true, p.cm.ack_isn.wrapping_add(1))
                } else {
                    (false, 0)
                };
                // Calibrated against live traces: the CM FIN consumes one
                // RD sequence number (the peer acks fin_seq + 1) even
                // though the flag rides the CM subheader.
                Some(RawSeg {
                    syn,
                    fin: p.cm.flags.fin,
                    rst: p.cm.flags.rst,
                    ack,
                    seq: if syn { p.cm.isn } else { p.rd.seq },
                    seq_len: p.payload.len() as u32 + syn as u32 + p.cm.flags.fin as u32,
                    len: p.payload.len() as u32,
                    ack_no,
                    wnd: p.osr.rcv_wnd as u32,
                })
            }
        }
    }

    /// Forge an off-path RST claiming to come from `src`, aimed at wire
    /// sequence `seq`.
    pub fn forge_rst(self, src: Endpoint, dst: Endpoint, seq: u32) -> Vec<u8> {
        match self {
            Wire::Mono => Segment {
                src,
                dst,
                seq,
                ack: 0,
                flags: RST,
                wnd: 0,
                mss: None,
                payload: Vec::new(),
            }
            .encode(),
            Wire::Sub => {
                let mut p = sub_base(src, dst);
                p.cm.flags = CmFlags { rst: true, ..CmFlags::default() };
                p.rd.seq = seq;
                p.encode()
            }
        }
    }

    /// Forge a duplicate SYN for an already-established tuple.
    pub fn forge_syn(self, src: Endpoint, dst: Endpoint, isn: u32) -> Vec<u8> {
        match self {
            Wire::Mono => Segment {
                src,
                dst,
                seq: isn,
                ack: 0,
                flags: SYN,
                wnd: u16::MAX,
                mss: Some(1400),
                payload: Vec::new(),
            }
            .encode(),
            Wire::Sub => {
                let mut p = sub_base(src, dst);
                p.cm.flags = CmFlags { syn: true, ..CmFlags::default() };
                p.cm.isn = isn;
                p.encode()
            }
        }
    }

    /// Rewrite a frame's cumulative ack forward by `delta` — the seeded
    /// mutation for the harness's own mutation tests. `None` if the frame
    /// carries no ack to corrupt.
    pub fn bump_ack(self, frame: &[u8], delta: u32) -> Option<Vec<u8>> {
        match self {
            Wire::Mono => {
                let mut s = Segment::decode(frame).ok()?;
                if !s.ack_flag() {
                    return None;
                }
                s.ack = s.ack.wrapping_add(delta);
                Some(s.encode())
            }
            Wire::Sub => {
                let mut p = Packet::decode(frame).ok()?;
                if !p.rd.has_ack {
                    return None;
                }
                p.rd.ack = p.rd.ack.wrapping_add(delta);
                Some(p.encode())
            }
        }
    }
}

fn sub_base(src: Endpoint, dst: Endpoint) -> Packet {
    Packet {
        src_addr: src.addr,
        dst_addr: dst.addr,
        dm: DmHeader { src_port: src.port, dst_port: dst.port },
        cm: CmHeader::default(),
        rd: RdHeader::default(),
        // An honest window so a forged header can never zero-window-
        // poison the victim (same discipline as bench::attack).
        osr: OsrHeader { ecn_echo: false, rcv_wnd: u16::MAX },
        payload: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Endpoint = Endpoint { addr: 0x0A000001, port: 5000 };
    const B: Endpoint = Endpoint { addr: 0x0A000002, port: 80 };

    #[test]
    fn forged_rsts_decode_as_rsts_in_both_formats() {
        for w in [Wire::Mono, Wire::Sub] {
            let bytes = w.forge_rst(B, A, 0x1234);
            let seg = w.decode(&bytes).expect("own forgery must decode");
            assert!(seg.rst, "{}", w.label());
            assert_eq!(seg.seq, 0x1234);
            assert!(!seg.syn && !seg.fin);
            // The other format must not mis-parse it.
            let other = if w == Wire::Mono { Wire::Sub } else { Wire::Mono };
            assert!(other.decode(&bytes).is_none_or(|s| !s.rst || s.seq != 0x1234));
        }
    }

    #[test]
    fn forged_syns_decode_with_isn() {
        for w in [Wire::Mono, Wire::Sub] {
            let bytes = w.forge_syn(A, B, 7777);
            let seg = w.decode(&bytes).expect("own forgery must decode");
            assert!(seg.syn && !seg.rst);
            assert_eq!(seg.seq, 7777);
            assert_eq!(seg.seq_len, 1, "a SYN occupies one sequence number");
        }
    }

    #[test]
    fn bump_ack_moves_only_the_ack() {
        let honest = Segment {
            src: A,
            dst: B,
            seq: 100,
            ack: 200,
            flags: tcp_mono::wire::ACK,
            wnd: 1000,
            mss: None,
            payload: vec![1, 2, 3],
        }
        .encode();
        let bent = Wire::Mono.bump_ack(&honest, 500).unwrap();
        let seg = Wire::Mono.decode(&bent).unwrap();
        assert_eq!(seg.ack_no, 700);
        assert_eq!(seg.seq, 100);
        assert_eq!(seg.len, 3);
    }
}
