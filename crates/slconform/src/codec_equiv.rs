//! Leapfrog codec-equivalence certificate (satellite of the E22
//! compositional chain).
//!
//! The paper's §3.1 claim is that the native sublayered header is
//! *isomorphic* to RFC 793 — every field of one format appears in the
//! other. This module turns that claim into a machine-checked certificate:
//! [`CodecEquiv`] is a **product automaton** that walks the two wire
//! codecs — `sublayer_core::wire::Packet` and `tcp_mono::wire::Segment` —
//! in lockstep over an abstract segment alphabet (every flag combination ×
//! wrap-edge sequence numbers × window and payload extremes). In every
//! reachable state the invariant demands:
//!
//! 1. **round trip**: each codec decodes its own encoding back to the
//!    exact structure it encoded;
//! 2. **equivalence**: both encodings normalize to the *same* [`RawSeg`]
//!    through this crate's [`Wire`] taps — the same normalization the
//!    differential harness judges live traffic with, so the certificate
//!    and the harness can never drift apart;
//! 3. **distinguishability**: neither format's frame is mistaken for a
//!    meaningful frame of the other (the native magic byte, and the
//!    checksum on the RFC 793 side, keep the two codecs honest on a
//!    shared network).
//!
//! The exploration is exhaustive over the alphabet (the automaton is a
//! product of toggles and selector cycles, so BFS reaches all
//! [`ALPHABET`] words), and [`certify`] refuses a partial walk. The
//! seeded mutation arm ([`CodecEquiv::skewed`]) mis-encodes the window
//! field on one side only; the certificate catches it with the shortest
//! counterexample, pinned in the tests.

use crate::wire::{RawSeg, Wire};
use slverify::Model;
use sublayer_core::wire::{CmFlags, CmHeader, DmHeader, OsrHeader, Packet, RdHeader};
use tcp_mono::wire::{Endpoint, Segment, ACK, FIN, MIN_SEGMENT_BYTES, RST, SYN};

/// Sequence-number alphabet: zero and both wrap edges.
pub const SEQ_CHOICES: [u32; 3] = [0, 0x7FFF_FFFF, u32::MAX];
/// Cumulative-ack alphabet.
pub const ACK_CHOICES: [u32; 3] = [0, 1, 0x8000_0000];
/// Receive-window alphabet: closed, minimal, maximal.
pub const WND_CHOICES: [u16; 3] = [0, 1, u16::MAX];
/// Payload-length alphabet.
pub const LEN_CHOICES: [usize; 3] = [0, 1, 3];

/// Words in the abstract alphabet: 2^4 flag combinations × 3^4 selectors.
pub const ALPHABET: usize = 16 * 81;

/// One abstract segment: what both codecs are asked to say.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct AbsWord {
    pub syn: bool,
    pub fin: bool,
    pub rst: bool,
    pub ack: bool,
    pub seq_i: u8,
    pub ack_i: u8,
    pub wnd_i: u8,
    pub len_i: u8,
}

fn src() -> Endpoint {
    Endpoint::new(0x0A00_0001, 5000)
}

fn dst() -> Endpoint {
    Endpoint::new(0x0A00_0002, 80)
}

impl AbsWord {
    fn seq(self) -> u32 {
        SEQ_CHOICES[self.seq_i as usize]
    }

    fn ack_no(self) -> u32 {
        if self.ack {
            ACK_CHOICES[self.ack_i as usize]
        } else {
            0
        }
    }

    fn wnd(self) -> u16 {
        WND_CHOICES[self.wnd_i as usize]
    }

    fn payload(self) -> Vec<u8> {
        vec![0xA5; LEN_CHOICES[self.len_i as usize]]
    }

    /// This word in the monolithic RFC 793 format.
    pub fn to_mono(self) -> Segment {
        let mut flags = 0u8;
        if self.syn {
            flags |= SYN;
        }
        if self.fin {
            flags |= FIN;
        }
        if self.rst {
            flags |= RST;
        }
        if self.ack {
            flags |= ACK;
        }
        Segment {
            src: src(),
            dst: dst(),
            seq: self.seq(),
            ack: self.ack_no(),
            flags,
            wnd: self.wnd(),
            mss: None,
            payload: self.payload(),
        }
    }

    /// The same word in the native sublayered format. Each abstract field
    /// lands in exactly one sublayer's bits — the paper's Figure 6.
    pub fn to_sub(self) -> Packet {
        Packet {
            src_addr: src().addr,
            dst_addr: dst().addr,
            dm: DmHeader { src_port: src().port, dst_port: dst().port },
            cm: CmHeader {
                flags: CmFlags {
                    syn: self.syn,
                    fin: self.fin,
                    rst: self.rst,
                    cm_ack: false,
                },
                isn: self.seq(),
                ack_isn: 0,
            },
            rd: RdHeader {
                seq: self.seq(),
                ack: self.ack_no(),
                has_ack: self.ack,
                sack: Vec::new(),
            },
            osr: OsrHeader { ecn_echo: false, rcv_wnd: self.wnd() },
            payload: self.payload(),
        }
    }
}

/// The product automaton over the abstract alphabet. `skew` arms the
/// seeded mutation: the monolithic side mis-encodes the window by one —
/// the kind of silent off-by-one a hand-written shim could introduce —
/// which the equivalence invariant must catch.
pub struct CodecEquiv {
    skew: bool,
}

impl CodecEquiv {
    pub fn honest() -> CodecEquiv {
        CodecEquiv { skew: false }
    }

    pub fn skewed() -> CodecEquiv {
        CodecEquiv { skew: true }
    }
}

impl Model for CodecEquiv {
    type State = AbsWord;

    fn init(&self) -> Vec<AbsWord> {
        vec![AbsWord::default()]
    }

    fn next(&self, s: &AbsWord) -> Vec<(&'static str, AbsWord)> {
        let mut out = Vec::with_capacity(8);
        let mut t = *s;
        t.syn = !t.syn;
        out.push(("syn", t));
        let mut t = *s;
        t.fin = !t.fin;
        out.push(("fin", t));
        let mut t = *s;
        t.rst = !t.rst;
        out.push(("rst", t));
        let mut t = *s;
        t.ack = !t.ack;
        out.push(("ack", t));
        let mut t = *s;
        t.seq_i = (t.seq_i + 1) % 3;
        out.push(("seq", t));
        let mut t = *s;
        t.ack_i = (t.ack_i + 1) % 3;
        out.push(("ackno", t));
        let mut t = *s;
        t.wnd_i = (t.wnd_i + 1) % 3;
        out.push(("wnd", t));
        let mut t = *s;
        t.len_i = (t.len_i + 1) % 3;
        out.push(("len", t));
        out
    }

    fn invariant(&self, s: &AbsWord) -> Result<(), String> {
        let mut mono = s.to_mono();
        if self.skew && mono.wnd != u16::MAX {
            mono.wnd += 1;
        }
        let sub = s.to_sub();
        let mono_bytes = mono.encode();
        let sub_bytes = sub.encode();

        // 1. Round trip: each codec is lossless on its own format.
        if mono_bytes.len() < MIN_SEGMENT_BYTES {
            return Err(format!("mono frame below the format floor: {}", mono_bytes.len()));
        }
        match Segment::decode(&mono_bytes) {
            Ok(back) if back == mono => {}
            other => return Err(format!("mono codec not lossless at {s:?}: {other:?}")),
        }
        match Packet::decode(&sub_bytes) {
            Ok(back) if back == sub => {}
            other => return Err(format!("sub codec not lossless at {s:?}: {other:?}")),
        }

        // 2. Equivalence through the harness taps: both formats say the
        // same abstract thing.
        let m: RawSeg = Wire::Mono
            .decode(&mono_bytes)
            .ok_or_else(|| format!("mono tap rejected its own frame at {s:?}"))?;
        let n: RawSeg = Wire::Sub
            .decode(&sub_bytes)
            .ok_or_else(|| format!("sub tap rejected its own frame at {s:?}"))?;
        if m != n {
            return Err(format!(
                "codec divergence at {s:?}: mono normalizes to {m:?}, sub to {n:?}"
            ));
        }

        // 3. Distinguishability: the native magic byte keeps a sub frame
        // from ever parsing as itself in the other codec, and vice versa
        // (the RFC side's checksum or structure must reject, or at worst
        // mis-parse to something visibly different).
        if Packet::decode(&mono_bytes).is_ok() {
            return Err(format!("mono frame accepted by the sub codec at {s:?}"));
        }
        if let Ok(conf) = Segment::decode(&sub_bytes) {
            if conf == mono {
                return Err(format!("sub frame parsed as the equivalent mono frame at {s:?}"));
            }
        }
        Ok(())
    }

    fn is_done(&self, _s: &AbsWord) -> bool {
        // Every word has successors (toggles are total), so the walk never
        // deadlocks; any word is a legitimate resting point.
        true
    }
}

/// The certificate: exhaustive equivalence over the whole alphabet.
#[derive(Clone, Copy, Debug)]
pub struct CodecCert {
    /// Words checked (must equal [`ALPHABET`]).
    pub words: usize,
    /// Lockstep transitions taken.
    pub transitions: usize,
}

/// Run the product automaton to exhaustion and issue the certificate.
/// Errs with the counterexample if the codecs diverge anywhere, and
/// refuses to certify a partial walk.
pub fn certify(max_states: usize) -> Result<CodecCert, String> {
    let r = slverify::check(&CodecEquiv::honest(), max_states);
    if let Some(v) = r.violation {
        return Err(format!("codec equivalence refuted ({}) after {:?}", v.reason, v.actions));
    }
    if !r.ok() {
        return Err(format!(
            "walk incomplete (deadlocks {}, truncated {}) — no certificate",
            r.deadlocks, r.truncated
        ));
    }
    if r.states != ALPHABET {
        return Err(format!(
            "alphabet not fully covered: {} of {ALPHABET} words — no certificate",
            r.states
        ));
    }
    Ok(CodecCert { words: r.states, transitions: r.transitions })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_covers_the_full_alphabet() {
        let cert = certify(10_000).expect("the shipped codecs are equivalent");
        assert_eq!(cert.words, ALPHABET);
        // 8 moves from every word, all staying inside the alphabet.
        assert_eq!(cert.transitions, ALPHABET * 8);
    }

    #[test]
    fn skewed_encoder_is_caught_with_shortest_counterexample() {
        let r = slverify::check(&CodecEquiv::skewed(), 10_000);
        let v = r.violation.expect("a window skew must refute equivalence");
        // The initial word has wnd = 0, already skewed to 1 on the mono
        // side: the divergence is found before a single transition.
        assert_eq!(v.actions, Vec::<&str>::new(), "{v:?}");
        assert!(v.reason.contains("codec divergence"), "{v:?}");
    }

    #[test]
    fn taps_agree_with_direct_decoding_on_a_sample_word() {
        // The cross-check the module doc promises: the certificate's
        // normalization is the harness's own `Wire` tap, not a private
        // re-implementation.
        let w = AbsWord { syn: true, ack: true, seq_i: 1, ack_i: 2, wnd_i: 2, len_i: 1, ..AbsWord::default() };
        let m = Wire::Mono.decode(&w.to_mono().encode()).unwrap();
        let s = Wire::Sub.decode(&w.to_sub().encode()).unwrap();
        assert_eq!(m, s);
        assert_eq!(m.seq, SEQ_CHOICES[1]);
        assert_eq!(m.ack_no, ACK_CHOICES[2]);
        assert_eq!(m.wnd, u16::MAX as u32);
        assert_eq!(m.seq_len, 2); // one payload byte + SYN
    }

    #[test]
    fn alphabet_floor_matches_the_mono_format_floor() {
        // The smallest word's mono encoding sits exactly on the format
        // floor tcp-mono now exports.
        assert_eq!(AbsWord::default().to_mono().encode().len(), MIN_SEGMENT_BYTES);
    }
}
