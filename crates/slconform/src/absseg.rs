//! ISN-relative abstract segments.
//!
//! Raw traces from the two stacks are incomparable: different formats,
//! different (time-derived) initial sequence numbers. [`normalize`]
//! rebases every frame of one endpoint's tap against the ISNs learned
//! from the SYNs in that trace, yielding [`AbsSeg`]s where the SYN sits
//! at relative sequence 0 and the first payload byte at 1 — the space
//! the oracle reasons in and the golden snapshots are written in.

use crate::wire::Wire;
use netsim::{TapDir, TapEvent};

/// One frame of an endpoint's trace, rebased to ISN-relative sequence
/// space.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbsSeg {
    pub at_ns: u64,
    pub dir: TapDir,
    pub syn: bool,
    pub fin: bool,
    pub rst: bool,
    pub ack: bool,
    /// Relative first sequence number (SYN = 0, first data byte = 1).
    pub rel_seq: u32,
    /// Sequence space consumed.
    pub seq_len: u32,
    /// Payload bytes.
    pub len: u32,
    /// Relative cumulative ack, valid when `ack`.
    pub rel_ack: u32,
    pub wnd: u32,
    /// False when the ISN for the relevant direction was never seen (e.g.
    /// a stateless refusal RST) — `rel_seq`/`rel_ack` are then raw wire
    /// values and the oracle skips sequence arithmetic on this frame.
    pub rel_known: bool,
}

impl AbsSeg {
    pub fn flags_label(&self) -> String {
        let mut parts = Vec::new();
        if self.syn {
            parts.push("SYN");
        }
        if self.fin {
            parts.push("FIN");
        }
        if self.rst {
            parts.push("RST");
        }
        if self.ack {
            parts.push("ACK");
        }
        if parts.is_empty() {
            parts.push("-");
        }
        parts.join("+")
    }

    /// True for a bare cumulative ack: no flags, no payload.
    pub fn pure_ack(&self) -> bool {
        self.ack && !self.syn && !self.fin && !self.rst && self.len == 0
    }
}

/// Rebase one endpoint's tap trace. `Tx` frames are "ours", `Rx` frames
/// the peer's; each direction's ISN is learned from the first SYN seen
/// traveling that way (frames the format cannot decode are skipped —
/// they cannot occur on an unimpaired link).
pub fn normalize(wire: Wire, trace: &[TapEvent]) -> Vec<AbsSeg> {
    let mut isn_tx: Option<u32> = None;
    let mut isn_rx: Option<u32> = None;
    let mut out = Vec::with_capacity(trace.len());
    for ev in trace {
        let Some(raw) = wire.decode(&ev.bytes) else {
            continue;
        };
        let (isn_here, isn_there) = match ev.dir {
            TapDir::Tx => (&mut isn_tx, &mut isn_rx),
            TapDir::Rx => (&mut isn_rx, &mut isn_tx),
        };
        if raw.syn && isn_here.is_none() {
            *isn_here = Some(raw.seq);
        }
        // Sequence numbers rebase against the sender's ISN, acks against
        // the receiver's (they name the peer's sequence space).
        let rel_seq = isn_here.map(|isn| raw.seq.wrapping_sub(isn));
        let rel_ack = if raw.ack {
            isn_there.map(|isn| raw.ack_no.wrapping_sub(isn))
        } else {
            Some(0)
        };
        let rel_known = rel_seq.is_some() && rel_ack.is_some();
        out.push(AbsSeg {
            at_ns: ev.at.nanos(),
            dir: ev.dir,
            syn: raw.syn,
            fin: raw.fin,
            rst: raw.rst,
            ack: raw.ack,
            rel_seq: rel_seq.unwrap_or(raw.seq),
            seq_len: raw.seq_len,
            len: raw.len,
            rel_ack: if raw.ack { rel_ack.unwrap_or(raw.ack_no) } else { 0 },
            wnd: raw.wnd,
            rel_known,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Time;
    use tcp_mono::wire::{Endpoint, Segment, ACK, SYN};

    fn seg(seq: u32, ack: u32, flags: u8, payload: &[u8]) -> Vec<u8> {
        Segment {
            src: Endpoint::new(1, 1),
            dst: Endpoint::new(2, 2),
            seq,
            ack,
            flags,
            wnd: 1000,
            mss: None,
            payload: payload.to_vec(),
        }
        .encode()
    }

    fn ev(dir: TapDir, bytes: Vec<u8>) -> TapEvent {
        TapEvent { at: Time::ZERO, dir, bytes }
    }

    #[test]
    fn rebases_against_both_isns() {
        // Client-side view of a handshake + 3 data bytes, arbitrary ISNs.
        let trace = vec![
            ev(TapDir::Tx, seg(9000, 0, SYN, &[])),
            ev(TapDir::Rx, seg(70_000, 9001, SYN | ACK, &[])),
            ev(TapDir::Tx, seg(9001, 70_001, ACK, &[])),
            ev(TapDir::Tx, seg(9001, 70_001, ACK, b"abc")),
            ev(TapDir::Rx, seg(70_001, 9004, ACK, &[])),
        ];
        let abs = normalize(Wire::Mono, &trace);
        assert!(abs.iter().all(|s| s.rel_known));
        assert_eq!(abs[0].rel_seq, 0);
        assert_eq!(abs[0].seq_len, 1);
        assert_eq!((abs[1].rel_seq, abs[1].rel_ack), (0, 1));
        assert_eq!((abs[2].rel_seq, abs[2].rel_ack), (1, 1));
        assert_eq!((abs[3].rel_seq, abs[3].len), (1, 3));
        assert_eq!(abs[4].rel_ack, 4, "peer acked SYN + 3 bytes");
        assert!(abs[4].pure_ack());
    }

    #[test]
    fn unknown_isn_marks_rel_unknown() {
        // A lone RST with no SYN ever seen in its direction.
        let abs = normalize(
            Wire::Mono,
            &[ev(TapDir::Rx, seg(555, 0, tcp_mono::wire::RST, &[]))],
        );
        assert_eq!(abs.len(), 1);
        assert!(!abs[0].rel_known);
        assert_eq!(abs[0].rel_seq, 555, "raw value kept for display");
    }
}
