//! Golden-trace snapshots.
//!
//! Every corpus scenario has a checked-in rendering of both stacks'
//! normalized traces at seed 1 under `crates/slconform/golden/`. The
//! snapshot test compares fresh runs against these files; intentional
//! behavior changes are blessed with `BLESS=1 cargo test -p slconform
//! --test golden`, and CI fails if a regeneration changes the files
//! without the commit touching them.
//!
//! Long transfers are capped at [`MAX_FRAMES`] rendered lines; the tail
//! is pinned by a frame count and an FNV-1a digest, so a behavioral
//! change anywhere in the trace still shows up without checking in
//! megabytes of text.

use crate::absseg::AbsSeg;
use crate::driver::{run_kind, Kind, Mutation, RunOut};
use crate::scenario::{Scenario, Side};
use netsim::TapDir;
use std::path::PathBuf;

/// Frames rendered verbatim before switching to the digest line.
pub const MAX_FRAMES: usize = 120;

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn seg_line(s: &AbsSeg) -> String {
    let dir = match s.dir {
        TapDir::Rx => "rx",
        TapDir::Tx => "tx",
    };
    let ack = if s.ack { s.rel_ack.to_string() } else { "-".to_string() };
    format!(
        "{:>12} {dir} {:<12} seq={} len={} ack={ack} wnd={}{}",
        s.at_ns,
        s.flags_label(),
        s.rel_seq,
        s.len,
        s.wnd,
        if s.rel_known { "" } else { " raw" },
    )
}

/// Render one run (both endpoints) into snapshot text.
pub fn render_run(run: &RunOut) -> String {
    let mut out = String::new();
    for (side, ep) in [(Side::Client, &run.client), (Side::Server, &run.server)] {
        out.push_str(&format!("[{} {}]\n", run.kind.label(), side.label()));
        out.push_str(&format!(
            "outcome est={} closed={} peer_closed={} err={:?} delivered={} queued={}\n",
            ep.obs.established,
            ep.obs.closed,
            ep.obs.peer_closed,
            ep.obs.error,
            ep.delivered.len(),
            ep.queued.len(),
        ));
        for s in ep.abs.iter().take(MAX_FRAMES) {
            out.push_str(&seg_line(s));
            out.push('\n');
        }
        if ep.abs.len() > MAX_FRAMES {
            let rest: String =
                ep.abs[MAX_FRAMES..].iter().map(|s| seg_line(s) + "\n").collect();
            out.push_str(&format!(
                "... {} more frames, fnv1a={:016x}\n",
                ep.abs.len() - MAX_FRAMES,
                fnv1a(rest.as_bytes()),
            ));
        }
    }
    out
}

/// Snapshot of one scenario: both kinds at seed 1.
pub fn render_scenario(sc: &Scenario) -> String {
    let mut out = format!("# golden conformance trace: {} (seed 1)\n", sc.name);
    for kind in [Kind::Sub, Kind::Mono] {
        out.push_str(&render_run(&run_kind(kind, sc, 1, Mutation::None)));
    }
    out
}

/// Where a scenario's golden file lives.
pub fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join(format!("{name}.txt"))
}

/// Compare (or, with `BLESS=1`, rewrite) a scenario's snapshot. Returns
/// an error string on mismatch.
pub fn check_golden(sc: &Scenario) -> Result<(), String> {
    let rendered = render_scenario(sc);
    let path = golden_path(sc.name);
    if std::env::var("BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).map_err(|e| e.to_string())?;
        std::fs::write(&path, rendered).map_err(|e| e.to_string())?;
        return Ok(());
    }
    let want = std::fs::read_to_string(&path)
        .map_err(|_| format!("{} missing — run with BLESS=1 to create it", path.display()))?;
    if want != rendered {
        // Point at the first differing line, not a wall of text.
        let (mut line_no, mut got_l, mut want_l) = (0usize, "", "");
        for (i, (g, w)) in rendered.lines().zip(want.lines()).enumerate() {
            if g != w {
                (line_no, got_l, want_l) = (i + 1, g, w);
                break;
            }
        }
        if line_no == 0 {
            line_no = rendered.lines().count().min(want.lines().count()) + 1;
        }
        return Err(format!(
            "{} diverges from golden at line {line_no}:\n  golden: {want_l}\n  run:    {got_l}\n\
             (re-bless with BLESS=1 if this change is intentional)",
            sc.name
        ));
    }
    Ok(())
}
