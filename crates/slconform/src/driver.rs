//! The lockstep scenario runner.
//!
//! One [`run_scenario`] call plays a [`Scenario`] against one stack kind:
//! a client and a server of the *same* kind (the two formats are not
//! wire-compatible) exchange traffic through a deterministic `netsim`
//! link while every frame is captured by a [`netsim::TapStack`] on each
//! endpoint. The differential harness (`diff`) runs the same scenario
//! against both kinds with the same seed and compares the outcomes; the
//! oracle judges each captured trace on its own.
//!
//! Injections are byte-precise: the victim stack's own
//! `expected_wire_seq` introspection aims the forged RST/SYN exactly
//! (RFC 5961's "oracle attacker"), offset per [`RstOff`].

use crate::absseg::{normalize, AbsSeg};
use crate::scenario::{Ev, FaultKind, LinkSpec, RstOff, Scenario, Side};
use crate::wire::Wire;
use netsim::{
    tap_buffer, AdminOp, BurstLoss, Dur, FaultProfile, LinkParams, NodeId, SimNet, Stack,
    StackNode, TapEvent, TapStack, Time, TransportError,
};
use slhost::{observe, ConnObs, HostStack};
use slmetrics::shared;
use sublayer_core::{SlConfig, SlTcpStack};
use tcp_mono::wire::{Endpoint, FourTuple};
use tcp_mono::TcpStack;

/// Client address/port (active opener).
pub const A_ADDR: u32 = 0x0A000001;
/// Server address/port (listener).
pub const B_ADDR: u32 = 0x0A000002;
pub const CLIENT_PORT: u16 = 5000;
pub const SERVER_PORT: u16 = 80;

fn client_ep() -> Endpoint {
    Endpoint::new(A_ADDR, CLIENT_PORT)
}
fn server_ep() -> Endpoint {
    Endpoint::new(B_ADDR, SERVER_PORT)
}

fn t(ms: u64) -> Time {
    Time::ZERO + Dur::from_millis(ms)
}

/// Which stack implementation a run drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    Sub,
    Mono,
}

impl Kind {
    pub fn label(self) -> &'static str {
        match self {
            Kind::Sub => "sub",
            Kind::Mono => "mono",
        }
    }
    pub fn wire(self) -> Wire {
        match self {
            Kind::Sub => Wire::Sub,
            Kind::Mono => Wire::Mono,
        }
    }
}

/// A deliberately seeded stack bug, applied to the *client* endpoint of a
/// run — the harness's own mutation tests prove the pipeline catches and
/// shrinks these.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    None,
    /// Every transmitted cumulative ack claims `delta` bytes the endpoint
    /// never received.
    AckFuture { delta: u32 },
    /// Swallow every outgoing pure ack (kills challenge ACKs and
    /// handshake completion acks).
    DropPureAcks,
}

/// The fault wrapper sits *inside* the tap, so the tap records what
/// actually reached the wire.
pub struct BugStack<S: Stack> {
    pub inner: S,
    wire: Wire,
    mutation: Mutation,
}

impl<S: Stack> BugStack<S> {
    pub fn new(inner: S, wire: Wire, mutation: Mutation) -> Self {
        BugStack { inner, wire, mutation }
    }
}

impl<S: Stack> Stack for BugStack<S> {
    fn on_frame(&mut self, now: Time, frame: &[u8]) {
        self.inner.on_frame(now, frame);
    }
    fn poll_transmit(&mut self, now: Time) -> Option<Vec<u8>> {
        loop {
            let frame = self.inner.poll_transmit(now)?;
            match self.mutation {
                Mutation::None => return Some(frame),
                Mutation::AckFuture { delta } => {
                    return Some(self.wire.bump_ack(&frame, delta).unwrap_or(frame))
                }
                Mutation::DropPureAcks => {
                    let pure = self
                        .wire
                        .decode(&frame)
                        .is_some_and(|r| r.ack && !r.syn && !r.fin && !r.rst && r.len == 0);
                    if !pure {
                        return Some(frame);
                    }
                    // Swallowed; try the next queued frame.
                }
            }
        }
    }
    fn poll_deadline(&self, now: Time) -> Option<Time> {
        self.inner.poll_deadline(now)
    }
    fn on_tick(&mut self, now: Time) {
        self.inner.on_tick(now);
    }
}

/// What the driver needs from a transport beyond [`HostStack`]: a
/// constructor and the `expected_wire_seq` introspection both stacks
/// expose for byte-precise injection aiming.
pub trait ConformStack: HostStack + Sized {
    const KIND: Kind;
    fn mk(addr: u32) -> Self;
    fn expected_seq(&self, id: Self::ConnId) -> Option<u32>;
}

impl ConformStack for SlTcpStack {
    const KIND: Kind = Kind::Sub;
    fn mk(addr: u32) -> Self {
        SlTcpStack::new(addr, SlConfig::default(), shared())
    }
    fn expected_seq(&self, id: Self::ConnId) -> Option<u32> {
        self.expected_wire_seq(id)
    }
}

impl ConformStack for TcpStack {
    const KIND: Kind = Kind::Mono;
    fn mk(addr: u32) -> Self {
        TcpStack::new(addr, shared())
    }
    fn expected_seq(&self, id: Self::ConnId) -> Option<u32> {
        self.expected_wire_seq(id)
    }
}

/// Application-level operation applied to one endpoint, recorded with its
/// simulated time for byte-level replay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AppOp {
    Listen,
    Connect,
    /// The bytes the app *offered* (the stack may accept a short count —
    /// replay re-offers the same bytes).
    Send(Vec<u8>),
    Recv,
    Close,
    Abort,
    /// A forged frame delivered straight to this endpoint.
    Inject(Vec<u8>),
}

/// Everything observed at one endpoint of one run.
#[derive(Clone, Debug, Default)]
pub struct EndpointOut {
    /// Raw captured frames, both directions.
    pub raw: Vec<TapEvent>,
    /// The same trace in ISN-relative form.
    pub abs: Vec<AbsSeg>,
    /// App ops with timestamps (ns), for replay.
    pub app: Vec<(u64, AppOp)>,
    /// Final connection observation through the parity surface.
    pub obs: ConnObs,
    /// The endpoint ever had a connection handle.
    pub conn_known: bool,
    /// Establishment was observed at some event boundary.
    pub established_ever: bool,
    /// Bytes the application read, in order.
    pub delivered: Vec<u8>,
    /// Bytes the stack accepted into its send buffer, in order.
    pub queued: Vec<u8>,
    /// Immediate error from `try_connect`, if any.
    pub connect_err: Option<TransportError>,
    /// App called close / abort at some point.
    pub closed_by_app: bool,
    pub aborted_by_app: bool,
}

/// One full scenario run against one stack kind.
#[derive(Clone, Debug)]
pub struct RunOut {
    pub kind: Kind,
    pub seed: u64,
    pub client: EndpointOut,
    pub server: EndpointOut,
}

fn link_params(spec: LinkSpec) -> LinkParams {
    let fault = match spec.fault {
        FaultKind::None => FaultProfile::none(),
        FaultKind::LossPm(pm) => FaultProfile::lossy(pm as f64 / 1000.0),
        FaultKind::Burst => {
            FaultProfile::none().with_burst(BurstLoss::gilbert(0.02, 0.25, 0.6))
        }
        FaultKind::ReorderPm(pm) => {
            FaultProfile::none().with_reorder(pm as f64 / 1000.0, Dur::from_millis(15))
        }
        FaultKind::DupPm(pm) => FaultProfile::none().with_duplicate(pm as f64 / 1000.0),
    };
    LinkParams::delay_only(Dur::from_millis(spec.delay_ms)).with_fault(fault)
}

/// Deterministic payload: each side's stream is a distinct rotating
/// pattern so misdelivery (not just loss) is detectable.
pub fn pattern(side: Side, offset: usize, len: usize) -> Vec<u8> {
    let salt: u8 = match side {
        Side::Client => 0,
        Side::Server => 101,
    };
    (0..len).map(|i| (((offset + i) % 251) as u8).wrapping_add(salt)).collect()
}

type Node<H> = StackNode<TapStack<BugStack<H>>>;

/// Run `sc` against stack kind `H::KIND` with a clean client.
pub fn run_scenario<H: ConformStack>(sc: &Scenario, seed: u64) -> RunOut {
    run_scenario_mutated::<H>(sc, seed, Mutation::None)
}

/// Dispatch by [`Kind`] value.
pub fn run_kind(kind: Kind, sc: &Scenario, seed: u64, mutation: Mutation) -> RunOut {
    match kind {
        Kind::Sub => run_scenario_mutated::<SlTcpStack>(sc, seed, mutation),
        Kind::Mono => run_scenario_mutated::<TcpStack>(sc, seed, mutation),
    }
}

/// Run `sc` with `mutation` seeded into the client endpoint.
pub fn run_scenario_mutated<H: ConformStack>(sc: &Scenario, seed: u64, mutation: Mutation) -> RunOut {
    let wire = H::KIND.wire();
    let client = H::mk(A_ADDR);
    let mut server = H::mk(B_ADDR);
    let mut c_out = EndpointOut::default();
    let mut s_out = EndpointOut::default();
    if sc.listen {
        server.listen(SERVER_PORT);
        s_out.app.push((0, AppOp::Listen));
    }
    let c_tap = tap_buffer();
    let s_tap = tap_buffer();
    let (mut net, nc, ns) = netsim::two_party(
        seed,
        TapStack::new(BugStack::new(client, wire, mutation), c_tap.clone()),
        TapStack::new(BugStack::new(server, wire, Mutation::None), s_tap.clone()),
        link_params(sc.link),
    );

    let mut c_conn: Option<H::ConnId> = None;
    let mut s_conn: Option<H::ConnId> = None;
    let mut c_sent = 0usize; // pattern offsets
    let mut s_sent = 0usize;

    // Helper closures can't borrow `net` twice; use small fns instead.
    fn stack_mut<H: ConformStack>(net: &mut SimNet, id: NodeId) -> &mut H {
        &mut net.node_mut::<Node<H>>(id).stack.inner.inner
    }
    fn tap_stack_mut<H: ConformStack>(net: &mut SimNet, id: NodeId) -> &mut TapStack<BugStack<H>> {
        &mut net.node_mut::<Node<H>>(id).stack
    }

    let server_tuple = FourTuple { local: server_ep(), remote: client_ep() };

    for (at_ms, ev) in &sc.events {
        let target = t(*at_ms);
        if target > net.now() {
            net.run_until(target);
        }
        let now = net.now();
        let now_ns = now.nanos();
        // The server's accepted connection appears asynchronously; pick
        // the handle up at every event boundary.
        if s_conn.is_none() && !sc.server_connects {
            s_conn = stack_mut::<H>(&mut net, ns).conn_for_tuple(&server_tuple);
            if s_conn.is_some() {
                s_out.conn_known = true;
            }
        }
        match ev {
            Ev::Connect => {
                c_out.app.push((now_ns, AppOp::Connect));
                match stack_mut::<H>(&mut net, nc).try_connect(now, CLIENT_PORT, server_ep()) {
                    Ok(id) => {
                        c_conn = Some(id);
                        c_out.conn_known = true;
                    }
                    Err(e) => c_out.connect_err = Some(e),
                }
                if sc.server_connects {
                    s_out.app.push((now_ns, AppOp::Connect));
                    match stack_mut::<H>(&mut net, ns).try_connect(now, SERVER_PORT, client_ep()) {
                        Ok(id) => {
                            s_conn = Some(id);
                            s_out.conn_known = true;
                        }
                        Err(e) => s_out.connect_err = Some(e),
                    }
                }
            }
            Ev::Send { side, len } => {
                let (node, conn, out, sent) = match side {
                    Side::Client => (nc, c_conn, &mut c_out, &mut c_sent),
                    Side::Server => (ns, s_conn, &mut s_out, &mut s_sent),
                };
                if let Some(id) = conn {
                    let bytes = pattern(*side, *sent, *len as usize);
                    out.app.push((now_ns, AppOp::Send(bytes.clone())));
                    let accepted = stack_mut::<H>(&mut net, node).send(id, &bytes);
                    out.queued.extend_from_slice(&bytes[..accepted]);
                    *sent += bytes.len();
                }
            }
            Ev::Recv { side } => {
                let (node, conn, out) = match side {
                    Side::Client => (nc, c_conn, &mut c_out),
                    Side::Server => (ns, s_conn, &mut s_out),
                };
                if let Some(id) = conn {
                    out.app.push((now_ns, AppOp::Recv));
                    let got = stack_mut::<H>(&mut net, node).recv(id);
                    out.delivered.extend_from_slice(&got);
                }
            }
            Ev::Close { side } => {
                let (node, conn, out) = match side {
                    Side::Client => (nc, c_conn, &mut c_out),
                    Side::Server => (ns, s_conn, &mut s_out),
                };
                if let Some(id) = conn {
                    out.app.push((now_ns, AppOp::Close));
                    out.closed_by_app = true;
                    stack_mut::<H>(&mut net, node).close(id);
                }
            }
            Ev::Abort { side } => {
                let (node, conn, out) = match side {
                    Side::Client => (nc, c_conn, &mut c_out),
                    Side::Server => (ns, s_conn, &mut s_out),
                };
                if let Some(id) = conn {
                    out.app.push((now_ns, AppOp::Abort));
                    out.aborted_by_app = true;
                    stack_mut::<H>(&mut net, node).abort(now, id);
                }
            }
            Ev::InjectRst { to, off } => {
                let (node, conn, out, src, dst) = match to {
                    Side::Client => (nc, c_conn, &mut c_out, server_ep(), client_ep()),
                    Side::Server => (ns, s_conn, &mut s_out, client_ep(), server_ep()),
                };
                if let Some(id) = conn {
                    if let Some(exact) = stack_mut::<H>(&mut net, node).expected_seq(id) {
                        let seq = match off {
                            RstOff::Exact => exact,
                            RstOff::InWindow => exact.wrapping_add(1_000),
                            RstOff::Outside => exact.wrapping_add(0x4000_0000),
                        };
                        let frame = wire.forge_rst(src, dst, seq);
                        out.app.push((now_ns, AppOp::Inject(frame.clone())));
                        tap_stack_mut::<H>(&mut net, node).on_frame(now, &frame);
                    }
                }
            }
            Ev::InjectSyn { to } => {
                let (node, conn, out, src, dst) = match to {
                    Side::Client => (nc, c_conn, &mut c_out, server_ep(), client_ep()),
                    Side::Server => (ns, s_conn, &mut s_out, client_ep(), server_ep()),
                };
                if let Some(id) = conn {
                    if let Some(exact) = stack_mut::<H>(&mut net, node).expected_seq(id) {
                        let frame = wire.forge_syn(src, dst, exact.wrapping_add(99_999));
                        out.app.push((now_ns, AppOp::Inject(frame.clone())));
                        tap_stack_mut::<H>(&mut net, node).on_frame(now, &frame);
                    }
                }
            }
            // Admin ops are queue events; drain to `now` so the flip is
            // in effect before later same-instant events pump frames.
            Ev::LinkDown => {
                net.schedule_admin(now, AdminOp::LinkDown(0));
                net.run_until(now);
            }
            Ev::LinkUp => {
                net.schedule_admin(now, AdminOp::LinkUp(0));
                net.run_until(now);
            }
        }
        net.poll_all();
        // Establishment sampling at event boundaries.
        if let Some(id) = c_conn {
            c_out.established_ever |= stack_mut::<H>(&mut net, nc).is_established(id);
        }
        if let Some(id) = s_conn {
            s_out.established_ever |= stack_mut::<H>(&mut net, ns).is_established(id);
        }
    }

    // Quiet period: let retransmits, closes and timers settle.
    let end = t(sc.end_ms() + sc.quiet_ms);
    if end > net.now() {
        net.run_until(end);
    }
    if s_conn.is_none() && !sc.server_connects {
        s_conn = stack_mut::<H>(&mut net, ns).conn_for_tuple(&server_tuple);
        if s_conn.is_some() {
            s_out.conn_known = true;
        }
    }
    let end_ns = net.now().nanos();

    // Final drain (recorded, so replay matches), then observe.
    for (node, conn, out) in [(nc, c_conn, &mut c_out), (ns, s_conn, &mut s_out)] {
        if let Some(id) = conn {
            out.established_ever |= stack_mut::<H>(&mut net, node).is_established(id);
            out.app.push((end_ns, AppOp::Recv));
            let got = stack_mut::<H>(&mut net, node).recv(id);
            out.delivered.extend_from_slice(&got);
            out.obs = observe(stack_mut::<H>(&mut net, node), id);
        } else {
            // Never had a connection: reads as closed, nothing readable.
            out.obs = ConnObs { closed: true, ..ConnObs::default() };
        }
    }

    c_out.raw = c_tap.borrow().clone();
    s_out.raw = s_tap.borrow().clone();
    c_out.abs = normalize(wire, &c_out.raw);
    s_out.abs = normalize(wire, &s_out.raw);

    RunOut { kind: H::KIND, seed, client: c_out, server: s_out }
}
