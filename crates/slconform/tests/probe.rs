//! Calibration probe: dump both stacks' normalized traces for a few
//! scenarios. Not a test of behaviour — run manually with
//! `cargo test -p slconform --test probe -- --ignored --nocapture`
//! when adjusting the normalizer or oracle.

use slconform::{corpus, run_kind, Kind, Mutation, RunOut};

fn dump(run: &RunOut) {
    for (side, ep) in [("client", &run.client), ("server", &run.server)] {
        println!("-- [{} {}] obs={:?} est_ever={} delivered={} queued={}",
            run.kind.label(), side, ep.obs, ep.established_ever,
            ep.delivered.len(), ep.queued.len());
        for s in &ep.abs {
            println!(
                "   {:>10.3}ms {:?} {:<12} seq={} len={} ack={} wnd={} seq_len={} rel_known={}",
                s.at_ns as f64 / 1e6,
                s.dir,
                s.flags_label(),
                s.rel_seq,
                s.len,
                if s.ack { s.rel_ack as i64 } else { -1 },
                s.wnd,
                s.seq_len,
                s.rel_known,
            );
        }
    }
}

#[test]
#[ignore = "calibration probe, run manually with --nocapture"]
fn probe_dump() {
    let all = corpus();
    for name in [
        "simultaneous_open",
        "data_bidirectional",
        "half_close_server_sends",
        "zero_window_then_close",
    ] {
        let sc = all.iter().find(|s| s.name == name).expect("scenario");
        println!("==== scenario {name} ====");
        for kind in [Kind::Sub, Kind::Mono] {
            dump(&run_kind(kind, sc, 1, Mutation::None));
        }
    }
}

#[test]
#[ignore = "calibration sweep, run manually with --nocapture"]
fn probe_corpus() {
    let mut bad = 0;
    for sc in corpus() {
        for seed in [1u64, 2, 3] {
            let rep = slconform::check_scenario(&sc, seed);
            if !rep.ok() {
                bad += 1;
                println!("== {} seed {} ==", sc.name, seed);
                for d in &rep.unexplained {
                    println!("   UNEXPLAINED [{}] {}", d.code, d.detail);
                }
            }
            for (id, detail) in &rep.allowlisted {
                println!("   allowed [{id}] {} seed {}: {detail}", sc.name, seed);
            }
        }
    }
    println!("total failing runs: {bad}");
}
