//! Satellite: one shared transition table, two consumers.
//!
//! `slverify::relation` is the single authoritative copy of the RFC 5961
//! response discipline and the overload pressure tiers. The bounded
//! models (`RstAttack`, `Overload`) consume it at verification time; the
//! conformance oracle consumes it at runtime. These tests pin the two
//! consumers together:
//!
//! 1. every transition the models emit is exhaustively enumerated (the
//!    same `Model::init`/`Model::next` surface the checker explores) and
//!    checked against the relation — no model action exists outside the
//!    relation's vocabulary, and the relation's mandated responses are
//!    all exercised;
//! 2. every response class the relation mandates is realized as a
//!    concrete wire trace and accepted by the conformance oracle — and
//!    the omitted response is *rejected*, so the oracle enforces the
//!    table rather than merely tolerating it.

use std::collections::{BTreeSet, HashSet, VecDeque};

use slconform::driver::EndpointOut;
use slconform::{check_endpoint, AbsSeg};
use netsim::{TapDir, TransportError};
use slverify::{
    classify_seq, pressure_tier, rfc5961_response, transition_label, Model, Overload,
    RespClass, RstAttack, SegClass, SeqVerdict,
};

const VERDICTS: [SeqVerdict; 3] = [SeqVerdict::Exact, SeqVerdict::InWindow, SeqVerdict::Outside];

/// Exhaustively enumerate a model's reachable transitions, exactly as the
/// checker would (breadth-first over `init`/`next`).
fn explore<M: Model>(m: &M, cap: usize) -> Vec<(M::State, &'static str, M::State)> {
    let mut seen: HashSet<M::State> = HashSet::new();
    let mut queue: VecDeque<M::State> = VecDeque::new();
    let mut edges = Vec::new();
    for s in m.init() {
        if seen.insert(s.clone()) {
            queue.push_back(s);
        }
    }
    while let Some(s) = queue.pop_front() {
        for (label, ns) in m.next(&s) {
            edges.push((s.clone(), label, ns.clone()));
            if seen.insert(ns.clone()) {
                queue.push_back(ns);
            }
        }
        assert!(seen.len() <= cap, "state space exceeded cap {cap}");
    }
    edges
}

// ---------------------------------------------------------------------
// RstAttack ⊆ relation.
// ---------------------------------------------------------------------

#[test]
fn rst_attack_transitions_are_exactly_the_relation_vocabulary() {
    for defended in [true, false] {
        for sublayered in [true, false] {
            let m = RstAttack { s_mod: 8, w: 3, n_msgs: 3, budget: 2, defended, sublayered };
            let labels: BTreeSet<&'static str> =
                explore(&m, 1_000_000).into_iter().map(|(_, l, _)| l).collect();

            // Legal vocabulary: model scaffolding plus whatever the
            // shared relation produces for this discipline.
            let mut legal: BTreeSet<&'static str> =
                ["peer_data", "attacker_rst"].into_iter().collect();
            if sublayered {
                legal.insert("rd_classify");
            }
            for seg in [SegClass::Rst, SegClass::Data] {
                for v in VERDICTS {
                    legal.insert(transition_label(seg, v, rfc5961_response(defended, seg, v)));
                }
            }
            for l in &labels {
                assert!(
                    legal.contains(l),
                    "defended={defended} sublayered={sublayered}: model emitted \
                     '{l}', which the shared relation never produces"
                );
            }

            // Both directions: the relation's mandated responses to the
            // segments the model can actually build (honest in-order
            // data, forged wrong-sequence RSTs) are all exercised.
            if defended {
                for want in ["challenge_ack", "rst_dropped", "deliver"] {
                    assert!(labels.contains(want), "defended model never exercised {want}");
                }
                assert!(
                    !labels.contains("rst_in_window"),
                    "defended model reset on an in-window RST"
                );
            } else {
                assert!(
                    labels.contains("rst_in_window"),
                    "undefended model must exhibit the blind in-window reset"
                );
                assert!(
                    !labels.contains("challenge_ack"),
                    "pre-5961 model has no challenge ACK"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Relation ⊆ oracle: every mandated response, realized on the wire,
// is accepted; the omitted response is rejected.
// ---------------------------------------------------------------------

fn seg(
    dir: TapDir,
    (syn, fin, rst, ack): (bool, bool, bool, bool),
    rel_seq: u32,
    len: u32,
    rel_ack: u32,
) -> AbsSeg {
    AbsSeg {
        at_ns: 0,
        dir,
        syn,
        fin,
        rst,
        ack,
        rel_seq,
        seq_len: if syn || fin { len + 1 } else { len },
        len,
        rel_ack,
        wnd: 65_535,
        rel_known: true,
    }
}

fn handshake() -> Vec<AbsSeg> {
    vec![
        seg(TapDir::Tx, (true, false, false, false), 0, 0, 0),
        seg(TapDir::Rx, (true, false, false, true), 0, 0, 1),
        seg(TapDir::Tx, (false, false, false, true), 1, 0, 1),
    ]
}

fn ep(abs: Vec<AbsSeg>) -> EndpointOut {
    EndpointOut { abs, conn_known: true, ..EndpointOut::default() }
}

/// A relative RST sequence realizing each verdict against frontier 1 and
/// the 65 535-byte window the handshake advertised.
fn rst_seq_for(v: SeqVerdict) -> u32 {
    let (frontier, wnd) = (1u32, 65_535u32);
    let s = match v {
        SeqVerdict::Exact => frontier,
        SeqVerdict::InWindow => frontier + 100,
        SeqVerdict::Outside => frontier.wrapping_sub(1),
    };
    assert_eq!(classify_seq(frontier, s, wnd), v, "fixture must realize the verdict");
    s
}

#[test]
fn oracle_accepts_every_mandated_rst_response() {
    for v in VERDICTS {
        let resp = rfc5961_response(true, SegClass::Rst, v);
        let mut abs = handshake();
        abs.push(seg(TapDir::Rx, (false, false, true, false), rst_seq_for(v), 0, 0));
        let mut e = match resp {
            RespClass::Reset => {
                // Mandated: tear down. The endpoint goes quiet and
                // surfaces the reset.
                let mut e = ep(abs);
                e.obs.closed = true;
                e.obs.error = Some(TransportError::Reset);
                e
            }
            RespClass::ChallengeAck => {
                // Mandated: a pure ACK at the current frontier.
                abs.push(seg(TapDir::Tx, (false, false, false, true), 1, 0, 1));
                ep(abs)
            }
            RespClass::Drop => {
                // Mandated: ignore it and carry on (here: send a byte).
                abs.push(seg(TapDir::Tx, (false, false, false, true), 1, 1, 1));
                ep(abs)
            }
            RespClass::Deliver => unreachable!("RSTs never deliver"),
        };
        e.obs.established = true;
        let viol = check_endpoint(&e, true, "x");
        assert!(
            viol.is_empty(),
            "oracle rejected the relation-mandated {resp:?} for {v:?}: {viol:?}"
        );
    }
}

#[test]
fn oracle_rejects_the_omitted_rst_response() {
    // ChallengeAck omitted: the obligation is flagged.
    let mut abs = handshake();
    abs.push(seg(
        TapDir::Rx,
        (false, false, true, false),
        rst_seq_for(SeqVerdict::InWindow),
        0,
        0,
    ));
    let viol = check_endpoint(&ep(abs), true, "x");
    assert!(viol.iter().any(|m| m.contains("challenge-ACK")), "{viol:?}");

    // Reset omitted: transmitting past an exact-sequence RST is flagged,
    // and so is an endpoint that never tears down.
    let mut abs = handshake();
    abs.push(seg(TapDir::Rx, (false, false, true, false), rst_seq_for(SeqVerdict::Exact), 0, 0));
    abs.push(seg(TapDir::Tx, (false, false, false, true), 1, 1, 1));
    let viol = check_endpoint(&ep(abs), true, "x");
    assert!(
        viol.iter().any(|m| m.contains("required teardown"))
            && viol.iter().any(|m| m.contains("survived an exact-sequence RST")),
        "{viol:?}"
    );
}

#[test]
fn oracle_accepts_exact_data_delivery() {
    let resp = rfc5961_response(true, SegClass::Data, SeqVerdict::Exact);
    assert_eq!(resp, RespClass::Deliver);
    let mut abs = handshake();
    abs.push(seg(TapDir::Rx, (false, false, false, true), 1, 10, 1));
    abs.push(seg(TapDir::Tx, (false, false, false, true), 1, 0, 11));
    let viol = check_endpoint(&ep(abs), true, "x");
    assert!(viol.is_empty(), "{viol:?}");
    // And an over-ack (acking beyond what Deliver justifies) is caught.
    let mut abs = handshake();
    abs.push(seg(TapDir::Rx, (false, false, false, true), 1, 10, 1));
    abs.push(seg(TapDir::Tx, (false, false, false, true), 1, 0, 12));
    let viol = check_endpoint(&ep(abs), true, "x");
    assert!(viol.iter().any(|m| m.contains("beyond contiguously received")), "{viol:?}");
}

// ---------------------------------------------------------------------
// Overload ⊆ relation: admissions follow the shared pressure tiers.
// ---------------------------------------------------------------------

#[test]
fn overload_admission_follows_the_shared_pressure_tiers() {
    // lag is only meaningful staged, but the fused admit gate still
    // consumes it (stale_admits is pinned to 0 there), so keep it 1.
    for (sublayered, lag) in [(false, 1), (true, 1)] {
        let m = Overload { budget: 4, resp: 2, lag, sublayered };
        let edges = explore(&m, 1_000_000);
        assert!(!edges.is_empty());
        let mut admits = 0usize;
        let mut refusals = 0usize;
        for (from, label, to) in &edges {
            match *label {
                "admit" => {
                    admits += 1;
                    assert_eq!(
                        from.applied_tier(),
                        0,
                        "admission from a non-Nominal tier (sublayered={sublayered})"
                    );
                    assert!(!from.is_draining(), "admission while draining");
                }
                "refuse" => {
                    refusals += 1;
                    assert!(
                        from.is_draining() || from.applied_tier() == 3,
                        "refusal outside drain/Critical (sublayered={sublayered})"
                    );
                }
                "push_pressure" => {
                    assert!(sublayered, "fused shape has no staged propagation");
                    assert_eq!(
                        to.applied_tier(),
                        pressure_tier(to.occupancy() as u64, m.budget as u64),
                        "pressure refresh disagrees with the shared tier function"
                    );
                }
                _ => {}
            }
            if !sublayered {
                // Fused shape: the tier the policy reads is *always* the
                // shared relation applied to live occupancy.
                for s in [from, to] {
                    assert_eq!(
                        s.applied_tier(),
                        pressure_tier(s.occupancy() as u64, m.budget as u64),
                        "fused tier drifted from relation::pressure_tier"
                    );
                }
            }
        }
        assert!(admits > 0, "model never admitted (sublayered={sublayered})");
        assert!(refusals > 0, "model never refused (sublayered={sublayered})");
    }
}
