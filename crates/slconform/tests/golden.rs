//! Golden-trace snapshot test for the whole conformance corpus.
//!
//! `BLESS=1 cargo test -p slconform --test golden` regenerates the
//! snapshots under `crates/slconform/golden/`; a plain run compares
//! against them. CI regenerates without BLESS and fails if the checked-in
//! files drift from the stacks' actual behavior.

use slconform::corpus;
use slconform::golden::check_golden;

#[test]
fn golden_traces_match() {
    let mut failures = Vec::new();
    for sc in corpus() {
        if let Err(e) = check_golden(&sc) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} scenario(s) diverge from their golden traces:\n{}",
        failures.len(),
        failures.join("\n")
    );
}
