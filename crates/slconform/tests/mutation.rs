//! Mutation tests: the harness must catch its own seeded bugs.
//!
//! A conformance harness that never fails proves nothing. These tests
//! wrap one stack's client in a deliberate protocol bug ([`Mutation`]),
//! assert the differential pipeline flags the run, shrink the scenario to
//! a minimal reproducer (the acceptance bar is ≤ 10 events), and replay
//! the mutated endpoint byte-for-byte from its artifact.

use slconform::driver::{run_kind, Kind, Mutation};
use slconform::scenario::{corpus, Scenario, Side};
use slconform::{artifact, check_scenario_mutated, shrink};

fn by_name(name: &str) -> Scenario {
    corpus().into_iter().find(|s| s.name == name).unwrap()
}

fn assert_caught_and_shrunk(sc: &Scenario, kind: Kind, mutation: Mutation) {
    let rep = check_scenario_mutated(sc, 1, kind, mutation);
    assert!(
        !rep.ok(),
        "{} with {mutation:?} on {} must diverge",
        sc.name,
        kind.label()
    );
    let shrunk = shrink(sc, 1, kind, mutation).expect("divergence must shrink");
    assert!(
        shrunk.to_events <= 10,
        "reproducer for {} must be <= 10 events, got {} ({:?})",
        shrunk.code,
        shrunk.to_events,
        shrunk.scenario.events
    );
    assert!(shrunk.to_events <= shrunk.from_events);
    // The minimal scenario still reproduces under a fresh run.
    let again = check_scenario_mutated(&shrunk.scenario, 1, kind, mutation);
    assert!(
        again.unexplained.iter().any(|d| d.code == shrunk.code),
        "shrunk scenario must still show {}",
        shrunk.code
    );
}

#[test]
fn ack_future_on_sub_is_caught_and_shrinks() {
    assert_caught_and_shrunk(
        &by_name("data_bidirectional"),
        Kind::Sub,
        Mutation::AckFuture { delta: 9_000 },
    );
}

#[test]
fn ack_future_on_mono_is_caught_and_shrinks() {
    assert_caught_and_shrunk(
        &by_name("data_bidirectional"),
        Kind::Mono,
        Mutation::AckFuture { delta: 9_000 },
    );
}

#[test]
fn dropped_challenge_acks_are_caught() {
    // Swallowing pure acks kills the RFC 5961 challenge the oracle
    // demands after an in-window RST (and the handshake ack before it).
    assert_caught_and_shrunk(
        &by_name("rst_in_window_client"),
        Kind::Sub,
        Mutation::DropPureAcks,
    );
    assert_caught_and_shrunk(
        &by_name("rst_in_window_client"),
        Kind::Mono,
        Mutation::DropPureAcks,
    );
}

#[test]
fn mutated_run_is_replayable_from_its_artifact() {
    // The divergence is portable: the artifact alone reproduces the
    // mutant's exact transmissions.
    let sc = by_name("data_c2s_small");
    let m = Mutation::AckFuture { delta: 9_000 };
    let run = run_kind(Kind::Sub, &sc, 1, m);
    let art = artifact::render(sc.name, &run, Side::Client, m);
    let n = artifact::replay(&art).expect("artifact must replay byte-for-byte");
    assert!(n > 0);
}
