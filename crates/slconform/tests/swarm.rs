//! Swarm mode: property-based conformance over randomized scenarios.
//!
//! proptest generates event scripts the hand-written corpus never thought
//! of — interleaved sends, staggered closes, mid-stream injected RSTs and
//! duplicate SYNs, lossy links — and every one must come back with zero
//! unexplained divergences between the two stacks. Set `PROPTEST_CASES`
//! to widen the swarm locally; shrinking of a found divergence is handled
//! by our own event-level shrinker (`slconform::shrink`), so each failure
//! is reported with its minimal script.

use proptest::{collection, prop_assert, proptest};
use slconform::driver::{Kind, Mutation};
use slconform::scenario::{Ev, FaultKind, LinkSpec, RstOff, Scenario, Side};
use slconform::{check_scenario, shrink};

fn idx(side: Side) -> usize {
    match side {
        Side::Client => 0,
        Side::Server => 1,
    }
}

/// Decode generated ops into a well-formed scenario. The swarm stays
/// inside the aligned behavior envelope on purpose: no sends after a
/// side's close (acceptance of post-close writes is API policy, not wire
/// conformance) and no forged segments on lossy links or after a close
/// (the corpus pins those with exact timings); everything else — order,
/// interleaving, sizes, seeds — is random.
fn build(ops: &[(u8, bool, u16)], lossy: bool) -> Scenario {
    let mut events = vec![(0u64, Ev::Connect)];
    let mut t = 300u64;
    let mut closed = [false, false];
    for &(raw, side_bit, len) in ops {
        t += 150;
        let side = if side_bit { Side::Client } else { Side::Server };
        let peer = if side_bit { Side::Server } else { Side::Client };
        let any_closed = closed[0] || closed[1];
        let ev = match raw % 10 {
            0..=2 if !closed[idx(side)] => {
                Ev::Send { side, len: 1 + (len as u32) % 4_000 }
            }
            3 | 4 => Ev::Recv { side },
            5 => {
                closed[idx(side)] = true;
                Ev::Close { side }
            }
            6 => Ev::Recv { side: peer },
            7 if !lossy && !any_closed => Ev::InjectRst { to: side, off: RstOff::InWindow },
            8 if !lossy && !any_closed => Ev::InjectRst { to: side, off: RstOff::Outside },
            9 if !lossy && !any_closed => Ev::InjectSyn { to: Side::Server },
            _ => Ev::Recv { side },
        };
        events.push((t, ev));
    }
    Scenario {
        name: if lossy { "swarm_lossy" } else { "swarm" },
        listen: true,
        server_connects: false,
        link: if lossy {
            LinkSpec { delay_ms: 5, fault: FaultKind::LossPm(20) }
        } else {
            LinkSpec::clean(5)
        },
        events,
        quiet_ms: if lossy { 20_000 } else { 4_000 },
    }
}

proptest! {
    #[test]
    fn random_scenarios_have_no_unexplained_divergence(
        ops in collection::vec(
            (proptest::num::u8::ANY, proptest::bool::ANY, proptest::num::u16::ANY),
            0..12,
        ),
        lossy in proptest::bool::ANY,
        seed in 1u64..4,
    ) {
        let sc = build(&ops, lossy);
        let rep = check_scenario(&sc, seed);
        if !rep.ok() {
            let min = shrink(&sc, seed, Kind::Sub, Mutation::None)
                .map(|s| format!("{} in {} events: {:?}", s.code, s.to_events, s.scenario.events))
                .unwrap_or_else(|| "shrink lost the divergence".into());
            prop_assert!(
                false,
                "swarm divergence seed={seed} lossy={lossy}: {:?}\nminimal: {min}\nevents: {:?}",
                rep.unexplained.first().unwrap(),
                sc.events
            );
        }
    }
}
