//! The congestion-control sublayer, shared by **both** TCP stacks.
//!
//! "If each sublayer adheres to its API, one could in principle seamlessly
//! replace congestion control (by say a rate-based protocol)" (§3, test
//! T3). [`RateController`] is that API: it consumes the summarized
//! [`CongSignal`]s emitted by the loss-recovery machinery (RD in the
//! sublayered stack, the pcb path in `tcp-mono`) and answers one question —
//! how many bytes may be outstanding right now. The controller never sees
//! sequence numbers; the feeder never sees the congestion window.
//!
//! This crate is deliberately leaf-level (it depends only on `netsim` for
//! time) so that `sublayer-core` *and* `tcp-mono` can both select their
//! controller from the same shipped set — the paper's swap claim, cashed
//! in for the monolith too. `sublayer-core::cc` re-exports everything here
//! for API compatibility.
//!
//! Every shipped controller honors the contract model-checked by
//! `slverify::CongCtrl` and property-tested in `tests/cc_contract.rs`:
//!
//! 1. allowance never drops below [`ALLOWANCE_FLOOR`] (1 MSS);
//! 2. ssthresh never *increases* while a fast-recovery episode is open;
//! 3. slow-start exit is permanent until the next loss signal;
//! 4. the recovery-exit signals ([`CongSignal::FullAck`],
//!    [`CongSignal::TimeoutLoss`]) always actually close the episode.
//!
//! [`BuggyDeflate`] deliberately breaks rule 1 — it exists so the contract
//! model has a counterexample to find, and is excluded from [`make`].

use netsim::{Dur, Time};

/// One maximum segment size in bytes — the unit every shipped controller
/// quantizes in. Shared with the `slverify::CongCtrl` contract model and
/// the workspace proptest so the bound is stated once.
pub const MSS: u64 = 1000;

/// The contract floor: `allowance()` must never return less than this, or
/// the connection deadlocks (nothing in flight means no acks, no acks
/// means no growth).
pub const ALLOWANCE_FLOOR: u64 = MSS;

/// Names accepted by [`make`] and swept by the fairness campaign and the
/// contract checks. ("reno" is also accepted as an alias for "newreno".)
pub const SHIPPED: &[&str] = &["newreno", "cubic", "rate-based", "fixed-window"];

/// A congestion/progress signal summarized for the controller.
///
/// The ack-advance classification ([`CongSignal::Acked`] outside recovery,
/// [`CongSignal::PartialAck`]/[`CongSignal::FullAck`] inside) is done by
/// the *feeder*, which owns the sequence arithmetic (`recover` point); the
/// controller only ever sees these summaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CongSignal {
    /// New data acknowledged outside recovery; `rtt` present when Karn's
    /// rule allows a sample.
    Acked { bytes: u32, rtt: Option<Dur> },
    /// A further duplicate ack *after* fast retransmit triggered — the
    /// NewReno window-inflation signal.
    DupAck,
    /// Loss inferred from duplicate acks (fast retransmit fired; a
    /// recovery episode opens).
    DupAckLoss,
    /// The ack advanced but stayed below the recovery point — one more
    /// hole in the window (NewReno partial ack; recovery stays open).
    PartialAck { bytes: u32 },
    /// The ack reached the recovery point — the episode closes and the
    /// window deflates (no re-inflation may survive).
    FullAck { bytes: u32, rtt: Option<Dur> },
    /// Loss inferred from retransmission timeout (severe).
    TimeoutLoss,
    /// The peer echoed an ECN mark.
    EcnEcho,
}

/// The congestion-control interface.
pub trait RateController {
    fn name(&self) -> &'static str;

    /// Feed one summarized signal.
    fn on_signal(&mut self, now: Time, sig: CongSignal);

    /// Current allowance: how many bytes may be in flight.
    /// Window-based controllers return their cwnd; rate-based controllers
    /// convert their rate into an allowance via pacing tokens.
    fn allowance(&self, now: Time) -> u64;

    /// For paced controllers: when the allowance next grows. `None` for
    /// pure window controllers.
    fn poll_deadline(&self, _now: Time) -> Option<Time> {
        None
    }

    /// The slow-start threshold, for controllers that keep one (window
    /// controllers). `None` means the episode-monotonicity contract is
    /// vacuous for this controller.
    fn ssthresh(&self) -> Option<u64> {
        None
    }

    /// Is a fast-recovery episode currently open?
    fn in_recovery(&self) -> bool {
        false
    }

    /// Clone into a fresh box — lets stacks copy a configured controller
    /// template and `slverify` keep controllers inside model states.
    fn box_clone(&self) -> Box<dyn RateController>;

    /// A quantized fingerprint of the controller's internal state, used by
    /// the model checker to deduplicate states. Equal fingerprints must
    /// imply behaviorally identical controllers.
    fn state_key(&self) -> Vec<u64>;
}

impl Clone for Box<dyn RateController> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Typed error from [`make`]: an unknown controller name is a
/// configuration mistake surfaced at stack construction, never a panic on
/// input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CcError {
    UnknownController { name: String },
}

impl std::fmt::Display for CcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcError::UnknownController { name } => {
                write!(f, "unknown congestion controller {name:?} (shipped: {})", SHIPPED.join(", "))
            }
        }
    }
}

impl std::error::Error for CcError {}

/// Factory used by stack configuration and the experiments. Validated at
/// stack construction time in both stacks, so a bad name surfaces as a
/// typed error before any packet moves.
pub fn make(name: &str) -> Result<Box<dyn RateController>, CcError> {
    match name {
        // "reno" remains accepted for existing configs; the shipped
        // loss-recovery behavior is NewReno (RFC 6582 fast recovery).
        "newreno" | "reno" => Ok(Box::new(NewReno::new())),
        "cubic" => Ok(Box::new(Cubic::new())),
        "rate-based" => Ok(Box::new(RateBased::new(1_000_000.0))),
        "fixed-window" => Ok(Box::new(FixedWindow(16 * 1000))),
        other => Err(CcError::UnknownController { name: other.to_string() }),
    }
}

// ---------------------------------------------------------------------------
// NewReno
// ---------------------------------------------------------------------------

/// NewReno (RFC 6582, simplified): slow start, congestion avoidance, fast
/// recovery with partial-ack handling and deflation on exit.
///
/// The deliberate simplification vs. the RFC: the loss cut is taken from
/// `cwnd/2` rather than `FlightSize/2` — the controller never sees flight
/// size (that is the feeder's state), and `cwnd/2` is the same convention
/// the original core Reno used. Pinned by tests in both stacks.
#[derive(Clone)]
pub struct NewReno {
    cwnd: u64,
    ssthresh: u64,
    in_recovery: bool,
}

impl Default for NewReno {
    fn default() -> Self {
        NewReno { cwnd: 2 * MSS, ssthresh: 64 * 1024, in_recovery: false }
    }
}

impl NewReno {
    pub fn new() -> Self {
        Self::default()
    }

    fn grow(&mut self, bytes: u32) {
        if self.cwnd < self.ssthresh {
            self.cwnd += (bytes as u64).min(MSS);
        } else {
            self.cwnd += (MSS * MSS / self.cwnd).max(1);
        }
    }
}

impl RateController for NewReno {
    fn name(&self) -> &'static str {
        "newreno"
    }

    fn on_signal(&mut self, _now: Time, sig: CongSignal) {
        match sig {
            CongSignal::Acked { bytes, .. } => {
                // Inside recovery the feeder speaks Partial/FullAck; a
                // stray Acked must not inflate the window.
                if !self.in_recovery {
                    self.grow(bytes);
                }
            }
            CongSignal::DupAck => {
                if self.in_recovery {
                    // Window inflation: each dup ack means one segment
                    // left the pipe.
                    self.cwnd += MSS;
                }
            }
            CongSignal::DupAckLoss => {
                if self.in_recovery {
                    // Already recovering; never re-cut mid-episode.
                    self.cwnd += MSS;
                } else {
                    self.ssthresh = (self.cwnd / 2).max(2 * MSS);
                    self.cwnd = self.ssthresh + 3 * MSS;
                    self.in_recovery = true;
                }
            }
            CongSignal::PartialAck { bytes } => {
                if self.in_recovery {
                    // Deflate by the bytes acked, re-inflate by one MSS
                    // for the segment the partial ack pushed out.
                    self.cwnd =
                        self.cwnd.saturating_sub(bytes as u64).max(MSS).saturating_add(MSS);
                } else {
                    self.grow(bytes);
                }
            }
            CongSignal::FullAck { bytes, .. } => {
                if self.in_recovery {
                    // Deflation: any dup-ack inflation is discarded; the
                    // window restarts exactly at the loss cut.
                    self.cwnd = self.ssthresh.max(MSS);
                    self.in_recovery = false;
                } else {
                    self.grow(bytes);
                }
            }
            CongSignal::TimeoutLoss => {
                let cut = (self.cwnd / 2).max(2 * MSS);
                // Never revise ssthresh upward while an episode is open
                // (the inflated cwnd is not evidence of capacity).
                self.ssthresh = if self.in_recovery { cut.min(self.ssthresh) } else { cut };
                self.cwnd = MSS;
                self.in_recovery = false;
            }
            CongSignal::EcnEcho => {
                if !self.in_recovery {
                    self.ssthresh = (self.cwnd / 2).max(2 * MSS);
                    self.cwnd = self.ssthresh;
                }
            }
        }
    }

    fn allowance(&self, _now: Time) -> u64 {
        self.cwnd.max(ALLOWANCE_FLOOR)
    }

    fn ssthresh(&self) -> Option<u64> {
        Some(self.ssthresh)
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    fn box_clone(&self) -> Box<dyn RateController> {
        Box::new(self.clone())
    }

    fn state_key(&self) -> Vec<u64> {
        vec![self.cwnd, self.ssthresh, self.in_recovery as u64]
    }
}

// ---------------------------------------------------------------------------
// CUBIC
// ---------------------------------------------------------------------------

/// CUBIC (simplified, no fast-convergence heuristics): the window grows as
/// a cubic function of time since the last loss, anchored at the window
/// just before the loss. Loss *recovery* is NewReno-shaped (inflation on
/// dup acks, deflation to the cut on full-ack exit); only the growth
/// function differs.
#[derive(Clone)]
pub struct Cubic {
    cwnd: f64,
    w_max: f64,
    epoch_start: Option<Time>,
    ssthresh: f64,
    k: f64,
    in_recovery: bool,
}

impl Default for Cubic {
    fn default() -> Self {
        Cubic {
            cwnd: 2.0 * MSS as f64,
            w_max: 0.0,
            epoch_start: None,
            ssthresh: 64.0 * 1024.0,
            k: 0.0,
            in_recovery: false,
        }
    }
}

impl Cubic {
    pub fn new() -> Self {
        Self::default()
    }

    const C: f64 = 0.4; // in MSS units per s^3
    const BETA: f64 = 0.7;

    fn grow(&mut self, now: Time, bytes: u32) {
        if self.cwnd < self.ssthresh {
            self.cwnd += (bytes as f64).min(MSS as f64);
            return;
        }
        let epoch = *self.epoch_start.get_or_insert(now);
        let t = now.since(epoch).secs_f64();
        // W(t) = C (t - K)^3 + w_max, in MSS units.
        let target = (Self::C * (t - self.k).powi(3) + self.w_max / MSS as f64) * MSS as f64;
        if target > self.cwnd {
            self.cwnd = target.min(self.cwnd * 1.5);
        } else {
            // TCP-friendly floor: at least Reno-style linear growth.
            self.cwnd += MSS as f64 * MSS as f64 / self.cwnd;
        }
    }

    fn cut(&mut self) {
        self.w_max = self.cwnd;
        self.cwnd = (self.cwnd * Self::BETA).max(2.0 * MSS as f64);
        self.ssthresh = self.cwnd;
        self.epoch_start = None;
        self.k = ((self.w_max * (1.0 - Self::BETA)) / (Self::C * MSS as f64)).cbrt();
    }
}

impl RateController for Cubic {
    fn name(&self) -> &'static str {
        "cubic"
    }

    fn on_signal(&mut self, now: Time, sig: CongSignal) {
        match sig {
            CongSignal::Acked { bytes, .. } => {
                if !self.in_recovery {
                    self.grow(now, bytes);
                }
            }
            CongSignal::DupAck => {
                if self.in_recovery {
                    self.cwnd += MSS as f64;
                }
            }
            CongSignal::DupAckLoss => {
                if self.in_recovery {
                    self.cwnd += MSS as f64;
                } else {
                    self.cut();
                    self.cwnd += 3.0 * MSS as f64; // fast-retransmit inflation
                    self.in_recovery = true;
                }
            }
            CongSignal::PartialAck { bytes } => {
                if self.in_recovery {
                    self.cwnd = (self.cwnd - bytes as f64).max(MSS as f64) + MSS as f64;
                } else {
                    self.grow(now, bytes);
                }
            }
            CongSignal::FullAck { bytes, .. } => {
                if self.in_recovery {
                    self.cwnd = self.ssthresh.max(MSS as f64);
                    self.epoch_start = None;
                    self.in_recovery = false;
                } else {
                    self.grow(now, bytes);
                }
            }
            CongSignal::TimeoutLoss => {
                self.w_max = self.cwnd;
                let cut = (self.cwnd / 2.0).max(2.0 * MSS as f64);
                self.ssthresh = if self.in_recovery { cut.min(self.ssthresh) } else { cut };
                self.cwnd = MSS as f64;
                self.epoch_start = None;
                self.k = ((self.w_max * (1.0 - Self::BETA)) / (Self::C * MSS as f64)).cbrt();
                self.in_recovery = false;
            }
            CongSignal::EcnEcho => {
                if !self.in_recovery {
                    self.cut();
                }
            }
        }
    }

    fn allowance(&self, _now: Time) -> u64 {
        (self.cwnd as u64).max(ALLOWANCE_FLOOR)
    }

    fn ssthresh(&self) -> Option<u64> {
        Some(self.ssthresh as u64)
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    fn box_clone(&self) -> Box<dyn RateController> {
        Box::new(self.clone())
    }

    fn state_key(&self) -> Vec<u64> {
        vec![
            self.cwnd.to_bits(),
            self.w_max.to_bits(),
            self.ssthresh.to_bits(),
            self.k.to_bits(),
            self.epoch_start.map_or(u64::MAX, |t| t.nanos()),
            self.in_recovery as u64,
        ]
    }
}

// ---------------------------------------------------------------------------
// Rate-based
// ---------------------------------------------------------------------------

/// A rate-based controller: maintains an explicit sending *rate* with
/// AIMD, and converts it to an in-flight allowance as `rate × RTT`
/// (estimated from the Acked signals) plus a small burst allowance — the
/// standard construction for rate-based transports. Demonstrates the
/// paper's "replace congestion control by say a rate-based protocol".
/// It has no window and hence no fast-recovery episodes: partial and full
/// acks are simply progress.
#[derive(Clone)]
pub struct RateBased {
    rate_bps: f64,
    srtt_s: f64,
    min_rate: f64,
    max_rate: f64,
}

impl RateBased {
    pub fn new(initial_bps: f64) -> RateBased {
        RateBased {
            rate_bps: initial_bps,
            srtt_s: 0.1, // prior until the first sample
            min_rate: 64_000.0,
            max_rate: 1e10,
        }
    }

    /// The current rate in bits/second (visible for experiments).
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn progress(&mut self, bytes: u32, rtt: Option<Dur>) {
        if let Some(r) = rtt {
            let s = r.secs_f64().max(1e-6);
            self.srtt_s = 0.875 * self.srtt_s + 0.125 * s;
        }
        // Additive increase proportional to progress.
        self.rate_bps = (self.rate_bps + bytes as f64 * 8.0 * 0.05).min(self.max_rate);
    }
}

impl RateController for RateBased {
    fn name(&self) -> &'static str {
        "rate-based"
    }

    fn on_signal(&mut self, _now: Time, sig: CongSignal) {
        match sig {
            CongSignal::Acked { bytes, rtt } | CongSignal::FullAck { bytes, rtt } => {
                self.progress(bytes, rtt);
            }
            CongSignal::PartialAck { bytes } => self.progress(bytes, None),
            CongSignal::DupAck => {}
            CongSignal::DupAckLoss | CongSignal::EcnEcho => {
                self.rate_bps = (self.rate_bps * 0.7).max(self.min_rate);
            }
            CongSignal::TimeoutLoss => {
                self.rate_bps = (self.rate_bps * 0.5).max(self.min_rate);
            }
        }
    }

    fn allowance(&self, _now: Time) -> u64 {
        // rate x RTT worth of bytes, plus one MSS of burst.
        (self.rate_bps / 8.0 * self.srtt_s) as u64 + MSS
    }

    fn box_clone(&self) -> Box<dyn RateController> {
        Box::new(self.clone())
    }

    fn state_key(&self) -> Vec<u64> {
        vec![self.rate_bps.to_bits(), self.srtt_s.to_bits()]
    }
}

// ---------------------------------------------------------------------------
// Fixed window
// ---------------------------------------------------------------------------

/// A fixed window: the null controller (useful as an ablation baseline).
#[derive(Clone)]
pub struct FixedWindow(pub u64);

impl RateController for FixedWindow {
    fn name(&self) -> &'static str {
        "fixed-window"
    }
    fn on_signal(&mut self, _: Time, _: CongSignal) {}
    fn allowance(&self, _: Time) -> u64 {
        self.0.max(ALLOWANCE_FLOOR)
    }
    fn box_clone(&self) -> Box<dyn RateController> {
        Box::new(self.clone())
    }
    fn state_key(&self) -> Vec<u64> {
        vec![self.0]
    }
}

// ---------------------------------------------------------------------------
// The seeded-buggy controller
// ---------------------------------------------------------------------------

/// A deliberately broken NewReno: its partial-ack deflation subtracts the
/// acked bytes **without the 1-MSS floor and without re-inflating** — a
/// plausible off-by-one-refactor bug. Enough partial acks drive the
/// allowance to zero and the connection deadlocks. Exists so the
/// `slverify::CongCtrl` contract has a real counterexample to surface;
/// excluded from [`make`] and [`SHIPPED`].
#[derive(Clone)]
pub struct BuggyDeflate {
    cwnd: u64,
    ssthresh: u64,
    in_recovery: bool,
}

impl Default for BuggyDeflate {
    fn default() -> Self {
        BuggyDeflate { cwnd: 2 * MSS, ssthresh: 64 * 1024, in_recovery: false }
    }
}

impl BuggyDeflate {
    pub fn new() -> Self {
        Self::default()
    }
}

impl RateController for BuggyDeflate {
    fn name(&self) -> &'static str {
        "buggy-deflate"
    }

    fn on_signal(&mut self, _now: Time, sig: CongSignal) {
        match sig {
            CongSignal::Acked { bytes, .. } | CongSignal::FullAck { bytes, .. }
                if !self.in_recovery =>
            {
                if self.cwnd < self.ssthresh {
                    self.cwnd += (bytes as u64).min(MSS);
                } else {
                    self.cwnd += (MSS * MSS / self.cwnd).max(1);
                }
            }
            CongSignal::DupAck | CongSignal::DupAckLoss if self.in_recovery => {
                self.cwnd += MSS;
            }
            CongSignal::DupAckLoss => {
                self.ssthresh = (self.cwnd / 2).max(2 * MSS);
                self.cwnd = self.ssthresh + 3 * MSS;
                self.in_recovery = true;
            }
            CongSignal::PartialAck { bytes } if self.in_recovery => {
                // BUG: deflates without the floor and without the +MSS
                // re-inflation; repeated partial acks starve the window.
                self.cwnd = self.cwnd.saturating_sub(bytes as u64);
            }
            CongSignal::FullAck { .. } => {
                self.cwnd = self.ssthresh;
                self.in_recovery = false;
            }
            CongSignal::TimeoutLoss => {
                // Honest elsewhere: the one seeded bug is the partial-ack
                // deflation above, so the episode-monotonicity clamp from
                // NewReno is kept and the contract checker's shortest
                // counterexample is the starvation trace.
                let cut = (self.cwnd / 2).max(2 * MSS);
                self.ssthresh = if self.in_recovery { cut.min(self.ssthresh) } else { cut };
                self.cwnd = MSS;
                self.in_recovery = false;
            }
            _ => {}
        }
    }

    fn allowance(&self, _now: Time) -> u64 {
        self.cwnd // BUG: no floor
    }

    fn ssthresh(&self) -> Option<u64> {
        Some(self.ssthresh)
    }

    fn in_recovery(&self) -> bool {
        self.in_recovery
    }

    fn box_clone(&self) -> Box<dyn RateController> {
        Box::new(self.clone())
    }

    fn state_key(&self) -> Vec<u64> {
        vec![self.cwnd, self.ssthresh, self.in_recovery as u64]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Dur;

    fn t(ms: u64) -> Time {
        Time::ZERO + Dur::from_millis(ms)
    }

    #[test]
    fn newreno_slow_start_doubles_per_window() {
        let mut r = NewReno::new();
        let w0 = r.allowance(t(0));
        r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        assert_eq!(r.allowance(t(1)), w0 + 2000);
    }

    #[test]
    fn newreno_halves_on_dupack_collapses_on_timeout() {
        let mut r = NewReno::new();
        for _ in 0..30 {
            r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        let big = r.allowance(t(1));
        r.on_signal(t(2), CongSignal::DupAckLoss);
        assert_eq!(r.ssthresh(), Some((big / 2).max(2 * MSS)));
        r.on_signal(t(3), CongSignal::TimeoutLoss);
        assert_eq!(r.allowance(t(3)), 1000);
    }

    #[test]
    fn newreno_congestion_avoidance_is_linearish() {
        let mut r = NewReno::new();
        r.on_signal(t(1), CongSignal::DupAckLoss); // enter recovery at ssthresh
        r.on_signal(t(1), CongSignal::FullAck { bytes: 1000, rtt: None }); // exit to CA
        let w0 = r.allowance(t(1));
        for _ in 0..10 {
            r.on_signal(t(2), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        let w1 = r.allowance(t(2));
        assert!(w1 > w0 && w1 < w0 + 10 * 1000, "CA grows sub-linearly: {w0} -> {w1}");
    }

    #[test]
    fn newreno_full_ack_deflates_discarding_inflation() {
        // The NewReno pin: dup-ack inflation during recovery must NOT
        // survive the episode — on full-ack exit the window is exactly
        // ssthresh, no matter how many dup acks inflated it.
        let mut r = NewReno::new();
        for _ in 0..30 {
            r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        r.on_signal(t(2), CongSignal::DupAckLoss);
        let ss = r.ssthresh().unwrap();
        for _ in 0..20 {
            r.on_signal(t(3), CongSignal::DupAck); // inflate hard
        }
        assert!(r.allowance(t(3)) > ss + 10 * MSS, "inflation happened");
        r.on_signal(t(4), CongSignal::FullAck { bytes: 4000, rtt: None });
        assert!(!r.in_recovery());
        assert_eq!(r.allowance(t(4)), ss, "exit deflates to ssthresh exactly");
    }

    #[test]
    fn newreno_partial_ack_stays_in_recovery_full_ack_exits() {
        let mut r = NewReno::new();
        for _ in 0..30 {
            r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        r.on_signal(t(2), CongSignal::DupAckLoss);
        assert!(r.in_recovery());
        let before = r.allowance(t(2));
        r.on_signal(t(3), CongSignal::PartialAck { bytes: 2000 });
        assert!(r.in_recovery(), "partial ack must not exit recovery");
        assert_eq!(r.allowance(t(3)), before - 2000 + MSS, "deflate by acked, re-inflate one MSS");
        r.on_signal(t(4), CongSignal::FullAck { bytes: 1000, rtt: None });
        assert!(!r.in_recovery(), "full ack exits recovery");
    }

    #[test]
    fn newreno_stray_acked_during_recovery_does_not_grow() {
        let mut r = NewReno::new();
        r.on_signal(t(1), CongSignal::DupAckLoss);
        let w = r.allowance(t(1));
        r.on_signal(t(2), CongSignal::Acked { bytes: 5000, rtt: None });
        assert_eq!(r.allowance(t(2)), w);
    }

    #[test]
    fn newreno_timeout_during_recovery_never_raises_ssthresh() {
        let mut r = NewReno::new();
        for _ in 0..30 {
            r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        r.on_signal(t(2), CongSignal::DupAckLoss);
        let ss = r.ssthresh().unwrap();
        for _ in 0..40 {
            r.on_signal(t(3), CongSignal::DupAck); // inflate well past 2*ssthresh
        }
        r.on_signal(t(4), CongSignal::TimeoutLoss);
        assert!(r.ssthresh().unwrap() <= ss, "episode may not revise ssthresh upward");
        assert!(!r.in_recovery());
    }

    #[test]
    fn cubic_recovers_toward_wmax() {
        let mut c = Cubic::new();
        for _ in 0..60 {
            c.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        let before = c.allowance(t(1));
        c.on_signal(t(2), CongSignal::EcnEcho);
        let after_loss = c.allowance(t(2));
        assert!(after_loss < before);
        // Feed acks over simulated seconds; cubic should climb back.
        for ms in 0..2000 {
            c.on_signal(t(3 + ms), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        assert!(c.allowance(t(2100)) > after_loss);
    }

    #[test]
    fn cubic_full_ack_deflates_like_newreno() {
        let mut c = Cubic::new();
        for _ in 0..60 {
            c.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        c.on_signal(t(2), CongSignal::DupAckLoss);
        assert!(c.in_recovery());
        let ss = c.ssthresh().unwrap();
        for _ in 0..10 {
            c.on_signal(t(3), CongSignal::DupAck);
        }
        c.on_signal(t(4), CongSignal::FullAck { bytes: 3000, rtt: None });
        assert!(!c.in_recovery());
        assert_eq!(c.allowance(t(4)), ss);
    }

    #[test]
    fn rate_based_window_is_rate_times_rtt() {
        let mut r = RateBased::new(8_000_000.0); // 1 MB/s
        // Feed an RTT sample of 100ms repeatedly: window ~ 100KB.
        for _ in 0..200 {
            r.on_signal(t(1), CongSignal::Acked { bytes: 0, rtt: Some(Dur::from_millis(100)) });
        }
        let w = r.allowance(t(1));
        assert!((90_000..=140_000).contains(&w), "window {w}");
    }

    #[test]
    fn rate_based_aimd_on_rate() {
        let mut r = RateBased::new(8_000_000.0);
        r.on_signal(t(1), CongSignal::TimeoutLoss);
        let slowed = r.rate_bps();
        assert!((slowed - 4_000_000.0).abs() < 1.0);
        for _ in 0..100 {
            r.on_signal(t(2), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        assert!(r.rate_bps() > slowed);
    }

    #[test]
    fn rate_based_shrinks_allowance_on_loss() {
        let mut r = RateBased::new(8_000_000.0);
        let before = r.allowance(t(0));
        r.on_signal(t(1), CongSignal::DupAckLoss);
        assert!(r.allowance(t(1)) < before);
    }

    #[test]
    fn fixed_window_never_moves() {
        let mut f = FixedWindow(5000);
        f.on_signal(t(1), CongSignal::TimeoutLoss);
        assert_eq!(f.allowance(t(9)), 5000);
    }

    #[test]
    fn factory_knows_all_shipped_names() {
        for n in SHIPPED {
            assert_eq!(make(n).unwrap().name(), *n);
        }
    }

    #[test]
    fn factory_accepts_reno_as_newreno_alias() {
        assert_eq!(make("reno").unwrap().name(), "newreno");
    }

    #[test]
    fn factory_returns_typed_error_on_unknown_name() {
        let err = make("vegas").err().expect("unknown name must be rejected");
        assert_eq!(err, CcError::UnknownController { name: "vegas".into() });
        assert!(err.to_string().contains("vegas"));
        assert!(err.to_string().contains("newreno"), "error lists the shipped set");
    }

    #[test]
    fn ecn_treated_as_mild_loss() {
        let mut r = NewReno::new();
        for _ in 0..30 {
            r.on_signal(t(1), CongSignal::Acked { bytes: 1000, rtt: None });
        }
        let before = r.allowance(t(1));
        r.on_signal(t(2), CongSignal::EcnEcho);
        assert!(r.allowance(t(2)) < before);
    }

    #[test]
    fn buggy_deflate_starves_the_window() {
        let mut b = BuggyDeflate::new();
        b.on_signal(t(1), CongSignal::DupAckLoss);
        for _ in 0..10 {
            b.on_signal(t(2), CongSignal::PartialAck { bytes: 4000 });
        }
        assert!(b.allowance(t(3)) < ALLOWANCE_FLOOR, "the seeded bug violates the floor");
    }

    #[test]
    fn box_clone_preserves_state() {
        let mut r = NewReno::new();
        r.on_signal(t(1), CongSignal::DupAckLoss);
        let c = r.box_clone();
        assert_eq!(c.state_key(), r.state_key());
        assert_eq!(c.allowance(t(2)), r.allowance(t(2)));
        assert!(c.in_recovery());
    }
}
